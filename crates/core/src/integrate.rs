//! Step 2 of the paper's procedure (§III.D, Fig. 6): integrate the two
//! data streams.
//!
//! Each PEBS sample is attributed along two axes:
//!
//! * **data-item** — by locating the mark interval (same core) that
//!   contains the sample's timestamp, or, in
//!   [`MappingMode::RegisterTag`], by decoding the `r13` register value
//!   the sample captured (§V.A);
//! * **function** — by resolving the sampled instruction pointer against
//!   the target's symbol table.
//!
//! Samples outside every interval (busy-poll spinning between items) or
//! outside every known function keep `None` in the respective axis; they
//! are retained because profiles (§V.B.1) still use them.
//!
//! ## Parallel execution
//!
//! The paper's mapping is strictly per-core: a sample can only belong to
//! an interval on its own core. Both streams arrive sorted by
//! `(core, tsc)`, so the bundle splits into per-core shards with two
//! `partition_point` walks, every shard is processed independently on a
//! scoped worker pool (`FLUCTRACE_THREADS`, see [`crate::parallel`]),
//! and the results are spliced back in core order. The output is
//! **bit-identical** for every thread count, including the fully
//! sequential `FLUCTRACE_THREADS=1`.
//!
//! Within a shard, attribution no longer binary-searches per sample:
//! samples and intervals are co-walked with a merge cursor (both are
//! time-sorted), making the per-shard cost linear instead of
//! `O(n log m)` and keeping the interval array walk cache-friendly.

use crate::interval::{build_intervals, IntervalError, ItemInterval};
use crate::parallel;
use fluctrace_cpu::{decode_tag, CoreId, FuncId, ItemId, PebsRecord, SymbolTable, TraceBundle};
use fluctrace_obs as obs;
use fluctrace_sim::Freq;
use serde::{Deserialize, Serialize};

/// How samples are mapped to data-items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingMode {
    /// Timestamp-in-mark-interval mapping — the paper's main procedure,
    /// valid for self-switching architectures.
    Intervals,
    /// `r13` register-tag mapping — the §V.A extension, also valid under
    /// timer-switching preemption.
    RegisterTag,
}

/// One sample after integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributedSample {
    /// Core the sample was taken on.
    pub core: CoreId,
    /// TSC timestamp.
    pub tsc: u64,
    /// The data-item the sample belongs to, if any.
    pub item: Option<ItemId>,
    /// The function the IP resolved to, if any.
    pub func: Option<FuncId>,
    /// Index of the interval (within [`IntegratedTrace::intervals`])
    /// the sample fell into, when interval mapping was used. Lets the
    /// estimator sum per-slice contributions for preempted items.
    pub interval_idx: Option<u32>,
}

/// Timing and volume counters of one analysis-pipeline run.
///
/// Integration fills the interval/attribution stages; the estimation
/// stage is reported by [`crate::EstimateTable::from_integrated_timed`]
/// and composed in by callers (see `fluctrace-bench`). Timings come
/// from the process-wide `obs` clock: real nanoseconds in bench
/// binaries (which install the wall clock), opaque logical ticks
/// everywhere else. Either way they are measurement artifacts — they
/// vary run to run and are deliberately *not* part of any determinism
/// guarantee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Clock ticks (wall-ns in bench bins) spent reconstructing
    /// intervals from marks.
    pub interval_build_ns: u64,
    /// Clock ticks (wall-ns in bench bins) spent attributing samples.
    pub attribution_ns: u64,
    /// Clock ticks (wall-ns in bench bins) spent estimating
    /// (first→last folding); zero until an estimator reports it.
    pub estimate_ns: u64,
    /// Samples processed.
    pub samples: u64,
    /// Intervals reconstructed.
    pub intervals: u64,
    /// Worker threads the pipeline ran with.
    pub threads: u64,
}

impl PipelineStats {
    /// Total integration wall time (intervals + attribution), ns.
    pub fn integrate_ns(&self) -> u64 {
        self.interval_build_ns + self.attribution_ns
    }

    /// Integration throughput in samples per second.
    pub fn integrate_samples_per_sec(&self) -> f64 {
        per_sec(self.samples, self.integrate_ns())
    }

    /// Estimation throughput in samples per second (zero until
    /// `estimate_ns` is filled in).
    pub fn estimate_samples_per_sec(&self) -> f64 {
        per_sec(self.samples, self.estimate_ns)
    }
}

fn per_sec(count: u64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        count as f64 / (ns as f64 / 1e9)
    }
}

/// The integrated trace: attributed samples plus the reconstructed
/// intervals and any mark-pairing errors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntegratedTrace {
    /// All samples, in `(core, tsc)` order.
    pub samples: Vec<AttributedSample>,
    /// Item intervals reconstructed from marks, in `(core, start)` order.
    pub intervals: Vec<ItemInterval>,
    /// Mark-pairing problems encountered.
    pub errors: Vec<IntervalError>,
    /// TSC frequency, for converting cycle differences to time.
    pub freq: Freq,
    /// The mapping mode used.
    pub mode: MappingMode,
    /// Wall-time/throughput counters of this integration run.
    pub stats: PipelineStats,
    /// Per-item index into `samples`: `(item, start, end)` half-open
    /// ranges, sorted by `(item, start)`. Built once during integration
    /// so per-item queries don't rescan the whole sample array.
    pub(crate) item_index: Vec<(ItemId, u32, u32)>,
}

/// Below this many samples the shard fan-out is pure overhead; run the
/// single-threaded path (same results by construction).
pub(crate) const PARALLEL_MIN_SAMPLES: usize = 4096;

/// Integrate a trace bundle against a symbol table.
///
/// `bundle` must be sorted (see [`TraceBundle::sort`]); `freq` is the
/// TSC frequency of the traced machine. Runs on the worker pool sized
/// by `FLUCTRACE_THREADS` (default: available parallelism); the result
/// is identical for every pool size.
pub fn integrate(
    bundle: &TraceBundle,
    symtab: &SymbolTable,
    freq: Freq,
    mode: MappingMode,
) -> IntegratedTrace {
    let threads = if bundle.samples.len() < PARALLEL_MIN_SAMPLES {
        1
    } else {
        parallel::configured_threads()
    };
    integrate_with_threads(bundle, symtab, freq, mode, threads)
}

/// [`integrate`] with an explicit worker count, honoured even for tiny
/// bundles (used by the determinism tests and benchmarks; `threads = 1`
/// is the sequential reference).
pub fn integrate_with_threads(
    bundle: &TraceBundle,
    symtab: &SymbolTable,
    freq: Freq,
    mode: MappingMode,
    threads: usize,
) -> IntegratedTrace {
    let threads = threads.max(1);
    obs::span!("integrate.run", threads);

    // Phase 1 — per-core interval reconstruction. Shards are the
    // per-core sub-slices of the (core, tsc)-sorted streams.
    let t0 = obs::now_ticks();
    let shards = shard_by_core(&bundle.marks, &bundle.samples);
    let built: Vec<(Vec<ItemInterval>, Vec<IntervalError>)> = parallel::run_indexed(
        shards.iter().map(|sh| sh.marks).collect(),
        threads,
        |shard_idx, marks| {
            obs::span!("integrate.shard", shard_idx);
            build_intervals(marks)
        },
    );
    // Splice in core order: concatenated per-core results are identical
    // to one sequential walk (build_intervals truncates open intervals
    // at core boundaries either way).
    let mut intervals = Vec::with_capacity(built.iter().map(|(ivs, _)| ivs.len()).sum());
    let mut errors = Vec::new();
    // (global base, length) of each shard's interval range.
    let mut shard_bounds: Vec<(usize, usize)> = Vec::with_capacity(built.len());
    for (ivs, errs) in &built {
        shard_bounds.push((intervals.len(), ivs.len()));
        intervals.extend_from_slice(ivs);
        errors.extend_from_slice(errs);
    }
    let interval_build_ns = obs::now_ticks().wrapping_sub(t0);

    // Phase 2 — per-core sample attribution with a merge cursor; local
    // interval indices are globalized with the shard's base offset.
    let t1 = obs::now_ticks();
    let attributed: Vec<Vec<AttributedSample>> = parallel::run_indexed(
        shards.iter().map(|sh| sh.samples).collect(),
        threads,
        |shard_idx, samples| {
            obs::span!("integrate.attribute", shard_idx);
            let (base, len) = shard_bounds.get(shard_idx).copied().unwrap_or((0, 0));
            let shard_intervals = intervals.get(base..base + len).unwrap_or_default();
            attribute_shard(samples, shard_intervals, base as u32, symtab, mode)
        },
    );
    let mut samples = Vec::with_capacity(bundle.samples.len());
    for shard_samples in attributed {
        samples.extend(shard_samples);
    }
    let item_index = build_item_index(&samples);
    let attribution_ns = obs::now_ticks().wrapping_sub(t1);

    // Self-observability: deterministic volumes and sim-cycle
    // distributions only (never the tick timings above), so obs
    // snapshots stay byte-identical across runs and thread counts.
    if obs::recording() {
        obs::counter!("core.integrate.runs").inc();
        obs::counter!("core.integrate.samples").add(samples.len() as u64);
        obs::counter!("core.integrate.intervals").add(intervals.len() as u64);
        obs::counter!("core.integrate.shards").add(shards.len() as u64);
        obs::counter!("core.integrate.errors").add(errors.len() as u64);
        let interval_cycles = obs::histogram!("core.integrate.interval_cycles");
        for iv in &intervals {
            interval_cycles.record(iv.cycles());
        }
        let shard_samples = obs::histogram!("core.integrate.shard_samples");
        for sh in &shards {
            shard_samples.record(sh.samples.len() as u64);
        }
    }

    let stats = PipelineStats {
        interval_build_ns,
        attribution_ns,
        estimate_ns: 0,
        samples: samples.len() as u64,
        intervals: intervals.len() as u64,
        threads: threads as u64,
    };
    IntegratedTrace {
        samples,
        intervals,
        errors,
        freq,
        mode,
        stats,
        item_index,
    }
}

/// One core's sub-slices of the sorted streams. Shared with the
/// columnar fast path ([`crate::soa`]), which attributes the same
/// shards into pre-allocated columns.
pub(crate) struct Shard<'a> {
    pub(crate) marks: &'a [fluctrace_cpu::MarkRecord],
    pub(crate) samples: &'a [PebsRecord],
}

/// Split the `(core, tsc)`-sorted streams into per-core shards covering
/// the union of cores present in either stream, in ascending core order.
pub(crate) fn shard_by_core<'a>(
    marks: &'a [fluctrace_cpu::MarkRecord],
    samples: &'a [PebsRecord],
) -> Vec<Shard<'a>> {
    let mut shards = Vec::new();
    let (mut mi, mut si) = (0usize, 0usize);
    while mi < marks.len() || si < samples.len() {
        let core = match (marks.get(mi), samples.get(si)) {
            (Some(m), Some(s)) => m.core.min(s.core),
            (Some(m), None) => m.core,
            (None, Some(s)) => s.core,
            (None, None) => break,
        };
        let m_end = mi
            + marks
                .get(mi..)
                .unwrap_or_default()
                .partition_point(|m| m.core <= core);
        let s_end = si
            + samples
                .get(si..)
                .unwrap_or_default()
                .partition_point(|s| s.core <= core);
        shards.push(Shard {
            marks: marks.get(mi..m_end).unwrap_or_default(),
            samples: samples.get(si..s_end).unwrap_or_default(),
        });
        mi = m_end;
        si = s_end;
    }
    shards
}

/// Attribute one core's samples against that core's intervals.
///
/// Both slices are time-sorted, so instead of a binary search per
/// sample the cursor tracks "how many intervals start at or before this
/// timestamp" — exactly the `partition_point` the old path computed,
/// advanced incrementally. The candidate is the latest-starting
/// interval, matching [`crate::interval::find_interval_idx`] sample for
/// sample.
fn attribute_shard(
    samples: &[PebsRecord],
    intervals: &[ItemInterval],
    base: u32,
    symtab: &SymbolTable,
    mode: MappingMode,
) -> Vec<AttributedSample> {
    let mut out = Vec::with_capacity(samples.len());
    let mut started = 0usize; // intervals with start_tsc <= current tsc
    for s in samples {
        let (item, interval_idx) = match mode {
            MappingMode::Intervals => {
                while intervals
                    .get(started)
                    .is_some_and(|iv| iv.start_tsc <= s.tsc)
                {
                    started += 1;
                }
                let cand = started
                    .checked_sub(1)
                    .and_then(|i| intervals.get(i).map(|iv| (i, iv)));
                match cand {
                    Some((i, iv)) if iv.contains(s.tsc) => (Some(iv.item), Some(base + i as u32)),
                    _ => (None, None),
                }
            }
            MappingMode::RegisterTag => (decode_tag(s.r13), None),
        };
        out.push(AttributedSample {
            core: s.core,
            tsc: s.tsc,
            item,
            func: symtab.resolve(s.ip),
            interval_idx,
        });
    }
    out
}

/// Collapse attributed samples into `(item, start, end)` runs sorted by
/// `(item, start)`. Runs are maximal: consecutive samples of the same
/// item form one range.
pub(crate) fn build_item_index(samples: &[AttributedSample]) -> Vec<(ItemId, u32, u32)> {
    let mut runs: Vec<(ItemId, u32, u32)> = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let Some(item) = s.item else { continue };
        match runs.last_mut() {
            Some((run_item, _, end)) if *run_item == item && *end == i as u32 => {
                *end = i as u32 + 1;
            }
            _ => runs.push((item, i as u32, i as u32 + 1)),
        }
    }
    runs.sort_unstable_by_key(|&(item, start, _)| (item, start));
    runs
}

impl IntegratedTrace {
    /// Samples attributed to `item`, in trace order. Served from the
    /// per-item index: `O(log r + k)` for `k` matching samples instead
    /// of a full scan.
    pub fn samples_of_item(&self, item: ItemId) -> impl Iterator<Item = &AttributedSample> {
        let lo = self
            .item_index
            .partition_point(|&(run_item, _, _)| run_item < item);
        self.item_index
            .get(lo..)
            .unwrap_or_default()
            .iter()
            .take_while(move |&&(run_item, _, _)| run_item == item)
            .flat_map(move |&(_, start, end)| {
                self.samples
                    .get(start as usize..end as usize)
                    .unwrap_or_default()
                    .iter()
            })
    }

    /// Fraction of samples that were attributed to some item.
    pub fn attribution_ratio(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let attributed: usize = self
            .item_index
            .iter()
            .map(|&(_, start, end)| (end - start) as usize)
            .sum();
        attributed as f64 / self.samples.len() as f64
    }

    /// All distinct items observed (from intervals in interval mode,
    /// from tags in register mode), in ascending id order.
    pub fn items(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = match self.mode {
            MappingMode::Intervals => self.intervals.iter().map(|iv| iv.item).collect(),
            // The index is already sorted by item; dedup below collapses
            // an item's multiple runs.
            MappingMode::RegisterTag => self.item_index.iter().map(|&(item, _, _)| item).collect(),
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use fluctrace_cpu::{
        encode_tag, HwEvent, MarkKind, MarkRecord, PebsRecord, SymbolTableBuilder, VirtAddr, NO_TAG,
    };

    fn setup() -> (SymbolTable, FuncId, FuncId) {
        let mut b = SymbolTableBuilder::new();
        let f = b.add("f", 100);
        let g = b.add("g", 100);
        (b.build(), f, g)
    }

    fn sample(core: u32, tsc: u64, ip: VirtAddr, r13: u64) -> PebsRecord {
        PebsRecord {
            core: CoreId(core),
            tsc,
            ip,
            r13,
            event: HwEvent::UopsRetired,
        }
    }

    fn mark(core: u32, tsc: u64, item: u64, kind: MarkKind) -> MarkRecord {
        MarkRecord {
            core: CoreId(core),
            tsc,
            item: ItemId(item),
            kind,
        }
    }

    #[test]
    fn interval_mode_attribution() {
        let (symtab, f, _) = setup();
        let f_ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 100, 1, MarkKind::Start),
            mark(0, 200, 1, MarkKind::End),
        ];
        bundle.samples = vec![
            sample(0, 50, f_ip, NO_TAG),  // before the item
            sample(0, 150, f_ip, NO_TAG), // inside
            sample(0, 250, f_ip, NO_TAG), // after
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        assert!(it.errors.is_empty());
        assert_eq!(it.samples[0].item, None);
        assert_eq!(it.samples[1].item, Some(ItemId(1)));
        assert_eq!(it.samples[1].func, Some(f));
        assert_eq!(it.samples[1].interval_idx, Some(0));
        assert_eq!(it.samples[2].item, None);
        assert!((it.attribution_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(it.items(), vec![ItemId(1)]);
    }

    #[test]
    fn cross_core_samples_do_not_leak() {
        // A sample on core 1 whose tsc falls inside core 0's interval
        // must not be attributed (the paper's mapping is per-core).
        let (symtab, f, _) = setup();
        let f_ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 100, 1, MarkKind::Start),
            mark(0, 200, 1, MarkKind::End),
        ];
        bundle.samples = vec![sample(1, 150, f_ip, NO_TAG)];
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        assert_eq!(it.samples[0].item, None);
    }

    #[test]
    fn register_tag_mode_ignores_intervals() {
        let (symtab, f, _) = setup();
        let f_ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        // No marks at all — timer-switching without scheduler logging.
        bundle.samples = vec![
            sample(0, 10, f_ip, encode_tag(ItemId(5))),
            sample(0, 20, f_ip, NO_TAG),
            sample(0, 30, f_ip, encode_tag(ItemId(6))),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::RegisterTag);
        assert_eq!(it.samples[0].item, Some(ItemId(5)));
        assert_eq!(it.samples[1].item, None);
        assert_eq!(it.samples[2].item, Some(ItemId(6)));
        assert_eq!(it.items(), vec![ItemId(5), ItemId(6)]);
    }

    #[test]
    fn unresolvable_ip_keeps_none_func() {
        let (symtab, _, _) = setup();
        let mut bundle = TraceBundle::default();
        bundle.samples = vec![sample(0, 10, VirtAddr(0x10), NO_TAG)];
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        assert_eq!(it.samples[0].func, None);
    }

    #[test]
    fn samples_of_item_filter() {
        let (symtab, f, g) = setup();
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 0, 1, MarkKind::Start),
            mark(0, 100, 1, MarkKind::End),
            mark(0, 200, 2, MarkKind::Start),
            mark(0, 300, 2, MarkKind::End),
        ];
        bundle.samples = vec![
            sample(0, 10, symtab.range(f).start, NO_TAG),
            sample(0, 50, symtab.range(g).start, NO_TAG),
            sample(0, 250, symtab.range(f).start, NO_TAG),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        assert_eq!(it.samples_of_item(ItemId(1)).count(), 2);
        assert_eq!(it.samples_of_item(ItemId(2)).count(), 1);
        assert_eq!(it.attribution_ratio(), 1.0);
    }

    #[test]
    fn item_index_collects_scattered_runs() {
        // Item 1 occupies two intervals separated by item 2, plus an
        // appearance on a second core: three distinct index runs.
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 0, 1, MarkKind::Start),
            mark(0, 100, 1, MarkKind::End),
            mark(0, 200, 2, MarkKind::Start),
            mark(0, 300, 2, MarkKind::End),
            mark(0, 400, 1, MarkKind::Start),
            mark(0, 500, 1, MarkKind::End),
            mark(1, 0, 1, MarkKind::Start),
            mark(1, 100, 1, MarkKind::End),
        ];
        bundle.samples = vec![
            sample(0, 10, ip, NO_TAG),
            sample(0, 50, ip, NO_TAG),
            sample(0, 250, ip, NO_TAG),
            sample(0, 450, ip, NO_TAG),
            sample(1, 50, ip, NO_TAG),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        let item1: Vec<u64> = it.samples_of_item(ItemId(1)).map(|s| s.tsc).collect();
        assert_eq!(item1, vec![10, 50, 450, 50], "core 0 runs then core 1");
        assert_eq!(it.samples_of_item(ItemId(2)).count(), 1);
        assert_eq!(it.samples_of_item(ItemId(9)).count(), 0);
        assert_eq!(it.attribution_ratio(), 1.0);
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        // Multi-core synthetic workload, compared across pool sizes.
        let (symtab, f, g) = setup();
        let f_ip = symtab.range(f).start;
        let g_ip = symtab.range(g).start;
        let mut bundle = TraceBundle::default();
        let mut item = 0u64;
        for core in 0..6u32 {
            let mut tsc = (core as u64) * 17;
            for _ in 0..40 {
                bundle.marks.push(mark(core, tsc, item, MarkKind::Start));
                bundle.samples.push(sample(core, tsc + 1, f_ip, NO_TAG));
                bundle.samples.push(sample(core, tsc + 7, g_ip, NO_TAG));
                tsc += 11;
                bundle.marks.push(mark(core, tsc, item, MarkKind::End));
                // A gap sample between items (attributed to nothing).
                bundle.samples.push(sample(core, tsc + 1, f_ip, NO_TAG));
                tsc += 5;
                item += 1;
            }
        }
        bundle.sort();
        let reference =
            integrate_with_threads(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals, 1);
        for threads in [2, 3, 8] {
            let it = integrate_with_threads(
                &bundle,
                &symtab,
                Freq::ghz(3),
                MappingMode::Intervals,
                threads,
            );
            assert_eq!(it.samples, reference.samples, "threads={threads}");
            assert_eq!(it.intervals, reference.intervals);
            assert_eq!(it.errors, reference.errors);
            assert_eq!(it.item_index, reference.item_index);
        }
    }

    #[test]
    fn stats_count_samples_and_intervals() {
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 100, 1, MarkKind::Start),
            mark(0, 200, 1, MarkKind::End),
        ];
        bundle.samples = vec![sample(0, 150, ip, NO_TAG)];
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        assert_eq!(it.stats.samples, 1);
        assert_eq!(it.stats.intervals, 1);
        assert_eq!(it.stats.threads, 1, "tiny bundles stay sequential");
        assert_eq!(it.stats.estimate_ns, 0);
    }
}
