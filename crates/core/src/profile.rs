//! Flat profiles: the "averaged" view a trace is *not* (Fig. 1), plus
//! the §V.B.1 fallback formula.
//!
//! A profile cannot reveal per-item fluctuations, but it estimates the
//! average elapsed time of functions even shorter than the sample
//! interval: `T × n / N`, where `T` is the total observed time, `n` the
//! samples in the function and `N` all samples.

use crate::integrate::IntegratedTrace;
use fluctrace_cpu::FuncId;
use fluctrace_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One function's profile line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// The function.
    pub func: FuncId,
    /// Samples whose IP resolved to the function.
    pub samples: u64,
    /// Estimated total time: `T·n/N`.
    pub total_time: SimDuration,
    /// Fraction of all samples (`n/N`).
    pub share: f64,
}

/// A flat (per-function, whole-run) profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatProfile {
    entries: BTreeMap<FuncId, ProfileEntry>,
    /// Total observed time `T` used for scaling.
    pub window: SimDuration,
    /// Total number of samples `N` (including unresolvable IPs).
    pub total_samples: u64,
}

impl FlatProfile {
    /// Build a profile over the whole integrated trace.
    ///
    /// `T` is taken as the span between the first and last sample
    /// timestamps across the trace (per the §V.B.1 formula, any
    /// sufficiently long observation window works).
    pub fn from_integrated(it: &IntegratedTrace) -> FlatProfile {
        let window = match (it.samples.first(), it.samples.last()) {
            (Some(first), Some(last)) => {
                // Samples are sorted by (core, tsc); find the global span.
                let min = it.samples.iter().map(|s| s.tsc).min().unwrap();
                let max = it.samples.iter().map(|s| s.tsc).max().unwrap();
                let _ = (first, last);
                it.freq.cycles_to_dur(max - min)
            }
            _ => SimDuration::ZERO,
        };
        Self::from_integrated_with_window(it, window)
    }

    /// Build a profile using an explicit observation window `T`.
    pub fn from_integrated_with_window(it: &IntegratedTrace, window: SimDuration) -> FlatProfile {
        let total = it.samples.len() as u64;
        let mut counts: BTreeMap<FuncId, u64> = BTreeMap::new();
        for s in &it.samples {
            if let Some(f) = s.func {
                *counts.entry(f).or_insert(0) += 1;
            }
        }
        let entries = counts
            .into_iter()
            .map(|(func, n)| {
                let share = if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                };
                (
                    func,
                    ProfileEntry {
                        func,
                        samples: n,
                        total_time: window.mul_frac(n, total.max(1)),
                        share,
                    },
                )
            })
            .collect();
        FlatProfile {
            entries,
            window,
            total_samples: total,
        }
    }

    /// Profile line for `func`.
    pub fn get(&self, func: FuncId) -> Option<&ProfileEntry> {
        self.entries.get(&func)
    }

    /// Iterate entries ordered by function id.
    pub fn iter(&self) -> impl Iterator<Item = &ProfileEntry> {
        self.entries.values()
    }

    /// Entries sorted by total time, hottest first.
    pub fn hottest(&self) -> Vec<&ProfileEntry> {
        let mut v: Vec<&ProfileEntry> = self.entries.values().collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.total_time));
        v
    }

    /// Number of functions observed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no functions were observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::integrate::{integrate, MappingMode};
    use fluctrace_cpu::{CoreId, HwEvent, PebsRecord, SymbolTableBuilder, TraceBundle, NO_TAG};
    use fluctrace_sim::Freq;

    #[test]
    fn shares_follow_sample_counts() {
        let mut b = SymbolTableBuilder::new();
        let f = b.add("f", 100);
        let g = b.add("g", 100);
        let symtab = b.build();
        let mut bundle = TraceBundle::default();
        // 3 samples in f, 1 in g, spanning 30000 cycles (10 µs at 3 GHz).
        let mk = |tsc, func: FuncId| PebsRecord {
            core: CoreId(0),
            tsc,
            ip: symtab.range(func).start,
            r13: NO_TAG,
            event: HwEvent::UopsRetired,
        };
        bundle.samples = vec![mk(0, f), mk(10_000, f), mk(20_000, g), mk(30_000, f)];
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        let profile = FlatProfile::from_integrated(&it);
        assert_eq!(profile.total_samples, 4);
        assert_eq!(profile.window, fluctrace_sim::SimDuration::from_us(10));
        let pf = profile.get(f).unwrap();
        let pg = profile.get(g).unwrap();
        assert_eq!(pf.samples, 3);
        assert!((pf.share - 0.75).abs() < 1e-12);
        // T·n/N = 10us * 3/4 = 7.5us.
        assert_eq!(pf.total_time, fluctrace_sim::SimDuration::from_ns(7_500));
        assert_eq!(pg.total_time, fluctrace_sim::SimDuration::from_ns(2_500));
        assert_eq!(profile.hottest()[0].func, f);
    }

    #[test]
    fn empty_trace_profile() {
        let b = SymbolTableBuilder::new().build();
        let bundle = TraceBundle::default();
        let it = integrate(&bundle, &b, Freq::ghz(3), MappingMode::Intervals);
        let p = FlatProfile::from_integrated(&it);
        assert!(p.is_empty());
        assert_eq!(p.total_samples, 0);
    }

    #[test]
    fn profile_estimates_functions_shorter_than_interval() {
        // §V.B.1: a function shorter than the sample interval gets at
        // most one sample per execution, but across many executions the
        // share converges to its true time fraction.
        let mut b = SymbolTableBuilder::new();
        let short = b.add("short", 100);
        let long = b.add("long", 100);
        let symtab = b.build();
        let mut bundle = TraceBundle::default();
        // Simulate: "short" occupies 10% of time, sampled 10 times out
        // of 100 across the run.
        for i in 0..100u64 {
            let func = if i % 10 == 0 { short } else { long };
            bundle.samples.push(PebsRecord {
                core: CoreId(0),
                tsc: i * 1000,
                ip: symtab.range(func).start,
                r13: NO_TAG,
                event: HwEvent::UopsRetired,
            });
        }
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        let p = FlatProfile::from_integrated(&it);
        assert!((p.get(short).unwrap().share - 0.10).abs() < 1e-12);
        assert!((p.get(long).unwrap().share - 0.90).abs() < 1e-12);
    }

    #[test]
    fn explicit_window_overrides() {
        let mut b = SymbolTableBuilder::new();
        let f = b.add("f", 100);
        let symtab = b.build();
        let mut bundle = TraceBundle::default();
        bundle.samples = vec![PebsRecord {
            core: CoreId(0),
            tsc: 5,
            ip: symtab.range(f).start,
            r13: NO_TAG,
            event: HwEvent::UopsRetired,
        }];
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        let p =
            FlatProfile::from_integrated_with_window(&it, fluctrace_sim::SimDuration::from_us(44));
        assert_eq!(
            p.get(f).unwrap().total_time,
            fluctrace_sim::SimDuration::from_us(44)
        );
    }
}
