//! Windowed / incremental integration: the bounded-memory substrate of
//! the `fluctrace-serve` daemon.
//!
//! The batch pipeline holds a whole trace in memory before integrating
//! it; an always-on tracer cannot. [`WindowedIntegrator`] consumes the
//! same `TraceBundle` batches the online tracer does — with pairing,
//! eviction and loss accounting semantics copied line for line from
//! `online::Worker`, so the 11-counter [`LossStats`] ledger stays exact
//! — but cuts the completed-item stream into **windows** of
//! [`WindowConfig::window_items`] items. Each closed window is folded
//! through the same [`estimate`](crate::estimate) assembly as a batch
//! run into a per-window [`EstimateTable`] summary, the raw samples are
//! dropped, and old summaries are evicted once
//! [`WindowConfig::max_windows`] are retained. Loss counters, anomaly
//! baselines and the cumulative accumulator carry forward across every
//! window boundary, so nothing about the *accounting* is windowed —
//! only the memory.
//!
//! ## Exactness across window boundaries
//!
//! `Freq::cycles_to_dur` truncates (integer division), so per-window
//! `SimDuration`s are **not** additive: summing window tables would
//! drift from the batch run by up to a picosecond per window per
//! function. The cumulative accumulator therefore stays in the *cycle*
//! domain — per-`(item, func)` sample and cycle sums, per-item marked
//! cycles — and converts once at render time, exactly as the batch
//! estimator's `assemble_table` fold does. The conformance `windowed`
//! leg pins `cumulative_table()` byte-identical to the one-shot batch
//! pipeline across window sizes.
//!
//! ## Two cumulative modes
//!
//! * [`CumulativeMode::Exact`] keeps the per-`(item, func)` cycle sums.
//!   Memory grows with the number of *distinct completed items* —
//!   bounded for any finite run, and the mode every byte-equality check
//!   uses, but not constant over an unbounded stream.
//! * [`CumulativeMode::Folded`] keeps only per-function totals (plus
//!   whole-stream marked/unknown counts): constant memory regardless of
//!   stream length, for truly unbounded deployments. The fold loses the
//!   per-item axis, and says so instead of pretending otherwise — see
//!   `SERVE.md`'s steady-memory argument.

use crate::estimate::{self, EstimateTable};
use crate::interval::ItemInterval;
use crate::online::LossStats;
use fluctrace_cpu::{
    CoreId, FuncId, ItemId, MarkKind, MarkRecord, PebsRecord, SymbolTable, TraceBundle,
};
use fluctrace_obs as obs;
use fluctrace_sim::{Freq, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// How the cross-window cumulative state is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CumulativeMode {
    /// Per-`(item, func)` cycle sums: renders a table byte-identical to
    /// the batch pipeline, at memory proportional to distinct items.
    Exact,
    /// Per-function cycle sums only: constant memory over an unbounded
    /// stream, no per-item axis.
    Folded,
}

/// Configuration of the windowed integrator.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// TSC frequency of the traced machine.
    pub freq: Freq,
    /// Completed items per window; the window closes (is integrated,
    /// summarized and its raw data dropped) when this many items finish.
    pub window_items: u64,
    /// Closed-window summaries retained; older ones are evicted and
    /// counted in [`WindowedIntegrator::windows_evicted`].
    pub max_windows: usize,
    /// Flag an item when some function's elapsed time exceeds
    /// `divergence_factor ×` the running mean for that function
    /// (baselines carry across windows, like the online tracer's).
    pub divergence_factor: f64,
    /// Observations of a function before divergence checks start.
    pub warmup: u64,
    /// Per-core cap on samples awaiting their End mark (same eviction
    /// rule and accounting as [`crate::online::OnlineConfig::max_pending`]).
    pub max_pending: usize,
    /// Cumulative-state mode.
    pub cumulative: CumulativeMode,
    /// Anomaly episodes retained in the bounded ring (the cumulative
    /// count keeps growing; only the detail ring is bounded).
    pub max_episodes: usize,
}

impl WindowConfig {
    /// 256-item windows, 16 retained, 2× divergence after a 16-item
    /// warm-up, 64 Ki pending per core, exact cumulative, 256 episodes.
    pub fn new(freq: Freq) -> Self {
        WindowConfig {
            freq,
            window_items: 256,
            max_windows: 16,
            divergence_factor: 2.0,
            warmup: 16,
            max_pending: 1 << 16,
            cumulative: CumulativeMode::Exact,
            max_episodes: 256,
        }
    }
}

/// One anomaly episode: a completed item whose worst function diverged
/// from its running baseline. Unlike [`crate::online::OnlineAnomaly`],
/// no raw samples are retained — the windowed integrator's contract is
/// bounded memory, so episodes keep metadata only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// The diverging item.
    pub item: ItemId,
    /// Function whose time diverged (worst over the item, lowest
    /// `FuncId` on ties — same rule as the online tracer).
    pub func: FuncId,
    /// Estimated elapsed time for this item.
    pub elapsed: SimDuration,
    /// Running mean it was compared against.
    pub baseline_mean: SimDuration,
    /// Samples the item carried when it completed (the count the online
    /// tracer would have dumped).
    pub samples: u32,
    /// Index of the window the item completed in.
    pub window: u64,
}

/// Summary of one closed window. The raw marks and samples that built
/// it are gone by the time this exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Zero-based window index.
    pub index: u64,
    /// Items completed in this window.
    pub items: u64,
    /// Samples attributed to those items.
    pub samples: u64,
    /// Anomaly episodes recorded while this window was open.
    pub anomalies: u64,
    /// Per-item per-function estimates for this window only.
    pub table: EstimateTable,
    /// Snapshot of the *cumulative* loss ledger at window close — the
    /// counters never reset, so consecutive snapshots are monotone and
    /// differencing two of them gives the per-window loss exactly.
    pub loss: LossStats,
}

impl WindowSummary {
    /// Rough heap footprint, for the eviction byte ledger. An estimate
    /// (containers over-allocate), but a deterministic one.
    pub fn approx_bytes(&self) -> u64 {
        let funcs: u64 = self
            .table
            .items()
            .map(|ie| ie.funcs.len() as u64)
            .sum::<u64>();
        std::mem::size_of::<WindowSummary>() as u64 + self.table.len() as u64 * 96 + funcs * 40
    }
}

/// Per-function cumulative totals in [`CumulativeMode::Folded`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldedTotals {
    /// `(func, samples, cycles)` ascending by function id.
    pub funcs: Vec<(FuncId, u64, u64)>,
    /// Total marked cycles over all completed items.
    pub marked_cycles: u64,
    /// Attributed samples whose IP resolved to no function.
    pub unknown_samples: u64,
    /// Completed items folded in.
    pub items: u64,
}

/// Counter snapshot of a [`WindowedIntegrator`] (everything except the
/// retained summaries and tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Items whose End mark was seen and that were fully processed.
    pub items_processed: u64,
    /// Total samples received.
    pub samples_seen: u64,
    /// Samples attributed to a completed item.
    pub samples_attributed: u64,
    /// Windows closed so far.
    pub windows_closed: u64,
    /// Closed-window summaries evicted by the retention bound.
    pub windows_evicted: u64,
    /// Approximate bytes those evicted summaries occupied.
    pub evicted_bytes: u64,
    /// Anomaly episodes recorded (cumulative; the detail ring is
    /// bounded separately).
    pub episodes: u64,
    /// The 11-counter loss ledger, carried exactly across windows.
    pub loss: LossStats,
}

impl WindowReport {
    /// Exact sample conservation — the same identity as
    /// [`crate::online::OnlineReport::conserves_samples`].
    pub fn conserves_samples(&self) -> bool {
        self.samples_seen
            == self.samples_attributed
                + self.loss.samples_evicted
                + self.loss.samples_discarded
                + self.loss.samples_spin
    }
}

#[derive(Default)]
struct CoreState {
    /// Samples not yet assigned to a finished item, in tsc order.
    pending: Vec<PebsRecord>,
    /// Open start mark.
    open: Option<(ItemId, u64)>,
}

/// The open window's accumulating state: flat `(item, func, first,
/// last, count)` spans plus the intervals and unknown counts the
/// assembly needs. Dropped wholesale at window close.
#[derive(Default)]
struct OpenWindow {
    flat: Vec<(ItemId, FuncId, u64, u64, u32)>,
    intervals: Vec<ItemInterval>,
    unknown: BTreeMap<ItemId, u32>,
    items: u64,
    samples: u64,
    anomalies: u64,
}

/// Cross-window cumulative accumulator. Both variants live in the cycle
/// domain; time conversion happens once, at render.
enum Accum {
    Exact {
        /// `(item, func)` → (samples, cycles). The `u32` sample count
        /// mirrors the batch estimator's field width exactly.
        funcs: BTreeMap<(ItemId, FuncId), (u32, u64)>,
        /// Item → marked cycles (summed over its completed intervals).
        marked: BTreeMap<ItemId, u64>,
        /// Item → attributed-but-unresolvable sample count.
        unknown: BTreeMap<ItemId, u32>,
    },
    Folded {
        /// Func → (samples, cycles).
        funcs: BTreeMap<FuncId, (u64, u64)>,
        marked_cycles: u64,
        unknown_samples: u64,
        items: u64,
    },
}

/// Incremental integrator: same batch interface and loss semantics as
/// the online tracer's worker, windowed summaries and bounded memory
/// instead of an end-of-stream report. See the module docs.
pub struct WindowedIntegrator {
    symtab: Arc<SymbolTable>,
    config: WindowConfig,
    cores: BTreeMap<CoreId, CoreState>,
    /// Running per-function baselines (count, mean in ps) — carried
    /// across windows, exactly like the online tracer carries them
    /// across batches.
    baselines: BTreeMap<FuncId, (u64, f64)>,
    loss: LossStats,
    items_processed: u64,
    samples_seen: u64,
    samples_attributed: u64,
    open: OpenWindow,
    windows: VecDeque<WindowSummary>,
    windows_closed: u64,
    windows_evicted: u64,
    evicted_bytes: u64,
    accum: Accum,
    episodes: VecDeque<Episode>,
    episodes_total: u64,
    finished: bool,
}

impl WindowedIntegrator {
    /// Fresh integrator; window 0 is open and empty.
    pub fn new(symtab: Arc<SymbolTable>, config: WindowConfig) -> Self {
        let accum = match config.cumulative {
            CumulativeMode::Exact => Accum::Exact {
                funcs: BTreeMap::new(),
                marked: BTreeMap::new(),
                unknown: BTreeMap::new(),
            },
            CumulativeMode::Folded => Accum::Folded {
                funcs: BTreeMap::new(),
                marked_cycles: 0,
                unknown_samples: 0,
                items: 0,
            },
        };
        WindowedIntegrator {
            symtab,
            config,
            cores: BTreeMap::new(),
            baselines: BTreeMap::new(),
            loss: LossStats::default(),
            items_processed: 0,
            samples_seen: 0,
            samples_attributed: 0,
            open: OpenWindow::default(),
            windows: VecDeque::new(),
            windows_closed: 0,
            windows_evicted: 0,
            evicted_bytes: 0,
            accum,
            episodes: VecDeque::new(),
            episodes_total: 0,
            finished: false,
        }
    }

    /// The configuration this integrator runs under.
    pub fn config(&self) -> &WindowConfig {
        &self.config
    }

    /// Ingest one batch. Identical merge semantics to the online
    /// worker's `process`: the batch is sorted, then marks and samples
    /// are merged per `(core, tsc)` with the End-closes-after /
    /// Start-opens-before tie-break, so boundary samples attribute to
    /// the item exactly as the offline `ItemInterval::contains` would.
    pub fn ingest(&mut self, mut batch: TraceBundle) {
        obs::span!("window.batch", batch.samples.len());
        batch.sort();
        self.samples_seen += batch.samples.len() as u64;
        let mut si = 0;
        let mut mi = 0;
        while si < batch.samples.len() || mi < batch.marks.len() {
            let sample = batch.samples.get(si).copied();
            let mark = batch.marks.get(mi).copied();
            let take_sample = match (sample, mark) {
                (Some(s), Some(m)) => {
                    let sk = (s.core, s.tsc);
                    let mk = (m.core, m.tsc);
                    sk < mk || (sk == mk && m.kind == MarkKind::End)
                }
                (Some(_), None) => true,
                _ => false,
            };
            if take_sample {
                if let Some(s) = sample {
                    self.push_sample(s);
                }
                si += 1;
            } else {
                if let Some(m) = mark {
                    self.apply_mark(m);
                }
                mi += 1;
            }
        }
    }

    fn push_sample(&mut self, s: PebsRecord) {
        let cap = self.config.max_pending.max(1);
        let state = self.cores.entry(s.core).or_default();
        state.pending.push(s);
        if state.pending.len() > cap {
            let excess = state.pending.len() - cap;
            state.pending.drain(..excess);
            self.loss.samples_evicted += excess as u64;
        }
    }

    fn apply_mark(&mut self, m: MarkRecord) {
        let state = self.cores.entry(m.core).or_default();
        match m.kind {
            MarkKind::Start => {
                if state.open.take().is_some() {
                    self.loss.starts_abandoned += 1;
                    self.loss.samples_discarded += state.pending.len() as u64;
                } else {
                    self.loss.samples_spin += state.pending.len() as u64;
                }
                state.pending.clear();
                state.open = Some((m.item, m.tsc));
            }
            MarkKind::End => match state.open.take() {
                Some((item, start_tsc)) if item == m.item => {
                    let interval = ItemInterval {
                        core: m.core,
                        item,
                        start_tsc,
                        end_tsc: m.tsc,
                    };
                    let samples = std::mem::take(&mut state.pending);
                    self.finish_item(interval, samples);
                }
                Some(_) => {
                    self.loss.marks_mismatched += 1;
                    self.loss.samples_discarded += state.pending.len() as u64;
                    state.pending.clear();
                }
                None => {
                    self.loss.marks_orphaned += 1;
                    self.loss.samples_spin += state.pending.len() as u64;
                    state.pending.clear();
                }
            },
        }
    }

    fn finish_item(&mut self, interval: ItemInterval, samples: Vec<PebsRecord>) {
        self.items_processed += 1;
        self.samples_attributed += samples.len() as u64;
        // Per-function first/last/count within the interval — one
        // occupancy span per completed interval, the exact quantum the
        // batch estimator folds per interval index.
        let mut spans: BTreeMap<FuncId, (u64, u64, u32)> = BTreeMap::new();
        let mut unknown_in_item = 0u32;
        for s in &samples {
            if !interval.contains(s.tsc) {
                continue;
            }
            if interval.is_boundary(s.tsc) {
                self.loss.boundary_samples += 1;
            }
            match self.symtab.resolve(s.ip) {
                Some(func) => {
                    let e = spans.entry(func).or_insert((s.tsc, s.tsc, 0));
                    e.0 = e.0.min(s.tsc);
                    e.1 = e.1.max(s.tsc);
                    e.2 += 1;
                }
                None => unknown_in_item += 1,
            }
        }

        // Divergence check against the carried baselines: same rule,
        // same tie-break, same train-only-on-normal update as the
        // online tracer, so episode streams compare equal.
        let mut worst: Option<(FuncId, SimDuration, SimDuration)> = None;
        for (&func, &(first, last, _count)) in &spans {
            let elapsed = self.config.freq.cycles_to_dur(last.wrapping_sub(first));
            let (count, mean_ps) = self.baselines.entry(func).or_insert((0, 0.0));
            let diverges = *count >= self.config.warmup
                && elapsed.as_ps() as f64 > *mean_ps * self.config.divergence_factor
                && elapsed > SimDuration::ZERO;
            if diverges {
                let baseline = SimDuration::from_ps(*mean_ps as u64);
                match worst {
                    Some((_, e, _)) if e >= elapsed => {}
                    _ => worst = Some((func, elapsed, baseline)),
                }
            } else {
                *count += 1;
                *mean_ps += (elapsed.as_ps() as f64 - *mean_ps) / *count as f64;
            }
        }
        if let Some((func, elapsed, baseline_mean)) = worst {
            obs::event("window.episode", interval.item.0);
            self.episodes_total += 1;
            self.open.anomalies += 1;
            self.episodes.push_back(Episode {
                item: interval.item,
                func,
                elapsed,
                baseline_mean,
                samples: samples.len() as u32,
                window: self.windows_closed,
            });
            while self.episodes.len() > self.config.max_episodes.max(1) {
                self.episodes.pop_front();
            }
        }

        // Feed the open window and the cumulative accumulator from the
        // same fold — one source of truth for both granularities.
        self.open.items += 1;
        self.open.samples += samples.len() as u64;
        self.open.intervals.push(interval);
        if unknown_in_item > 0 {
            *self.open.unknown.entry(interval.item).or_insert(0) += unknown_in_item;
        }
        match &mut self.accum {
            Accum::Exact {
                funcs,
                marked,
                unknown,
            } => {
                for (&func, &(first, last, count)) in &spans {
                    let e = funcs.entry((interval.item, func)).or_insert((0, 0));
                    e.0 = e.0.wrapping_add(count);
                    e.1 = e.1.wrapping_add(last.wrapping_sub(first));
                }
                *marked.entry(interval.item).or_insert(0) =
                    marked.get(&interval.item).copied().unwrap_or(0) + interval.cycles();
                if unknown_in_item > 0 {
                    *unknown.entry(interval.item).or_insert(0) += unknown_in_item;
                }
            }
            Accum::Folded {
                funcs,
                marked_cycles,
                unknown_samples,
                items,
            } => {
                for (&func, &(first, last, count)) in &spans {
                    let e = funcs.entry(func).or_insert((0, 0));
                    e.0 += u64::from(count);
                    e.1 = e.1.wrapping_add(last.wrapping_sub(first));
                }
                *marked_cycles = marked_cycles.wrapping_add(interval.cycles());
                *unknown_samples += u64::from(unknown_in_item);
                *items += 1;
            }
        }
        for (func, (first, last, count)) in spans {
            self.open
                .flat
                .push((interval.item, func, first, last, count));
        }

        if self.open.items >= self.config.window_items.max(1) {
            self.close_window();
        }
    }

    /// Close the open window: assemble its table through the batch
    /// estimator's fold, snapshot the cumulative ledger, drop the raw
    /// spans, and evict the oldest summary past the retention bound.
    fn close_window(&mut self) {
        if self.open.items == 0 {
            return;
        }
        let open = std::mem::take(&mut self.open);
        obs::span!("window.close", open.items);
        let table = estimate::assemble_table(
            open.flat,
            open.unknown,
            0,
            &open.intervals,
            self.config.freq,
        );
        let summary = WindowSummary {
            index: self.windows_closed,
            items: open.items,
            samples: open.samples,
            anomalies: open.anomalies,
            table,
            loss: self.loss,
        };
        self.windows_closed += 1;
        self.windows.push_back(summary);
        while self.windows.len() > self.config.max_windows.max(1) {
            if let Some(evicted) = self.windows.pop_front() {
                self.windows_evicted += 1;
                self.evicted_bytes += evicted.approx_bytes();
            }
        }
    }

    /// Stream end: account for everything still buffered — open items
    /// are truncated, trailing pending samples are spin (the online
    /// worker's `finalize`, verbatim) — then close the partial window.
    /// Idempotent; further `ingest` calls after this start a new stream
    /// segment but the ledger keeps carrying forward.
    pub fn finish_stream(&mut self) {
        if self.finished {
            return;
        }
        for state in self.cores.values_mut() {
            if state.open.take().is_some() {
                self.loss.starts_truncated += 1;
                self.loss.samples_discarded += state.pending.len() as u64;
            } else {
                self.loss.samples_spin += state.pending.len() as u64;
            }
            state.pending.clear();
        }
        self.close_window();
        self.finished = true;
    }

    /// Counter snapshot (cheap; no tables).
    pub fn report(&self) -> WindowReport {
        WindowReport {
            items_processed: self.items_processed,
            samples_seen: self.samples_seen,
            samples_attributed: self.samples_attributed,
            windows_closed: self.windows_closed,
            windows_evicted: self.windows_evicted,
            evicted_bytes: self.evicted_bytes,
            episodes: self.episodes_total,
            loss: self.loss,
        }
    }

    /// Retained window summaries, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowSummary> {
        self.windows.iter()
    }

    /// Retained anomaly episodes, oldest first.
    pub fn episodes(&self) -> impl Iterator<Item = &Episode> {
        self.episodes.iter()
    }

    /// The cumulative loss ledger (never reset).
    pub fn loss(&self) -> LossStats {
        self.loss
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Render the exact cumulative table — `None` in
    /// [`CumulativeMode::Folded`]. Byte-identical to
    /// `EstimateTable::from_integrated` over the concatenated stream:
    /// the accumulator's cycle sums are handed to the same
    /// `assemble_table` fold as one synthetic span per `(item, func)`
    /// (first = 0, last = cycles) plus one synthetic interval per item
    /// carrying its marked cycles, so the conversion-once arithmetic is
    /// literally the batch estimator's.
    pub fn cumulative_table(&self) -> Option<EstimateTable> {
        let Accum::Exact {
            funcs,
            marked,
            unknown,
        } = &self.accum
        else {
            return None;
        };
        let flat: Vec<(ItemId, FuncId, u64, u64, u32)> = funcs
            .iter()
            .map(|(&(item, func), &(samples, cycles))| (item, func, 0, cycles, samples))
            .collect();
        let intervals: Vec<ItemInterval> = marked
            .iter()
            .map(|(&item, &cycles)| ItemInterval {
                core: CoreId(0),
                item,
                start_tsc: 0,
                end_tsc: cycles,
            })
            .collect();
        Some(estimate::assemble_table(
            flat,
            unknown.clone(),
            0,
            &intervals,
            self.config.freq,
        ))
    }

    /// Per-function cumulative totals. Always available: in `Exact`
    /// mode they are derived by folding the exact accumulator, so the
    /// two modes can be cross-checked against each other.
    pub fn folded_totals(&self) -> FoldedTotals {
        match &self.accum {
            Accum::Folded {
                funcs,
                marked_cycles,
                unknown_samples,
                items,
            } => FoldedTotals {
                funcs: funcs
                    .iter()
                    .map(|(&func, &(samples, cycles))| (func, samples, cycles))
                    .collect(),
                marked_cycles: *marked_cycles,
                unknown_samples: *unknown_samples,
                items: *items,
            },
            Accum::Exact {
                funcs,
                marked,
                unknown,
            } => {
                let mut fold: BTreeMap<FuncId, (u64, u64)> = BTreeMap::new();
                for (&(_item, func), &(samples, cycles)) in funcs {
                    let e = fold.entry(func).or_insert((0, 0));
                    e.0 += u64::from(samples);
                    e.1 = e.1.wrapping_add(cycles);
                }
                FoldedTotals {
                    funcs: fold
                        .iter()
                        .map(|(&func, &(samples, cycles))| (func, samples, cycles))
                        .collect(),
                    marked_cycles: marked.values().fold(0u64, |a, &c| a.wrapping_add(c)),
                    unknown_samples: unknown.values().map(|&n| u64::from(n)).sum(),
                    // Completed intervals, not distinct ids: shared
                    // item ids fold many intervals into one map entry,
                    // and the Folded twin counts every completion.
                    items: self.items_processed,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::{integrate, MappingMode};
    use crate::online::{OnlineConfig, OnlineTracer};
    use fluctrace_cpu::{HwEvent, SymbolTableBuilder, VirtAddr, NO_TAG};

    fn freq() -> Freq {
        Freq::ghz(3)
    }

    fn symtab(funcs: usize) -> (Arc<SymbolTable>, Vec<FuncId>) {
        let mut b = SymbolTableBuilder::new();
        let ids = (0..funcs).map(|i| b.add(&format!("f{i}"), 256)).collect();
        (b.build().into_shared(), ids)
    }

    fn sample(core: u32, tsc: u64, ip: VirtAddr) -> PebsRecord {
        PebsRecord {
            core: CoreId(core),
            tsc,
            ip,
            r13: NO_TAG,
            event: HwEvent::UopsRetired,
        }
    }

    fn mark(core: u32, tsc: u64, item: u64, kind: MarkKind) -> MarkRecord {
        MarkRecord {
            core: CoreId(core),
            tsc,
            item: ItemId(item),
            kind,
        }
    }

    /// A clean two-core workload with IP locality, unknown IPs and
    /// inter-item spin samples, split into `cut`-item batches.
    fn workload(items_per_core: u64, cut: usize) -> (Vec<TraceBundle>, Arc<SymbolTable>) {
        let (symtab, funcs) = symtab(5);
        let mut batches = Vec::new();
        let mut cur = TraceBundle::default();
        let mut in_cur = 0usize;
        for core in 0..2u32 {
            let mut tsc = 1000 + core as u64 * 37;
            for i in 0..items_per_core {
                let item = core as u64 * items_per_core + i;
                cur.marks.push(mark(core, tsc, item, MarkKind::Start));
                let n = 2 + (i % 4) as usize;
                for k in 0..n {
                    tsc += 60 + (k as u64 * 13) % 40;
                    let ip = if (i + k as u64) % 9 == 8 {
                        VirtAddr(3) // unknown
                    } else {
                        let f = funcs[(i as usize + k) % funcs.len()];
                        VirtAddr(symtab.range(f).start.as_u64() + (k as u64 % 64))
                    };
                    cur.samples.push(sample(core, tsc, ip));
                }
                tsc += 50;
                cur.marks.push(mark(core, tsc, item, MarkKind::End));
                if i % 5 == 2 {
                    // Inter-item spin sample.
                    tsc += 11;
                    cur.samples.push(sample(
                        core,
                        tsc,
                        VirtAddr(symtab.range(funcs[0]).start.as_u64()),
                    ));
                }
                tsc += 31;
                in_cur += 1;
                if in_cur >= cut {
                    cur.sort();
                    batches.push(std::mem::take(&mut cur));
                    in_cur = 0;
                }
            }
        }
        if !cur.marks.is_empty() || !cur.samples.is_empty() {
            cur.sort();
            batches.push(cur);
        }
        (batches, symtab)
    }

    fn merged(batches: &[TraceBundle]) -> TraceBundle {
        let mut all = TraceBundle::default();
        for b in batches {
            all.merge(b.clone());
        }
        all.sort();
        all
    }

    fn run_windowed(
        batches: &[TraceBundle],
        symtab: &Arc<SymbolTable>,
        mut cfg: WindowConfig,
    ) -> WindowedIntegrator {
        cfg.freq = freq();
        let mut wi = WindowedIntegrator::new(Arc::clone(symtab), cfg);
        for b in batches {
            wi.ingest(b.clone());
        }
        wi.finish_stream();
        wi
    }

    #[test]
    fn cumulative_table_matches_batch_pipeline_across_window_sizes() {
        let (batches, symtab) = workload(23, 4);
        let all = merged(&batches);
        let it = integrate(&all, &symtab, freq(), MappingMode::Intervals);
        let batch_table = EstimateTable::from_integrated(&it);
        let batch_json = serde_json::to_string(&batch_table).unwrap();
        for window_items in [1u64, 2, 3, 7, 64, 10_000] {
            let mut cfg = WindowConfig::new(freq());
            cfg.window_items = window_items;
            cfg.max_windows = 4;
            let wi = run_windowed(&batches, &symtab, cfg);
            let table = wi.cumulative_table().expect("exact mode");
            assert_eq!(
                serde_json::to_string(&table).unwrap(),
                batch_json,
                "window_items={window_items}"
            );
            assert_eq!(table, batch_table, "window_items={window_items}");
            assert!(wi.report().conserves_samples());
        }
    }

    #[test]
    fn ledger_and_episodes_match_online_tracer() {
        let (batches, symtab) = workload(31, 3);
        // Flag-everything config on both sides.
        let mut ocfg = OnlineConfig::new(freq());
        ocfg.divergence_factor = 0.0;
        ocfg.warmup = 0;
        let tracer = OnlineTracer::spawn(Arc::clone(&symtab), ocfg);
        for b in &batches {
            tracer.submit(b.clone()).unwrap();
        }
        let online = tracer.finish().unwrap();

        let mut cfg = WindowConfig::new(freq());
        cfg.window_items = 5;
        cfg.divergence_factor = 0.0;
        cfg.warmup = 0;
        cfg.max_episodes = 1 << 20;
        let wi = run_windowed(&batches, &symtab, cfg);
        let r = wi.report();
        assert_eq!(
            (r.items_processed, r.samples_seen, r.samples_attributed),
            (
                online.items_processed,
                online.samples_seen,
                online.samples_attributed
            )
        );
        assert_eq!(r.loss, online.loss);

        let mut got: Vec<_> = wi
            .episodes()
            .map(|e| (e.item.0, e.func.0, e.elapsed.as_ps(), e.samples as usize))
            .collect();
        got.sort_unstable();
        let mut want: Vec<_> = online
            .anomalies
            .iter()
            .map(|a| (a.item.0, a.func.0, a.elapsed.as_ps(), a.raw_samples.len()))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(wi.report().episodes, online.anomalies.len() as u64);
    }

    #[test]
    fn faulted_stream_accounting_matches_online_tracer() {
        // Orphan End, mismatched End, abandoned Start, truncated Start,
        // eviction — every ledger branch, compared against the online
        // worker on the same bytes.
        let (symtab, funcs) = symtab(2);
        let ip = VirtAddr(symtab.range(funcs[0]).start.as_u64());
        let mut b = TraceBundle::default();
        // Core 0: orphan end with spin samples before it.
        b.samples.push(sample(0, 10, ip));
        b.marks.push(mark(0, 20, 7, MarkKind::End));
        // Then a clean item.
        b.marks.push(mark(0, 30, 1, MarkKind::Start));
        b.samples.push(sample(0, 40, ip));
        b.samples.push(sample(0, 50, ip));
        b.marks.push(mark(0, 60, 1, MarkKind::End));
        // Mismatched end discards pending.
        b.marks.push(mark(0, 70, 2, MarkKind::Start));
        b.samples.push(sample(0, 80, ip));
        b.marks.push(mark(0, 90, 9, MarkKind::End));
        // Abandoned start.
        b.marks.push(mark(0, 100, 3, MarkKind::Start));
        b.samples.push(sample(0, 110, ip));
        b.marks.push(mark(0, 120, 4, MarkKind::Start));
        b.samples.push(sample(0, 130, ip));
        b.samples.push(sample(0, 140, ip));
        b.marks.push(mark(0, 150, 4, MarkKind::End));
        // Core 1: truncated start with pending samples.
        b.marks.push(mark(1, 10, 5, MarkKind::Start));
        b.samples.push(sample(1, 20, ip));
        b.sort();

        let mut ocfg = OnlineConfig::new(freq());
        ocfg.divergence_factor = 0.0;
        ocfg.warmup = 0;
        ocfg.max_pending = 2;
        let tracer = OnlineTracer::spawn(Arc::clone(&symtab), ocfg);
        tracer.submit(b.clone()).unwrap();
        let online = tracer.finish().unwrap();

        let mut cfg = WindowConfig::new(freq());
        cfg.window_items = 2;
        cfg.max_pending = 2;
        cfg.divergence_factor = 0.0;
        cfg.warmup = 0;
        let wi = run_windowed(&[b], &symtab, cfg);
        let r = wi.report();
        assert_eq!(r.loss, online.loss);
        assert_eq!(r.items_processed, online.items_processed);
        assert!(r.conserves_samples());
        assert!(r.loss.marks_orphaned > 0);
        assert!(r.loss.marks_mismatched > 0);
        assert!(r.loss.starts_abandoned > 0);
        assert!(r.loss.starts_truncated > 0);
        assert!(r.loss.samples_discarded > 0);
    }

    #[test]
    fn retention_evicts_oldest_and_counts_bytes() {
        let (batches, symtab) = workload(40, 4);
        let mut cfg = WindowConfig::new(freq());
        cfg.window_items = 4;
        cfg.max_windows = 3;
        let wi = run_windowed(&batches, &symtab, cfg);
        let r = wi.report();
        assert_eq!(r.windows_closed, 20);
        assert_eq!(wi.windows().count(), 3);
        assert_eq!(r.windows_evicted, 17);
        assert!(r.evicted_bytes > 0);
        // Oldest retained window is the (closed - retained)th.
        let first = wi.windows().next().unwrap();
        assert_eq!(first.index, 17);
        // Loss snapshots are monotone in the retained ring.
        let mut prev = 0u64;
        for w in wi.windows() {
            let lost = w.loss.samples_lost() + w.loss.samples_spin;
            assert!(lost >= prev);
            prev = lost;
        }
    }

    #[test]
    fn window_summaries_partition_the_item_stream() {
        let (batches, symtab) = workload(17, 5);
        let mut cfg = WindowConfig::new(freq());
        cfg.window_items = 6;
        cfg.max_windows = 1 << 20;
        let wi = run_windowed(&batches, &symtab, cfg);
        let r = wi.report();
        let items: u64 = wi.windows().map(|w| w.items).sum();
        let samples: u64 = wi.windows().map(|w| w.samples).sum();
        assert_eq!(items, r.items_processed);
        assert_eq!(samples, r.samples_attributed);
        // Every full window holds exactly window_items; only the final
        // flush may be partial.
        let sizes: Vec<u64> = wi.windows().map(|w| w.items).collect();
        for &s in sizes.iter().rev().skip(1) {
            assert_eq!(s, 6);
        }
        // Per-window tables sum (in the cycle-free sample dimension) to
        // the cumulative table.
        let cum = wi.cumulative_table().unwrap();
        let window_samples: u64 = wi
            .windows()
            .flat_map(|w| w.table.items())
            .flat_map(|ie| ie.funcs.iter())
            .map(|fe| u64::from(fe.samples))
            .sum();
        let cum_samples: u64 = cum
            .items()
            .flat_map(|ie| ie.funcs.iter())
            .map(|fe| u64::from(fe.samples))
            .sum();
        assert_eq!(window_samples, cum_samples);
    }

    #[test]
    fn folded_totals_agree_with_exact_fold() {
        let (batches, symtab) = workload(19, 3);
        let mut cfg = WindowConfig::new(freq());
        cfg.window_items = 5;
        let exact = run_windowed(&batches, &symtab, cfg);
        cfg.cumulative = CumulativeMode::Folded;
        let folded = run_windowed(&batches, &symtab, cfg);
        assert_eq!(exact.folded_totals(), folded.folded_totals());
        assert!(folded.cumulative_table().is_none());
        assert_eq!(folded.report(), exact.report());
    }

    #[test]
    fn windowed_durations_are_not_naively_additive() {
        // The reason the accumulator lives in the cycle domain: at 3 GHz
        // cycles_to_dur truncates, so splitting one span across windows
        // and summing the per-window durations underestimates. Pin the
        // effect so nobody "simplifies" the accumulator into duration
        // sums.
        let f = freq();
        let (a, b, c) = (1u64, 2u64, 3u64);
        assert_eq!(a + b, c);
        assert!(f.cycles_to_dur(a) + f.cycles_to_dur(b) < f.cycles_to_dur(c));
    }

    #[test]
    fn finish_stream_is_idempotent_and_flushes_partial_window() {
        let (batches, symtab) = workload(7, 3);
        let mut cfg = WindowConfig::new(freq());
        cfg.window_items = 1000;
        let mut wi = WindowedIntegrator::new(Arc::clone(&symtab), cfg);
        for b in &batches {
            wi.ingest(b.clone());
        }
        assert_eq!(wi.windows_closed(), 0);
        wi.finish_stream();
        assert_eq!(wi.windows_closed(), 1);
        let r = wi.report();
        wi.finish_stream();
        assert_eq!(wi.report(), r);
    }
}
