//! Fluctuation detection: the diagnosis step.
//!
//! A *fluctuation* is "different performance for similar or identical
//! data-items". The caller therefore supplies a **content grouping** —
//! a label under which items should behave identically (the query's `n`
//! in the proof-of-concept app, the packet type in the ACL study) — and
//! the detector flags, per `(group, function)`, the items whose
//! estimated elapsed time deviates from their group.
//!
//! Robust statistics (median / MAD) are used so that the outliers being
//! hunted do not mask themselves by inflating the group's mean.

use crate::estimate::EstimateTable;
use fluctrace_cpu::{FuncId, ItemId};
use fluctrace_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics of one `(group, function)` population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupFuncStats {
    /// The content group label.
    pub group: String,
    /// The function.
    pub func: FuncId,
    /// Items contributing an estimable elapsed time.
    pub count: usize,
    /// Median elapsed time.
    pub median: SimDuration,
    /// Median absolute deviation (scaled by 1.4826 to be σ-comparable
    /// for normal data).
    pub mad: SimDuration,
    /// Minimum / maximum observed.
    pub min: SimDuration,
    /// Maximum observed.
    pub max: SimDuration,
}

/// One flagged item.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outlier {
    /// The content group label.
    pub group: String,
    /// The function whose time deviated.
    pub func: FuncId,
    /// The deviating item.
    pub item: ItemId,
    /// The item's estimated elapsed time for the function.
    pub elapsed: SimDuration,
    /// The group median it deviates from.
    pub median: SimDuration,
    /// Deviation in robust sigmas (|x − median| / MAD), `inf` when the
    /// group is otherwise constant.
    pub sigmas: f64,
}

/// An item whose *total* (mark-to-mark) time deviates from its group —
/// the way a fluctuation is first noticed before any function is
/// implicated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TotalOutlier {
    /// The content group label.
    pub group: String,
    /// The deviating item.
    pub item: ItemId,
    /// The item's total processing time (from marks).
    pub total: SimDuration,
    /// The group median it deviates from.
    pub median: SimDuration,
    /// Deviation in robust sigmas.
    pub sigmas: f64,
}

/// The detector's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluctuationReport {
    /// Per-(group, function) statistics.
    pub groups: Vec<GroupFuncStats>,
    /// Items flagged as fluctuations, sorted by decreasing deviation.
    pub outliers: Vec<Outlier>,
    /// Items whose total latency deviates from their group (may include
    /// items no single sampled function explains — e.g. a function that
    /// only ever runs on the slow path).
    pub total_outliers: Vec<TotalOutlier>,
    /// The threshold used, in robust sigmas.
    pub threshold_sigmas: f64,
}

impl FluctuationReport {
    /// Outliers for one function.
    pub fn outliers_for(&self, func: FuncId) -> impl Iterator<Item = &Outlier> {
        self.outliers.iter().filter(move |o| o.func == func)
    }

    /// True if any fluctuation was flagged (function-level or total).
    pub fn any(&self) -> bool {
        !self.outliers.is_empty() || !self.total_outliers.is_empty()
    }
}

fn median_of_sorted(xs: &[u64]) -> u64 {
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2
    }
}

/// Detect fluctuations in `table`.
///
/// `group_of` labels each item with its content group (items expected to
/// behave identically); items mapped to `None` are ignored. An item is
/// flagged when its elapsed time for some function deviates from the
/// group median by more than `threshold_sigmas` robust sigmas **and** by
/// more than `min_abs` (absolute guard so microscopic wobbles in
/// near-constant groups are not flagged).
pub fn detect(
    table: &EstimateTable,
    mut group_of: impl FnMut(ItemId) -> Option<String>,
    threshold_sigmas: f64,
    min_abs: SimDuration,
) -> FluctuationReport {
    // Collect (group, func) -> [(item, elapsed_ps)].
    let mut pops: BTreeMap<(String, FuncId), Vec<(ItemId, u64)>> = BTreeMap::new();
    for ie in table.items() {
        let Some(group) = group_of(ie.item) else {
            continue;
        };
        for fe in &ie.funcs {
            if fe.is_estimable() {
                pops.entry((group.clone(), fe.func))
                    .or_default()
                    .push((ie.item, fe.elapsed.as_ps()));
            }
        }
    }

    let mut groups = Vec::new();
    let mut outliers = Vec::new();
    for ((group, func), pop) in pops {
        let mut sorted: Vec<u64> = pop.iter().map(|&(_, e)| e).collect();
        sorted.sort_unstable();
        let median = median_of_sorted(&sorted);
        let mut devs: Vec<u64> = sorted.iter().map(|&x| x.abs_diff(median)).collect();
        devs.sort_unstable();
        // 1.4826 · MAD ≈ σ for normal data.
        let mad = (median_of_sorted(&devs) as f64 * 1.4826) as u64;
        groups.push(GroupFuncStats {
            group: group.clone(),
            func,
            count: pop.len(),
            median: SimDuration::from_ps(median),
            mad: SimDuration::from_ps(mad),
            min: SimDuration::from_ps(sorted[0]),
            max: SimDuration::from_ps(*sorted.last().unwrap()),
        });
        if pop.len() < 3 {
            // Too few to call anything an outlier.
            continue;
        }
        for (item, elapsed) in pop {
            let dev = elapsed.abs_diff(median);
            if dev <= min_abs.as_ps() {
                continue;
            }
            let sigmas = if mad == 0 {
                f64::INFINITY
            } else {
                dev as f64 / mad as f64
            };
            if sigmas > threshold_sigmas {
                outliers.push(Outlier {
                    group: group.clone(),
                    func,
                    item,
                    elapsed: SimDuration::from_ps(elapsed),
                    median: SimDuration::from_ps(median),
                    sigmas,
                });
            }
        }
    }
    // Severity order: robust sigmas first, absolute deviation as the
    // tie-break (sigma is infinite for every outlier of a constant-MAD
    // group, so the absolute deviation does the real ranking there).
    outliers.sort_by(|a, b| {
        b.sigmas
            .partial_cmp(&a.sigmas)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let da = a.elapsed.as_ps().abs_diff(a.median.as_ps());
                let db = b.elapsed.as_ps().abs_diff(b.median.as_ps());
                db.cmp(&da)
            })
    });
    // Total-latency populations per group (from marks, where present).
    let mut total_pops: BTreeMap<String, Vec<(ItemId, u64)>> = BTreeMap::new();
    for ie in table.items() {
        let Some(total) = ie.marked_total else {
            continue;
        };
        let Some(group) = group_of(ie.item) else {
            continue;
        };
        total_pops
            .entry(group)
            .or_default()
            .push((ie.item, total.as_ps()));
    }
    let mut total_outliers = Vec::new();
    for (group, pop) in total_pops {
        if pop.len() < 3 {
            continue;
        }
        let mut sorted: Vec<u64> = pop.iter().map(|&(_, t)| t).collect();
        sorted.sort_unstable();
        let median = median_of_sorted(&sorted);
        let mut devs: Vec<u64> = sorted.iter().map(|&x| x.abs_diff(median)).collect();
        devs.sort_unstable();
        let mad = (median_of_sorted(&devs) as f64 * 1.4826) as u64;
        for (item, total) in pop {
            let dev = total.abs_diff(median);
            if dev <= min_abs.as_ps() {
                continue;
            }
            let sigmas = if mad == 0 {
                f64::INFINITY
            } else {
                dev as f64 / mad as f64
            };
            if sigmas > threshold_sigmas {
                total_outliers.push(TotalOutlier {
                    group: group.clone(),
                    item,
                    total: SimDuration::from_ps(total),
                    median: SimDuration::from_ps(median),
                    sigmas,
                });
            }
        }
    }
    total_outliers.sort_by(|a, b| {
        b.sigmas
            .partial_cmp(&a.sigmas)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let da = a.total.as_ps().abs_diff(a.median.as_ps());
                let db = b.total.as_ps().abs_diff(b.median.as_ps());
                db.cmp(&da)
            })
    });

    FluctuationReport {
        groups,
        outliers,
        total_outliers,
        threshold_sigmas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::{integrate, MappingMode};
    use fluctrace_cpu::{
        CoreId, HwEvent, MarkKind, MarkRecord, PebsRecord, SymbolTable, SymbolTableBuilder,
        TraceBundle, NO_TAG,
    };
    use fluctrace_sim::Freq;

    /// Build a table where item i's function-f time is `cycles[i]`.
    fn table_with_times(cycles: &[u64]) -> (EstimateTable, FuncId) {
        let mut b = SymbolTableBuilder::new();
        let f = b.add("f", 100);
        let symtab: SymbolTable = b.build();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        let mut t = 0u64;
        for (i, &c) in cycles.iter().enumerate() {
            bundle.marks.push(MarkRecord {
                core: CoreId(0),
                tsc: t,
                item: ItemId(i as u64),
                kind: MarkKind::Start,
            });
            bundle.samples.push(PebsRecord {
                core: CoreId(0),
                tsc: t + 10,
                ip,
                r13: NO_TAG,
                event: HwEvent::UopsRetired,
            });
            bundle.samples.push(PebsRecord {
                core: CoreId(0),
                tsc: t + 10 + c,
                ip,
                r13: NO_TAG,
                event: HwEvent::UopsRetired,
            });
            t += c + 1000;
            bundle.marks.push(MarkRecord {
                core: CoreId(0),
                tsc: t,
                item: ItemId(i as u64),
                kind: MarkKind::End,
            });
            t += 100;
        }
        bundle.sort();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        (EstimateTable::from_integrated(&it), f)
    }

    #[test]
    fn flags_the_slow_item() {
        // Items 0..7 take 3000 cycles, item 3 takes 30000.
        let mut cycles = vec![3000u64; 8];
        cycles[3] = 30_000;
        let (table, f) = table_with_times(&cycles);
        let report = detect(
            &table,
            |_| Some("same".to_string()),
            5.0,
            SimDuration::from_ns(100),
        );
        assert!(report.any());
        assert_eq!(report.outliers.len(), 1);
        let o = &report.outliers[0];
        assert_eq!(o.item, ItemId(3));
        assert_eq!(o.func, f);
        assert!(o.sigmas > 5.0);
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].count, 8);
    }

    #[test]
    fn constant_series_never_flags() {
        let (table, _) = table_with_times(&[5000; 10]);
        let report = detect(
            &table,
            |_| Some("same".to_string()),
            3.0,
            SimDuration::from_ns(10),
        );
        assert!(!report.any());
    }

    #[test]
    fn near_constant_jitter_guarded_by_min_abs() {
        // ±3 cycles of jitter: robust sigma is tiny, so everything looks
        // like "infinite sigmas" without the absolute guard.
        let cycles: Vec<u64> = (0..10).map(|i| 5000 + (i % 3)).collect();
        let (table, _) = table_with_times(&cycles);
        let report = detect(
            &table,
            |_| Some("same".to_string()),
            3.0,
            SimDuration::from_ns(100),
        );
        assert!(!report.any(), "{:?}", report.outliers);
    }

    #[test]
    fn groups_are_separate_populations() {
        // Group "a": items 0-3 at 3000; group "b": items 4-7 at 30000.
        // Neither group fluctuates internally.
        let mut cycles = vec![3000u64; 8];
        for c in cycles.iter_mut().skip(4) {
            *c = 30_000;
        }
        let (table, _) = table_with_times(&cycles);
        let report = detect(
            &table,
            |item| Some(if item.0 < 4 { "a".into() } else { "b".into() }),
            3.0,
            SimDuration::from_ns(100),
        );
        assert!(!report.any());
        assert_eq!(report.groups.len(), 2);
    }

    #[test]
    fn ungrouped_items_ignored() {
        let mut cycles = vec![3000u64; 6];
        cycles[5] = 60_000; // would be an outlier, but excluded
        let (table, _) = table_with_times(&cycles);
        let report = detect(
            &table,
            |item| (item.0 != 5).then(|| "g".to_string()),
            3.0,
            SimDuration::from_ns(100),
        );
        assert!(!report.any());
        assert_eq!(report.groups[0].count, 5);
    }

    #[test]
    fn too_small_population_not_flagged() {
        let (table, _) = table_with_times(&[3000, 30_000]);
        let report = detect(&table, |_| Some("g".into()), 3.0, SimDuration::from_ns(100));
        assert!(!report.any());
    }

    #[test]
    fn outliers_sorted_by_severity() {
        let mut cycles = vec![3000u64; 12];
        cycles[2] = 30_000;
        cycles[9] = 90_000;
        let (table, _) = table_with_times(&cycles);
        let report = detect(&table, |_| Some("g".into()), 5.0, SimDuration::from_ns(100));
        assert_eq!(report.outliers.len(), 2);
        assert_eq!(report.outliers[0].item, ItemId(9));
        assert_eq!(report.outliers[1].item, ItemId(2));
    }
}
