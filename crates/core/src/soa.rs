//! Structure-of-arrays fast path for the integrate→estimate hot
//! pipeline.
//!
//! The AoS path ([`crate::integrate`]) materializes a 48-byte
//! [`AttributedSample`] per sample, with three `Option` discriminants
//! that every downstream loop re-branches on. At the sample rates the
//! paper targets (hundreds of thousands of samples per second of traced
//! execution, §IV.C.3) the analysis pipeline itself becomes the
//! bottleneck, so this module keeps the *same attribution semantics* in
//! columnar form:
//!
//! * one column per field (`core`/`tsc`/`item`/`func`/`span`), with
//!   sentinel values ([`NO_ITEM`], [`NO_FUNC`], [`NO_SPAN`]) instead of
//!   `Option` — ~28 bytes per sample, no discriminants, and each kernel
//!   loop touches only the columns it needs;
//! * output columns are allocated once and split into per-shard chunks
//!   ([`crate::parallel::run_parts`]), so the parallel merge writes
//!   straight into its final location — no per-shard `Vec` + splice;
//! * symbol resolution memoizes the last hit: consecutive samples
//!   usually land in the same function, turning the per-sample binary
//!   search into a single range check.
//!
//! Correctness is anchored three ways: [`SoaTrace::to_integrated`] must
//! round-trip to the AoS trace bit for bit (unit + conformance tests),
//! [`crate::EstimateTable::from_soa`] must equal `from_integrated` and
//! the PR 4 oracle byte for byte (the 240-seed differential sweep), and
//! the `perf-hunt` bench gates the speedup so the fast path cannot
//! silently regress.
//!
//! ## Sentinel safety
//!
//! `NO_ITEM` is `u64::MAX`. Register-tag decoding can never produce it
//! (`decode_tag` yields `r13 − 1` with `r13 ≠ 0`), and interval mode
//! checks the reconstructed intervals up front: if any interval carries
//! the reserved id — possible only from a hand-built mark stream — the
//! builder falls back to the AoS path and converts, trading speed for
//! unconditional correctness. `NO_FUNC`/`NO_SPAN` are `u32::MAX`; both
//! would require ~4 billion functions or intervals, a ceiling the AoS
//! path already shares (`interval_idx` is `u32` there too).

use crate::integrate::{
    build_item_index, integrate_with_threads, shard_by_core, AttributedSample, IntegratedTrace,
    MappingMode, PipelineStats, PARALLEL_MIN_SAMPLES,
};
use crate::interval::{build_intervals, IntervalError, ItemInterval};
use crate::parallel;
use fluctrace_cpu::{
    AddrRange, CoreId, FuncId, ItemId, PebsRecord, SymbolTable, TraceBundle, NO_TAG,
};
use fluctrace_obs as obs;
use fluctrace_sim::Freq;

/// Sentinel in the `item` column: sample outside every interval / tag.
pub const NO_ITEM: u64 = u64::MAX;
/// Sentinel in the `func` column: IP outside every known function.
pub const NO_FUNC: u32 = u32::MAX;
/// Sentinel in the `span` column: no interval index (gap sample, or
/// register-tag mode where spans are run ids computed by the estimator).
pub const NO_SPAN: u32 = u32::MAX;

/// The attributed sample columns. All vectors have equal length; row
/// `i` of every column describes the same sample, in `(core, tsc)`
/// order — the same order the AoS path stores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleColumns {
    /// Core the sample was taken on.
    pub core: Vec<u32>,
    /// TSC timestamp.
    pub tsc: Vec<u64>,
    /// Attributed item id, or [`NO_ITEM`].
    pub item: Vec<u64>,
    /// Resolved function id, or [`NO_FUNC`].
    pub func: Vec<u32>,
    /// Global interval index (interval mode), or [`NO_SPAN`].
    pub span: Vec<u32>,
}

impl SampleColumns {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.tsc.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.tsc.is_empty()
    }

    /// Zero-filled columns of length `n`, ready for chunked writes.
    fn zeroed(n: usize) -> Self {
        SampleColumns {
            core: vec![0; n], // lint:allow(hot-path-alloc): one-time transpose-time column allocation, not per sample
            tsc: vec![0; n], // lint:allow(hot-path-alloc): one-time transpose-time column allocation, not per sample
            item: vec![0; n], // lint:allow(hot-path-alloc): one-time transpose-time column allocation, not per sample
            func: vec![0; n], // lint:allow(hot-path-alloc): one-time transpose-time column allocation, not per sample
            span: vec![0; n], // lint:allow(hot-path-alloc): one-time transpose-time column allocation, not per sample
        }
    }
}

/// The columnar integrated trace: what [`IntegratedTrace`] holds, with
/// the sample rows transposed into [`SampleColumns`].
#[derive(Debug, Clone)]
pub struct SoaTrace {
    /// Attributed sample columns, in `(core, tsc)` order.
    pub cols: SampleColumns,
    /// Item intervals reconstructed from marks, in `(core, start)` order.
    pub intervals: Vec<ItemInterval>,
    /// Mark-pairing problems encountered.
    pub errors: Vec<IntervalError>,
    /// TSC frequency, for converting cycle differences to time.
    pub freq: Freq,
    /// The mapping mode used.
    pub mode: MappingMode,
    /// Wall-time/throughput counters of this integration run.
    pub stats: PipelineStats,
    /// Per-item `(item, start, end)` sample ranges, as in the AoS trace.
    pub(crate) item_index: Vec<(ItemId, u32, u32)>,
    /// The reserved-id escape hatch: when a trace actually uses item
    /// `u64::MAX` the columns cannot represent it (it collides with
    /// [`NO_ITEM`]), so the full AoS trace is kept and the estimator /
    /// round-trip delegate to it. `None` on every realistic trace.
    pub(crate) aos_fallback: Option<Box<IntegratedTrace>>,
}

/// [`crate::integrate`]'s columnar twin: same inputs, same attribution,
/// columnar output. Pool size from `FLUCTRACE_THREADS`, sequential for
/// tiny bundles.
pub fn integrate_soa(
    bundle: &TraceBundle,
    symtab: &SymbolTable,
    freq: Freq,
    mode: MappingMode,
) -> SoaTrace {
    let threads = if bundle.samples.len() < PARALLEL_MIN_SAMPLES {
        1
    } else {
        parallel::configured_threads()
    };
    integrate_soa_with_threads(bundle, symtab, freq, mode, threads)
}

/// [`integrate_soa`] with an explicit worker count (`threads = 1` is the
/// sequential reference; results are identical for every pool size).
pub fn integrate_soa_with_threads(
    bundle: &TraceBundle,
    symtab: &SymbolTable,
    freq: Freq,
    mode: MappingMode,
    threads: usize,
) -> SoaTrace {
    let threads = threads.max(1);
    obs::span!("soa.integrate.run", threads);

    // Phase 1 — per-core interval reconstruction, identical to the AoS
    // path (shared sharding + splicing, same obs-visible task counts).
    let t0 = obs::now_ticks();
    let shards = shard_by_core(&bundle.marks, &bundle.samples);
    let built: Vec<(Vec<ItemInterval>, Vec<IntervalError>)> = parallel::run_indexed(
        shards.iter().map(|sh| sh.marks).collect(),
        threads,
        |shard_idx, marks| {
            obs::span!("soa.integrate.shard", shard_idx);
            build_intervals(marks)
        },
    );
    let mut intervals = Vec::with_capacity(built.iter().map(|(ivs, _)| ivs.len()).sum());
    let mut errors = Vec::new();
    let mut shard_bounds: Vec<(usize, usize)> = Vec::with_capacity(built.len());
    for (ivs, errs) in &built {
        shard_bounds.push((intervals.len(), ivs.len()));
        intervals.extend_from_slice(ivs);
        errors.extend_from_slice(errs);
    }
    let interval_build_ns = obs::now_ticks().wrapping_sub(t0);

    // Interval bound columns for the branch-light sweep, plus the
    // sentinel-collision check (see module docs).
    let mut iv_start: Vec<u64> = Vec::with_capacity(intervals.len());
    let mut iv_end: Vec<u64> = Vec::with_capacity(intervals.len());
    let mut iv_item: Vec<u64> = Vec::with_capacity(intervals.len());
    let mut reserved_id = false;
    for iv in &intervals {
        iv_start.push(iv.start_tsc);
        iv_end.push(iv.end_tsc);
        iv_item.push(iv.item.0);
        reserved_id |= iv.item.0 == NO_ITEM;
    }
    if reserved_id && mode == MappingMode::Intervals {
        // An interval claims the reserved id: encode via the AoS path
        // instead (correctness over speed; counted for observability).
        if obs::recording() {
            obs::counter!("core.soa.fallbacks").inc();
        }
        return SoaTrace::from_integrated(&integrate_with_threads(
            bundle, symtab, freq, mode, threads,
        ));
    }

    // Phase 2 — attribution straight into pre-allocated columns. Each
    // shard's chunk is a disjoint split of the output, so workers write
    // their final bytes with no copy or splice afterwards.
    let t1 = obs::now_ticks();
    let n = bundle.samples.len();
    let mut cols = SampleColumns::zeroed(n);
    let tasks = chunk_tasks(
        &shards,
        &shard_bounds,
        &iv_start,
        &iv_end,
        &iv_item,
        &mut cols,
    );
    parallel::run_parts(tasks, threads, |shard_idx, task| {
        obs::span!("soa.integrate.attribute", shard_idx);
        attribute_columns(task, symtab, mode);
    });
    let item_index = build_item_index_cols(&cols.item);
    let attribution_ns = obs::now_ticks().wrapping_sub(t1);

    // Self-observability: the same deterministic volumes the AoS path
    // records (so a fast-path run is observably identical), plus the
    // soa-specific counters. Tick timings never enter the registry.
    if obs::recording() {
        obs::counter!("core.integrate.runs").inc();
        obs::counter!("core.integrate.samples").add(n as u64);
        obs::counter!("core.integrate.intervals").add(intervals.len() as u64);
        obs::counter!("core.integrate.shards").add(shards.len() as u64);
        obs::counter!("core.integrate.errors").add(errors.len() as u64);
        let interval_cycles = obs::histogram!("core.integrate.interval_cycles");
        for iv in &intervals {
            interval_cycles.record(iv.cycles());
        }
        let shard_samples = obs::histogram!("core.integrate.shard_samples");
        for sh in &shards {
            shard_samples.record(sh.samples.len() as u64);
        }
        obs::counter!("core.soa.runs").inc();
        obs::counter!("core.soa.samples").add(n as u64);
    }

    let stats = PipelineStats {
        interval_build_ns,
        attribution_ns,
        estimate_ns: 0,
        samples: n as u64,
        intervals: intervals.len() as u64,
        threads: threads as u64,
    };
    SoaTrace {
        cols,
        intervals,
        errors,
        freq,
        mode,
        stats,
        item_index,
        aos_fallback: None,
    }
}

/// One shard's borrowed inputs plus its disjoint output chunk.
struct AttrTask<'a> {
    samples: &'a [PebsRecord],
    iv_start: &'a [u64],
    iv_end: &'a [u64],
    iv_item: &'a [u64],
    base: u32,
    out_core: &'a mut [u32],
    out_tsc: &'a mut [u64],
    out_item: &'a mut [u64],
    out_func: &'a mut [u32],
    out_span: &'a mut [u32],
}

/// Split the output columns into per-shard chunks. The shards partition
/// the sample array in order, so `split_at_mut` walks cleanly through
/// each column; the per-shard interval sub-slices come from the same
/// `shard_bounds` the AoS path uses.
fn chunk_tasks<'a>(
    shards: &[crate::integrate::Shard<'a>],
    shard_bounds: &[(usize, usize)],
    iv_start: &'a [u64],
    iv_end: &'a [u64],
    iv_item: &'a [u64],
    cols: &'a mut SampleColumns,
) -> Vec<AttrTask<'a>> {
    let mut rest_core = cols.core.as_mut_slice();
    let mut rest_tsc = cols.tsc.as_mut_slice();
    let mut rest_item = cols.item.as_mut_slice();
    let mut rest_func = cols.func.as_mut_slice();
    let mut rest_span = cols.span.as_mut_slice();
    let mut tasks = Vec::with_capacity(shards.len());
    for (shard_idx, sh) in shards.iter().enumerate() {
        let len = sh.samples.len().min(rest_tsc.len());
        let (out_core, rc) = rest_core.split_at_mut(len);
        let (out_tsc, rt) = rest_tsc.split_at_mut(len);
        let (out_item, ri) = rest_item.split_at_mut(len);
        let (out_func, rf) = rest_func.split_at_mut(len);
        let (out_span, rs) = rest_span.split_at_mut(len);
        rest_core = rc;
        rest_tsc = rt;
        rest_item = ri;
        rest_func = rf;
        rest_span = rs;
        let (base, ivs) = shard_bounds.get(shard_idx).copied().unwrap_or((0, 0));
        tasks.push(AttrTask {
            samples: sh.samples,
            iv_start: iv_start.get(base..base + ivs).unwrap_or_default(),
            iv_end: iv_end.get(base..base + ivs).unwrap_or_default(),
            iv_item: iv_item.get(base..base + ivs).unwrap_or_default(),
            base: base as u32,
            out_core,
            out_tsc,
            out_item,
            out_func,
            out_span,
        });
    }
    tasks
}

/// Attribute one shard's samples into its output chunk.
///
/// The interval cursor is the same incremental `partition_point` the
/// AoS path advances ("how many intervals start at or before this
/// timestamp"); function resolution checks the previously-hit range
/// before falling back to the symbol-table binary search — consecutive
/// samples overwhelmingly share a function, so the common case is one
/// compare instead of `O(log f)`.
fn attribute_columns(task: AttrTask<'_>, symtab: &SymbolTable, mode: MappingMode) {
    let AttrTask {
        samples,
        iv_start,
        iv_end,
        iv_item,
        base,
        out_core,
        out_tsc,
        out_item,
        out_func,
        out_span,
    } = task;
    let mut started = 0usize; // intervals with start_tsc <= current tsc
    let mut memo: Option<(u32, AddrRange)> = None;
    let rows = samples
        .iter()
        .zip(out_core.iter_mut())
        .zip(out_tsc.iter_mut())
        .zip(out_item.iter_mut())
        .zip(out_func.iter_mut())
        .zip(out_span.iter_mut());
    for (((((s, core), tsc), item), func), span) in rows {
        *core = s.core.0;
        *tsc = s.tsc;
        let (it, sp) = match mode {
            MappingMode::Intervals => {
                while iv_start.get(started).is_some_and(|&st| st <= s.tsc) {
                    started += 1;
                }
                // Candidate = latest-starting interval; `started == 0`
                // wraps to usize::MAX and both `get`s miss.
                let cand = started.wrapping_sub(1);
                match (iv_item.get(cand), iv_end.get(cand)) {
                    (Some(&iv_it), Some(&end)) if s.tsc <= end => {
                        (iv_it, base.wrapping_add(cand as u32))
                    }
                    _ => (NO_ITEM, NO_SPAN),
                }
            }
            MappingMode::RegisterTag => {
                if s.r13 == NO_TAG {
                    (NO_ITEM, NO_SPAN)
                } else {
                    // decode_tag's `ItemId(r13 - 1)` in sentinel form;
                    // r13 ≠ 0 here, so this cannot yield NO_ITEM.
                    (s.r13.wrapping_sub(1), NO_SPAN)
                }
            }
        };
        *item = it;
        *span = sp;
        *func = match memo {
            Some((f, range)) if range.contains(s.ip) => f,
            _ => match symtab.resolve(s.ip) {
                Some(f) => {
                    memo = Some((f.0, symtab.range(f)));
                    f.0
                }
                None => NO_FUNC,
            },
        };
    }
}

/// Columnar twin of [`crate::integrate::build_item_index`]: maximal
/// same-item runs over the `item` column, sorted by `(item, start)`.
fn build_item_index_cols(items: &[u64]) -> Vec<(ItemId, u32, u32)> {
    let mut runs: Vec<(ItemId, u32, u32)> = Vec::new();
    for (i, &raw) in items.iter().enumerate() {
        if raw == NO_ITEM {
            continue;
        }
        let item = ItemId(raw);
        match runs.last_mut() {
            Some((run_item, _, end)) if *run_item == item && *end == i as u32 => {
                *end = i as u32 + 1;
            }
            _ => runs.push((item, i as u32, i as u32 + 1)),
        }
    }
    runs.sort_unstable_by_key(|&(item, start, _)| (item, start));
    runs
}

impl SoaTrace {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Fraction of samples attributed to some item (as in
    /// [`IntegratedTrace::attribution_ratio`]).
    pub fn attribution_ratio(&self) -> f64 {
        if self.cols.is_empty() {
            return 0.0;
        }
        let attributed: usize = self
            .item_index
            .iter()
            .map(|&(_, start, end)| (end - start) as usize)
            .sum();
        attributed as f64 / self.cols.len() as f64
    }

    /// Transpose back into the AoS [`IntegratedTrace`]. Bit-identical to
    /// running [`crate::integrate`] on the same bundle — the round-trip
    /// is one of the fast path's correctness anchors.
    pub fn to_integrated(&self) -> IntegratedTrace {
        if let Some(aos) = &self.aos_fallback {
            return (**aos).clone();
        }
        let rows = self
            .cols
            .core
            .iter()
            .zip(&self.cols.tsc)
            .zip(&self.cols.item)
            .zip(&self.cols.func)
            .zip(&self.cols.span);
        let samples: Vec<AttributedSample> = rows
            .map(
                |((((&core, &tsc), &item), &func), &span)| AttributedSample {
                    core: CoreId(core),
                    tsc,
                    item: (item != NO_ITEM).then_some(ItemId(item)),
                    func: (func != NO_FUNC).then_some(FuncId(func)),
                    interval_idx: (span != NO_SPAN).then_some(span),
                },
            )
            .collect();
        IntegratedTrace {
            samples,
            intervals: self.intervals.clone(),
            errors: self.errors.clone(),
            freq: self.freq,
            mode: self.mode,
            stats: self.stats,
            item_index: self.item_index.clone(),
        }
    }

    /// Transpose an AoS trace into columns (sentinel encoding). Used by
    /// the reserved-id fallback and the old-vs-new benchmarks.
    pub fn from_integrated(it: &IntegratedTrace) -> SoaTrace {
        let n = it.samples.len();
        let mut cols = SampleColumns {
            core: Vec::with_capacity(n),
            tsc: Vec::with_capacity(n),
            item: Vec::with_capacity(n),
            func: Vec::with_capacity(n),
            span: Vec::with_capacity(n),
        };
        let mut reserved_id = false;
        for s in &it.samples {
            cols.core.push(s.core.0);
            cols.tsc.push(s.tsc);
            cols.item.push(s.item.map_or(NO_ITEM, |i| i.0));
            cols.func.push(s.func.map_or(NO_FUNC, |f| f.0));
            cols.span.push(s.interval_idx.unwrap_or(NO_SPAN));
            reserved_id |= s.item == Some(ItemId(NO_ITEM));
        }
        SoaTrace {
            cols,
            intervals: it.intervals.clone(),
            errors: it.errors.clone(),
            freq: it.freq,
            mode: it.mode,
            stats: it.stats,
            item_index: build_item_index(&it.samples),
            // lint:allow(hot-path-alloc): rare-path fallback built once per transpose when a reserved id is present, not per sample
            aos_fallback: reserved_id.then(|| Box::new(it.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::integrate;
    use fluctrace_cpu::{encode_tag, HwEvent, MarkKind, MarkRecord, SymbolTableBuilder, VirtAddr};

    fn setup() -> (SymbolTable, FuncId, FuncId) {
        let mut b = SymbolTableBuilder::new();
        let f = b.add("f", 100);
        let g = b.add("g", 100);
        (b.build(), f, g)
    }

    fn sample(core: u32, tsc: u64, ip: VirtAddr, r13: u64) -> PebsRecord {
        PebsRecord {
            core: CoreId(core),
            tsc,
            ip,
            r13,
            event: HwEvent::UopsRetired,
        }
    }

    fn mark(core: u32, tsc: u64, item: u64, kind: MarkKind) -> MarkRecord {
        MarkRecord {
            core: CoreId(core),
            tsc,
            item: ItemId(item),
            kind,
        }
    }

    /// A messy multi-core bundle: preemption, unknown IPs, gap samples.
    fn messy_bundle(symtab: &SymbolTable, f: FuncId, g: FuncId) -> TraceBundle {
        let ips = [symtab.range(f).start, symtab.range(g).start, VirtAddr(0x2)];
        let mut bundle = TraceBundle::default();
        let mut item = 0u64;
        for core in 0..4u32 {
            let mut tsc = 31u64 * core as u64;
            for rep in 0..25u64 {
                bundle
                    .marks
                    .push(mark(core, tsc, item % 7, MarkKind::Start));
                for k in 0..(rep % 5) {
                    let ip = ips[(rep + k) as usize % 3];
                    let tag = encode_tag(ItemId(item % 7));
                    bundle.samples.push(sample(core, tsc + 1 + k * 13, ip, tag));
                }
                tsc += 80;
                bundle.marks.push(mark(core, tsc, item % 7, MarkKind::End));
                bundle.samples.push(sample(core, tsc + 3, ips[0], NO_TAG));
                tsc += 10;
                item += 1;
            }
        }
        bundle.sort();
        bundle
    }

    #[test]
    fn roundtrip_matches_aos_both_modes() {
        let (symtab, f, g) = setup();
        let bundle = messy_bundle(&symtab, f, g);
        for mode in [MappingMode::Intervals, MappingMode::RegisterTag] {
            let aos = integrate(&bundle, &symtab, Freq::ghz(3), mode);
            let soa = integrate_soa(&bundle, &symtab, Freq::ghz(3), mode);
            let round = soa.to_integrated();
            assert_eq!(round.samples, aos.samples, "mode {mode:?}");
            assert_eq!(round.intervals, aos.intervals);
            assert_eq!(round.errors, aos.errors);
            assert_eq!(round.item_index, aos.item_index);
            assert_eq!(soa.attribution_ratio(), aos.attribution_ratio());
        }
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let (symtab, f, g) = setup();
        let bundle = messy_bundle(&symtab, f, g);
        let reference =
            integrate_soa_with_threads(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals, 1);
        for threads in [2, 3, 8] {
            let soa = integrate_soa_with_threads(
                &bundle,
                &symtab,
                Freq::ghz(3),
                MappingMode::Intervals,
                threads,
            );
            assert_eq!(soa.cols, reference.cols, "threads={threads}");
            assert_eq!(soa.intervals, reference.intervals);
            assert_eq!(soa.errors, reference.errors);
            assert_eq!(soa.item_index, reference.item_index);
        }
    }

    #[test]
    fn from_integrated_equals_direct_build() {
        let (symtab, f, g) = setup();
        let bundle = messy_bundle(&symtab, f, g);
        let aos = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        let direct = integrate_soa(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        let converted = SoaTrace::from_integrated(&aos);
        assert_eq!(direct.cols, converted.cols);
        assert_eq!(direct.item_index, converted.item_index);
    }

    #[test]
    fn sentinels_appear_for_gap_and_unknown_samples() {
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle {
            marks: vec![
                mark(0, 100, 1, MarkKind::Start),
                mark(0, 200, 1, MarkKind::End),
            ],
            samples: vec![
                sample(0, 50, ip, NO_TAG),             // before the interval
                sample(0, 150, ip, NO_TAG),            // inside
                sample(0, 160, VirtAddr(0x1), NO_TAG), // inside, unknown IP
                sample(0, 250, ip, NO_TAG),            // after
            ],
        };
        bundle.sort();
        let soa = integrate_soa(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        assert_eq!(soa.cols.item, vec![NO_ITEM, 1, 1, NO_ITEM]);
        assert_eq!(soa.cols.span, vec![NO_SPAN, 0, 0, NO_SPAN]);
        assert_eq!(soa.cols.func, vec![f.0, f.0, NO_FUNC, f.0]);
        assert_eq!(soa.len(), 4);
        assert!(!soa.is_empty());
    }

    #[test]
    fn reserved_item_id_falls_back_to_aos_path() {
        // A hand-built mark stream can claim item u64::MAX, which
        // collides with the NO_ITEM sentinel; the builder must detect it
        // and still produce correct attribution via the fallback.
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle {
            marks: vec![
                mark(0, 100, u64::MAX, MarkKind::Start),
                mark(0, 200, u64::MAX, MarkKind::End),
            ],
            samples: vec![sample(0, 150, ip, NO_TAG)],
        };
        bundle.sort();
        let soa = integrate_soa(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        let aos = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        assert_eq!(soa.to_integrated().samples, aos.samples);
        assert_eq!(
            aos.samples[0].item,
            Some(ItemId(u64::MAX)),
            "fallback keeps the reserved id attributable"
        );
    }

    #[test]
    fn memoized_resolve_matches_binary_search() {
        // Long same-function runs (memo hits) mixed with padding-gap IPs
        // (memo misses that must not poison later hits).
        let mut b = SymbolTableBuilder::new();
        let ids: Vec<FuncId> = (0..16).map(|i| b.add(&format!("fn{i}"), 100)).collect();
        let symtab = b.build();
        let mut bundle = TraceBundle::default();
        let mut tsc = 0u64;
        for (k, &id) in ids.iter().enumerate() {
            for off in 0..5u64 {
                bundle
                    .samples
                    .push(sample(0, tsc, symtab.range(id).start.offset(off), NO_TAG));
                tsc += 3;
            }
            // Padding byte just past the function body (unless it abuts
            // the next one — sizes are 100, padded to 112).
            let _ = k;
            bundle
                .samples
                .push(sample(0, tsc, symtab.range(id).start.offset(105), NO_TAG));
            tsc += 3;
        }
        bundle.sort();
        let soa = integrate_soa(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        for (i, (&func, s)) in soa.cols.func.iter().zip(&bundle.samples).enumerate() {
            let want = symtab.resolve(s.ip).map_or(NO_FUNC, |f| f.0);
            assert_eq!(func, want, "row {i}");
        }
    }

    #[test]
    fn empty_bundle_is_empty_trace() {
        let (symtab, _, _) = setup();
        let soa = integrate_soa(
            &TraceBundle::default(),
            &symtab,
            Freq::ghz(3),
            MappingMode::Intervals,
        );
        assert!(soa.is_empty());
        assert_eq!(soa.attribution_ratio(), 0.0);
        assert!(soa.to_integrated().samples.is_empty());
    }
}
