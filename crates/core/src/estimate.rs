//! Step 3 of the paper's procedure: "The elapsed time of function `f_n`
//! for data-item `#M` is calculated by the difference between the
//! timestamps of the first and the last PEBS sample that belong to
//! `{f_n, data-item #M}`."
//!
//! Refinement over the paper's single-interval case: if an item occupies
//! several intervals (a preempted item under timer-switching with
//! scheduler logging, or several tag runs in register mode), first/last
//! differences are taken *per occupancy span* and summed, so time the
//! item spent switched-out is not counted.

use crate::integrate::{IntegratedTrace, MappingMode};
use crate::interval::ItemInterval;
use crate::soa::{SoaTrace, NO_FUNC, NO_ITEM, NO_SPAN};
use fluctrace_cpu::{FuncId, ItemId};
use fluctrace_obs as obs;
use fluctrace_sim::{Freq, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Estimated elapsed time of one function for one data-item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncEstimate {
    /// The data-item.
    pub item: ItemId,
    /// The function.
    pub func: FuncId,
    /// Number of samples attributed to `{func, item}`.
    pub samples: u32,
    /// Estimated elapsed time (sum of per-span first→last differences).
    pub elapsed: SimDuration,
}

impl FuncEstimate {
    /// True when enough samples existed to estimate a duration — the
    /// paper's §V.B.1 limitation: one sample gives no elapsed time.
    pub fn is_estimable(&self) -> bool {
        self.samples >= 2
    }
}

/// Everything estimated about one data-item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemEstimate {
    /// The data-item.
    pub item: ItemId,
    /// Exact processing time from the instrumentation marks (sum over
    /// the item's intervals). `None` in register-tag mode, where no
    /// marks exist.
    pub marked_total: Option<SimDuration>,
    /// Per-function estimates, ordered by function id.
    pub funcs: Vec<FuncEstimate>,
    /// Samples attributed to the item whose IP resolved to no function.
    pub unknown_func_samples: u32,
}

impl ItemEstimate {
    /// Estimate for one function, if any samples hit it.
    pub fn func(&self, func: FuncId) -> Option<&FuncEstimate> {
        self.funcs.iter().find(|f| f.func == func)
    }

    /// Sum of the per-function estimated elapsed times.
    pub fn estimated_total(&self) -> SimDuration {
        self.funcs
            .iter()
            .fold(SimDuration::ZERO, |acc, f| acc + f.elapsed)
    }
}

/// Per-item per-function estimates for a whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateTable {
    items: BTreeMap<ItemId, ItemEstimate>,
    /// TSC frequency the estimates were converted with.
    pub freq: Freq,
    /// Interval-mode samples that carried an item but no interval index.
    /// Such samples are internally inconsistent (integration always sets
    /// both or neither), so instead of silently aliasing them onto span
    /// 0 — which would bridge unrelated timestamps into one bogus
    /// first→last difference — they are skipped and counted here.
    pub samples_missing_span: u64,
}

impl EstimateTable {
    /// Assemble a table from pre-built per-item estimates (used by the
    /// batch-splitting extension).
    pub(crate) fn from_items_map(
        items: BTreeMap<ItemId, ItemEstimate>,
        freq: Freq,
    ) -> EstimateTable {
        EstimateTable {
            items,
            freq,
            samples_missing_span: 0,
        }
    }

    /// Build the table from an integrated trace.
    pub fn from_integrated(it: &IntegratedTrace) -> Self {
        Self::from_integrated_timed(it).0
    }

    /// [`Self::from_integrated`] plus the time the estimation took, in
    /// ticks of the process-wide `obs` clock — wall-ns in bench bins,
    /// logical ticks elsewhere (fed into
    /// [`PipelineStats::estimate_ns`](crate::PipelineStats) by the
    /// benchmark harness). Timing lives outside the table so tables stay
    /// directly comparable with `==`.
    ///
    /// ## Algorithm
    ///
    /// Samples arrive in `(core, tsc)` order, and their span ids — the
    /// interval index in interval mode, the item-run id in register
    /// mode — are non-decreasing in that order, so all samples of one
    /// occupancy span are **contiguous**. Instead of a `BTreeMap` insert
    /// per sample (the previous implementation, kept as
    /// [`Self::from_integrated_reference`]), one linear scan folds each
    /// span's per-function `(first, last, count)` into a small scratch
    /// vector, flushing it whenever the span id advances. The flat span
    /// list is then sorted once by `(item, func)` and group-folded into
    /// the final table — the only tree left is at the API boundary.
    pub fn from_integrated_timed(it: &IntegratedTrace) -> (Self, u64) {
        obs::span!("estimate.run", it.samples.len());
        let t0 = obs::now_ticks();
        // All flushed spans: (item, func, first, last, count).
        let mut flat: Vec<(ItemId, FuncId, u64, u64, u32)> = Vec::new();
        // The current span's per-function accumulator. Spans touch few
        // distinct functions, so a linear probe beats any map.
        let mut scratch: Vec<(FuncId, u64, u64, u32)> = Vec::new();
        let mut unknown: BTreeMap<ItemId, u32> = BTreeMap::new();
        let mut samples_missing_span = 0u64;

        let mut run_id = 0u64;
        let mut last: Option<(fluctrace_cpu::CoreId, Option<ItemId>)> = None;
        let mut cur_span: Option<(ItemId, u64)> = None;
        for s in &it.samples {
            // Track register-mode runs (for *all* samples: a gap of
            // unattributed samples still splits a run).
            let cur = (s.core, s.item);
            if last != Some(cur) {
                run_id += 1;
                last = Some(cur);
            }
            let Some(item) = s.item else { continue };
            let Some(func) = s.func else {
                *unknown.entry(item).or_insert(0) += 1;
                continue;
            };
            let span = match it.mode {
                MappingMode::Intervals => match s.interval_idx {
                    Some(idx) => idx as u64,
                    None => {
                        samples_missing_span += 1;
                        continue;
                    }
                },
                MappingMode::RegisterTag => run_id,
            };
            if cur_span != Some((item, span)) {
                flush_span(&mut scratch, cur_span, &mut flat);
                cur_span = Some((item, span));
            }
            match scratch.iter_mut().find(|e| e.0 == func) {
                Some(e) => {
                    e.1 = e.1.min(s.tsc);
                    e.2 = e.2.max(s.tsc);
                    e.3 += 1;
                }
                None => scratch.push((func, s.tsc, s.tsc, 1)),
            }
        }
        flush_span(&mut scratch, cur_span, &mut flat);

        let table = assemble_table(flat, unknown, samples_missing_span, &it.intervals, it.freq);
        (table, obs::now_ticks().wrapping_sub(t0))
    }

    /// Build the table from a columnar trace ([`crate::integrate_soa`]).
    /// Byte-identical to [`Self::from_integrated`] on the equivalent AoS
    /// trace — both scans feed the same [`assemble_table`] fold, and the
    /// conformance sweep pins the agreement against the oracle.
    pub fn from_soa(soa: &SoaTrace) -> Self {
        Self::from_soa_timed(soa).0
    }

    /// [`Self::from_soa`] plus the estimation time in obs-clock ticks
    /// (wall-ns in bench bins), feeding
    /// [`PipelineStats::estimate_ns`](crate::PipelineStats).
    ///
    /// The scan is the columnar twin of [`Self::from_integrated_timed`].
    /// In interval mode it is driven by the trace's item-run index
    /// instead of walking every row: attributed samples come in maximal
    /// same-item runs, so the scan jumps from run to run, touches only
    /// the three columns it needs (`tsc`/`func`/`span`) and skips
    /// unattributed gap samples without reading them at all. Register
    /// mode keeps the row walk (run splitting needs the `core` column).
    /// Either way the flat span list feeds the same [`assemble_table`]
    /// fold as the AoS scan; span sums are commutative, so the run
    /// ordering (by item, not by time) cannot change the table.
    pub fn from_soa_timed(soa: &SoaTrace) -> (Self, u64) {
        if let Some(aos) = &soa.aos_fallback {
            // Reserved-id trace: the columns are ambiguous, the boxed
            // AoS trace is authoritative (see `SoaTrace::aos_fallback`).
            return Self::from_integrated_timed(aos);
        }
        obs::span!("estimate.run", soa.cols.len());
        let t0 = obs::now_ticks();
        let mut flat: Vec<(ItemId, FuncId, u64, u64, u32)> = Vec::new();
        let mut scratch: Vec<(u32, u64, u64, u32)> = Vec::new();
        let mut unknown: BTreeMap<ItemId, u32> = BTreeMap::new();
        let mut samples_missing_span = 0u64;

        match soa.mode {
            MappingMode::Intervals => {
                for &(item, start, end) in &soa.item_index {
                    let (lo, hi) = (start as usize, end as usize);
                    let (Some(tscs), Some(funcs), Some(spans)) = (
                        soa.cols.tsc.get(lo..hi),
                        soa.cols.func.get(lo..hi),
                        soa.cols.span.get(lo..hi),
                    ) else {
                        continue;
                    };
                    let mut unknown_in_run = 0u32;
                    // NO_SPAN doubles as "no open span": sentinel-valued
                    // samples are skipped before the comparison, so a
                    // real span index can never collide with it.
                    let mut cur = NO_SPAN;
                    for ((&tsc, &func), &span_idx) in tscs.iter().zip(funcs).zip(spans) {
                        if func == NO_FUNC {
                            unknown_in_run += 1;
                            continue;
                        }
                        if span_idx == NO_SPAN {
                            samples_missing_span += 1;
                            continue;
                        }
                        if span_idx != cur {
                            for (f, first, last, count) in scratch.drain(..) {
                                flat.push((item, FuncId(f), first, last, count));
                            }
                            cur = span_idx;
                        }
                        match scratch.iter_mut().find(|e| e.0 == func) {
                            Some(e) => {
                                e.1 = e.1.min(tsc);
                                e.2 = e.2.max(tsc);
                                e.3 += 1;
                            }
                            None => scratch.push((func, tsc, tsc, 1)),
                        }
                    }
                    for (f, first, last, count) in scratch.drain(..) {
                        flat.push((item, FuncId(f), first, last, count));
                    }
                    if unknown_in_run > 0 {
                        *unknown.entry(item).or_insert(0) += unknown_in_run;
                    }
                }
            }
            MappingMode::RegisterTag => {
                let mut run_id = 0u64;
                let mut last: Option<(u32, u64)> = None;
                let mut cur_span: Option<(u64, u64)> = None;
                let rows = soa
                    .cols
                    .core
                    .iter()
                    .zip(&soa.cols.tsc)
                    .zip(&soa.cols.item)
                    .zip(&soa.cols.func);
                for (((&core, &tsc), &item), &func) in rows {
                    // Track runs for *all* samples: a gap of
                    // unattributed samples still splits a run.
                    let cur = (core, item);
                    if last != Some(cur) {
                        run_id += 1;
                        last = Some(cur);
                    }
                    if item == NO_ITEM {
                        continue;
                    }
                    if func == NO_FUNC {
                        *unknown.entry(ItemId(item)).or_insert(0) += 1;
                        continue;
                    }
                    if cur_span != Some((item, run_id)) {
                        flush_span_cols(&mut scratch, cur_span, &mut flat);
                        cur_span = Some((item, run_id));
                    }
                    match scratch.iter_mut().find(|e| e.0 == func) {
                        Some(e) => {
                            e.1 = e.1.min(tsc);
                            e.2 = e.2.max(tsc);
                            e.3 += 1;
                        }
                        None => scratch.push((func, tsc, tsc, 1)),
                    }
                }
                flush_span_cols(&mut scratch, cur_span, &mut flat);
            }
        }

        let table = assemble_table(
            flat,
            unknown,
            samples_missing_span,
            &soa.intervals,
            soa.freq,
        );
        (table, obs::now_ticks().wrapping_sub(t0))
    }

    /// The previous `BTreeMap`-per-sample implementation, kept as an
    /// independently-written oracle for the linear-scan estimator (see
    /// the equivalence property test and the `estimate` benchmark).
    #[doc(hidden)]
    pub fn from_integrated_reference(it: &IntegratedTrace) -> Self {
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct SpanKey {
            item: ItemId,
            func: FuncId,
            span: u64,
        }
        let mut spans: BTreeMap<SpanKey, (u64, u64, u32)> = BTreeMap::new(); // (first, last, count)
        let mut unknown: BTreeMap<ItemId, u32> = BTreeMap::new();
        let mut samples_missing_span = 0u64;

        let mut run_id = 0u64;
        let mut last: Option<(fluctrace_cpu::CoreId, Option<ItemId>)> = None;
        for s in &it.samples {
            // Track register-mode runs.
            let cur = (s.core, s.item);
            if last != Some(cur) {
                run_id += 1;
                last = Some(cur);
            }
            let Some(item) = s.item else { continue };
            let Some(func) = s.func else {
                *unknown.entry(item).or_insert(0) += 1;
                continue;
            };
            let span = match it.mode {
                MappingMode::Intervals => match s.interval_idx {
                    Some(idx) => idx as u64,
                    None => {
                        samples_missing_span += 1;
                        continue;
                    }
                },
                MappingMode::RegisterTag => run_id,
            };
            let key = SpanKey { item, func, span };
            let entry = spans.entry(key).or_insert((s.tsc, s.tsc, 0));
            entry.0 = entry.0.min(s.tsc);
            entry.1 = entry.1.max(s.tsc);
            entry.2 += 1;
        }

        // Fold spans into per-(item, func) cycle totals; convert to time
        // once at the end so truncation does not accumulate per span.
        let mut cycle_sums: BTreeMap<(ItemId, FuncId), (u32, u64)> = BTreeMap::new();
        for (key, (first_tsc, last_tsc, count)) in spans {
            let e = cycle_sums.entry((key.item, key.func)).or_insert((0, 0));
            e.0 += count;
            e.1 += last_tsc.wrapping_sub(first_tsc);
        }
        let funcs: BTreeMap<(ItemId, FuncId), FuncEstimate> = cycle_sums
            .into_iter()
            .map(|((item, func), (samples, cycles))| {
                (
                    (item, func),
                    FuncEstimate {
                        item,
                        func,
                        samples,
                        elapsed: it.freq.cycles_to_dur(cycles),
                    },
                )
            })
            .collect();

        // Exact totals from marks.
        let mut totals: BTreeMap<ItemId, u64> = BTreeMap::new();
        for iv in &it.intervals {
            *totals.entry(iv.item).or_insert(0) += iv.cycles();
        }

        let mut items: BTreeMap<ItemId, ItemEstimate> = BTreeMap::new();
        for ((item, _), fe) in funcs {
            items
                .entry(item)
                .or_insert_with(|| ItemEstimate {
                    item,
                    marked_total: totals.get(&item).map(|&c| it.freq.cycles_to_dur(c)),
                    funcs: Vec::new(),
                    unknown_func_samples: 0,
                })
                .funcs
                .push(fe);
        }
        // Items that have intervals but no attributable samples still
        // appear (with empty func lists) so totals stay queryable.
        for (&item, &cycles) in &totals {
            items.entry(item).or_insert_with(|| ItemEstimate {
                item,
                marked_total: Some(it.freq.cycles_to_dur(cycles)),
                funcs: Vec::new(),
                unknown_func_samples: 0,
            });
        }
        for (item, n) in unknown {
            if let Some(ie) = items.get_mut(&item) {
                ie.unknown_func_samples = n;
            }
        }
        EstimateTable {
            items,
            freq: it.freq,
            samples_missing_span,
        }
    }

    /// Estimate for `{item, func}`.
    pub fn get(&self, item: ItemId, func: FuncId) -> Option<&FuncEstimate> {
        self.items.get(&item).and_then(|ie| ie.func(func))
    }

    /// Everything about one item.
    pub fn item(&self, item: ItemId) -> Option<&ItemEstimate> {
        self.items.get(&item)
    }

    /// Iterate all items in id order.
    pub fn items(&self) -> impl Iterator<Item = &ItemEstimate> {
        self.items.values()
    }

    /// Consume the table, yielding item estimates in id order (lets
    /// [`crate::batch::split_batches_owned`] move pass-through items
    /// instead of cloning them).
    pub fn into_items(self) -> impl Iterator<Item = ItemEstimate> {
        self.items.into_values()
    }

    /// Number of items with any information.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Elapsed estimates of `func` across items that have ≥2 samples
    /// for it, in item order (convenience for the evaluation harness).
    pub fn series_for_func(&self, func: FuncId) -> Vec<(ItemId, SimDuration)> {
        self.items()
            .filter_map(|ie| {
                ie.func(func)
                    .filter(|fe| fe.is_estimable())
                    .map(|fe| (ie.item, fe.elapsed))
            })
            .collect()
    }
}

/// Move a finished span's per-function accumulators into the flat span
/// list (tagged with the span's item), clearing the scratch for reuse.
fn flush_span(
    scratch: &mut Vec<(FuncId, u64, u64, u32)>,
    span: Option<(ItemId, u64)>,
    flat: &mut Vec<(ItemId, FuncId, u64, u64, u32)>,
) {
    let Some((item, _)) = span else {
        debug_assert!(scratch.is_empty());
        return;
    };
    for (func, first, last, count) in scratch.drain(..) {
        flat.push((item, func, first, last, count));
    }
}

/// [`flush_span`] with raw column ids (the SoA scan's scratch keys are
/// plain `u32`/`u64`; typed ids are minted here, at the flat boundary).
fn flush_span_cols(
    scratch: &mut Vec<(u32, u64, u64, u32)>,
    span: Option<(u64, u64)>,
    flat: &mut Vec<(ItemId, FuncId, u64, u64, u32)>,
) {
    let Some((item, _)) = span else {
        debug_assert!(scratch.is_empty());
        return;
    };
    for (func, first, last, count) in scratch.drain(..) {
        flat.push((ItemId(item), FuncId(func), first, last, count));
    }
}

/// The shared tail of both estimators: sort the flat span list, fold
/// per-(item, func), backfill sample-less items from the exact marked
/// totals, and record the deterministic obs volumes. Factoring this out
/// structurally guarantees the AoS and SoA scans produce the same table
/// whenever they produce the same flat spans — the differential sweep
/// then pins that the scans agree too.
///
/// `pub(crate)` for [`crate::window`]: the windowed integrator feeds its
/// per-window and cumulative span folds through this exact assembly so
/// window tables are structurally the same artifact as batch tables.
pub(crate) fn assemble_table(
    mut flat: Vec<(ItemId, FuncId, u64, u64, u32)>,
    unknown: BTreeMap<ItemId, u32>,
    samples_missing_span: u64,
    intervals: &[ItemInterval],
    freq: Freq,
) -> EstimateTable {
    // Fold spans into per-(item, func) estimates; convert cycles to
    // time once at the end so truncation does not accumulate per
    // span. Sorting the span list groups equal (item, func) pairs
    // and yields the ascending push order the table guarantees. From
    // here on every input is sorted by item, so the whole assembly is
    // merge joins over sorted lists — no tree lookups on the hot path;
    // the one `BTreeMap` left is built from the sorted result at the
    // API boundary.
    //
    // The run-driven SoA scan emits spans already grouped by ascending
    // item, so item-sorted input only needs per-group sorts by func —
    // each a handful of elements. Time-order scans interleave items and
    // take the full sort. Both end states are sorted by (item, func),
    // and every downstream fold over equal keys is commutative, so the
    // resulting table is identical whichever branch ran.
    if flat.is_sorted_by_key(|&(item, _, _, _, _)| item) {
        for group in flat.chunk_by_mut(|a, b| a.0 == b.0) {
            group.sort_unstable_by_key(|&(_, func, _, _, _)| func);
        }
    } else {
        flat.sort_unstable_by_key(|&(item, func, _, _, _)| (item, func));
    }

    // Exact totals from marks, coalesced into a sorted list.
    let mut raw_totals: Vec<(ItemId, u64)> =
        intervals.iter().map(|iv| (iv.item, iv.cycles())).collect();
    raw_totals.sort_unstable_by_key(|&(item, _)| item);
    let mut totals: Vec<(ItemId, u64)> = Vec::with_capacity(raw_totals.len());
    for &(item, cycles) in &raw_totals {
        match totals.last_mut() {
            Some((last_item, acc)) if *last_item == item => *acc += cycles,
            _ => totals.push((item, cycles)),
        }
    }

    // Items that have intervals but no attributable samples still
    // appear (with empty func lists) so totals stay queryable — the
    // merge join interleaves them in item order.
    let backfill = |item: ItemId, cycles: u64| {
        (
            item,
            ItemEstimate {
                item,
                marked_total: Some(freq.cycles_to_dur(cycles)),
                funcs: Vec::new(),
                unknown_func_samples: 0,
            },
        )
    };
    let mut items: Vec<(ItemId, ItemEstimate)> = Vec::with_capacity(totals.len());
    let mut totals_iter = totals.iter().peekable();
    for group in flat.chunk_by(|a, b| a.0 == b.0) {
        let Some(&(item, ..)) = group.first() else {
            continue;
        };
        while let Some(&&(t_item, cycles)) = totals_iter.peek() {
            if t_item >= item {
                break;
            }
            items.push(backfill(t_item, cycles));
            totals_iter.next();
        }
        let marked_total = match totals_iter.peek() {
            Some(&&(t_item, cycles)) if t_item == item => {
                totals_iter.next();
                Some(freq.cycles_to_dur(cycles))
            }
            _ => None,
        };
        let mut funcs = Vec::with_capacity(group.chunk_by(|a, b| a.1 == b.1).count());
        for func_group in group.chunk_by(|a, b| a.1 == b.1) {
            let Some(&(_, func, ..)) = func_group.first() else {
                continue;
            };
            let mut samples = 0u32;
            let mut cycles = 0u64;
            for &(_, _, first_tsc, last_tsc, count) in func_group {
                samples += count;
                cycles += last_tsc.wrapping_sub(first_tsc);
            }
            funcs.push(FuncEstimate {
                item,
                func,
                samples,
                elapsed: freq.cycles_to_dur(cycles),
            });
        }
        items.push((
            item,
            ItemEstimate {
                item,
                marked_total,
                funcs,
                unknown_func_samples: 0,
            },
        ));
    }
    for &(t_item, cycles) in totals_iter {
        items.push(backfill(t_item, cycles));
    }

    // Unknown-function counts: merge join; counts for items absent from
    // the table (no span, no interval) are dropped, as before.
    let mut cursor = items.iter_mut().peekable();
    for (u_item, n) in unknown {
        while let Some((item, _)) = cursor.peek() {
            if *item < u_item {
                cursor.next();
            } else {
                break;
            }
        }
        if let Some((item, ie)) = cursor.peek_mut() {
            if *item == u_item {
                ie.unknown_func_samples = n;
                cursor.next();
            }
        }
    }

    // Self-observability: volumes and sim-cycle span widths only
    // (deterministic; estimator tick timings never enter the registry).
    if obs::recording() {
        obs::counter!("core.estimate.runs").inc();
        obs::counter!("core.estimate.spans").add(flat.len() as u64);
        obs::counter!("core.estimate.samples_missing_span").add(samples_missing_span);
        let span_cycles = obs::histogram!("core.estimate.span_cycles");
        for &(_, _, first_tsc, last_tsc, _) in &flat {
            span_cycles.record(last_tsc.wrapping_sub(first_tsc));
        }
    }

    EstimateTable {
        items: items.into_iter().collect(),
        freq,
        samples_missing_span,
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::integrate::integrate;
    use fluctrace_cpu::{
        encode_tag, CoreId, HwEvent, MarkKind, MarkRecord, PebsRecord, SymbolTable,
        SymbolTableBuilder, TraceBundle, VirtAddr, NO_TAG,
    };

    fn setup() -> (SymbolTable, FuncId, FuncId) {
        let mut b = SymbolTableBuilder::new();
        let f = b.add("f", 100);
        let g = b.add("g", 100);
        (b.build(), f, g)
    }

    fn sample(core: u32, tsc: u64, ip: VirtAddr, r13: u64) -> PebsRecord {
        PebsRecord {
            core: CoreId(core),
            tsc,
            ip,
            r13,
            event: HwEvent::UopsRetired,
        }
    }

    fn mark(core: u32, tsc: u64, item: u64, kind: MarkKind) -> MarkRecord {
        MarkRecord {
            core: CoreId(core),
            tsc,
            item: ItemId(item),
            kind,
        }
    }

    /// 3 GHz: 3000 cycles = 1 µs.
    fn freq() -> Freq {
        Freq::ghz(3)
    }

    #[test]
    fn first_to_last_sample_difference() {
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 0, 1, MarkKind::Start),
            mark(0, 10_000, 1, MarkKind::End),
        ];
        bundle.samples = vec![
            sample(0, 1_000, ip, NO_TAG),
            sample(0, 2_500, ip, NO_TAG),
            sample(0, 4_000, ip, NO_TAG),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::Intervals);
        let table = EstimateTable::from_integrated(&it);
        let fe = table.get(ItemId(1), f).unwrap();
        assert_eq!(fe.samples, 3);
        assert!(fe.is_estimable());
        // 3000 cycles at 3 GHz = 1 µs.
        assert_eq!(fe.elapsed, SimDuration::from_us(1));
        let ie = table.item(ItemId(1)).unwrap();
        assert_eq!(ie.marked_total, Some(freq().cycles_to_dur(10_000)));
        assert_eq!(ie.estimated_total(), SimDuration::from_us(1));
    }

    #[test]
    fn single_sample_gives_zero_elapsed_not_estimable() {
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 0, 1, MarkKind::Start),
            mark(0, 1000, 1, MarkKind::End),
        ];
        bundle.samples = vec![sample(0, 500, ip, NO_TAG)];
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::Intervals);
        let table = EstimateTable::from_integrated(&it);
        let fe = table.get(ItemId(1), f).unwrap();
        assert_eq!(fe.samples, 1);
        assert!(!fe.is_estimable());
        assert_eq!(fe.elapsed, SimDuration::ZERO);
        assert!(table.series_for_func(f).is_empty());
    }

    #[test]
    fn per_function_separation_within_item() {
        let (symtab, f, g) = setup();
        let f_ip = symtab.range(f).start;
        let g_ip = symtab.range(g).start;
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 0, 1, MarkKind::Start),
            mark(0, 100_000, 1, MarkKind::End),
        ];
        // f: 0..30000 cycles; g: 40000..70000 cycles.
        bundle.samples = vec![
            sample(0, 10_000, f_ip, NO_TAG),
            sample(0, 40_000, g_ip, NO_TAG),
            sample(0, 25_000, f_ip, NO_TAG),
            sample(0, 70_000, g_ip, NO_TAG),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::Intervals);
        let table = EstimateTable::from_integrated(&it);
        assert_eq!(
            table.get(ItemId(1), f).unwrap().elapsed,
            freq().cycles_to_dur(15_000)
        );
        assert_eq!(
            table.get(ItemId(1), g).unwrap().elapsed,
            freq().cycles_to_dur(30_000)
        );
        let ie = table.item(ItemId(1)).unwrap();
        assert_eq!(ie.funcs.len(), 2);
    }

    #[test]
    fn preempted_item_sums_per_span_not_across_gap() {
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        // Item 1 runs in two slices: [0, 10k] and [50k, 60k]; item 2 in
        // between. Naive first→last would charge 59k cycles to item 1.
        bundle.marks = vec![
            mark(0, 0, 1, MarkKind::Start),
            mark(0, 10_000, 1, MarkKind::End),
            mark(0, 10_000, 2, MarkKind::Start),
            mark(0, 50_000, 2, MarkKind::End),
            mark(0, 50_000, 1, MarkKind::Start),
            mark(0, 60_000, 1, MarkKind::End),
        ];
        bundle.samples = vec![
            sample(0, 1_000, ip, NO_TAG),
            sample(0, 9_000, ip, NO_TAG),
            sample(0, 51_000, ip, NO_TAG),
            sample(0, 59_000, ip, NO_TAG),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::Intervals);
        let table = EstimateTable::from_integrated(&it);
        let fe = table.get(ItemId(1), f).unwrap();
        // 8k + 8k cycles, not 58k.
        assert_eq!(fe.elapsed, freq().cycles_to_dur(16_000));
        assert_eq!(fe.samples, 4);
    }

    #[test]
    fn register_tag_mode_runs_sum_per_run() {
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        let t1 = encode_tag(ItemId(1));
        let t2 = encode_tag(ItemId(2));
        // Item 1 sampled in two runs separated by item 2.
        bundle.samples = vec![
            sample(0, 1_000, ip, t1),
            sample(0, 4_000, ip, t1),
            sample(0, 10_000, ip, t2),
            sample(0, 13_000, ip, t2),
            sample(0, 20_000, ip, t1),
            sample(0, 23_000, ip, t1),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::RegisterTag);
        let table = EstimateTable::from_integrated(&it);
        let fe1 = table.get(ItemId(1), f).unwrap();
        // (4k-1k) + (23k-20k) = 6k cycles = 2 µs.
        assert_eq!(fe1.elapsed, SimDuration::from_us(2));
        assert_eq!(fe1.samples, 4);
        // No marks → no exact total.
        assert_eq!(table.item(ItemId(1)).unwrap().marked_total, None);
    }

    #[test]
    fn item_without_samples_still_has_marked_total() {
        let (symtab, _, _) = setup();
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 0, 9, MarkKind::Start),
            mark(0, 3_000, 9, MarkKind::End),
        ];
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::Intervals);
        let table = EstimateTable::from_integrated(&it);
        let ie = table.item(ItemId(9)).unwrap();
        assert_eq!(ie.marked_total, Some(SimDuration::from_us(1)));
        assert!(ie.funcs.is_empty());
        assert_eq!(ie.estimated_total(), SimDuration::ZERO);
    }

    #[test]
    fn unknown_func_samples_counted() {
        let (symtab, _, _) = setup();
        let mut bundle = TraceBundle::default();
        bundle.marks = vec![
            mark(0, 0, 1, MarkKind::Start),
            mark(0, 10_000, 1, MarkKind::End),
        ];
        bundle.samples = vec![sample(0, 500, VirtAddr(0x10), NO_TAG)];
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::Intervals);
        let table = EstimateTable::from_integrated(&it);
        assert_eq!(table.item(ItemId(1)).unwrap().unknown_func_samples, 1);
    }

    #[test]
    fn missing_interval_idx_is_skipped_and_counted_not_aliased() {
        use crate::integrate::AttributedSample;
        let (symtab, f, _) = setup();
        let _ = symtab;
        // Hand-built inconsistent trace: interval-mode samples carrying
        // an item but no interval index. The old estimator aliased these
        // onto span 0, bridging tsc 1_000 and 900_000 into one bogus
        // 299.67 µs estimate.
        let mk = |tsc: u64, idx: Option<u32>| AttributedSample {
            core: CoreId(0),
            tsc,
            item: Some(ItemId(1)),
            func: Some(f),
            interval_idx: idx,
        };
        let it = IntegratedTrace {
            samples: vec![
                mk(1_000, Some(0)),
                mk(4_000, Some(0)),
                mk(900_000, None), // inconsistent straggler
            ],
            intervals: vec![],
            errors: vec![],
            freq: freq(),
            mode: MappingMode::Intervals,
            stats: Default::default(),
            item_index: vec![],
        };
        for table in [
            EstimateTable::from_integrated(&it),
            EstimateTable::from_integrated_reference(&it),
        ] {
            assert_eq!(table.samples_missing_span, 1);
            let fe = table.get(ItemId(1), f).unwrap();
            assert_eq!(fe.samples, 2, "straggler not counted");
            assert_eq!(fe.elapsed, SimDuration::from_us(1), "span not bridged");
        }
    }

    #[test]
    fn linear_scan_matches_reference_on_messy_trace() {
        // Multi-core, preemption, unknown IPs, gap samples, both modes.
        let (symtab, f, g) = setup();
        let ips = [symtab.range(f).start, symtab.range(g).start, VirtAddr(0x2)];
        for mode in [MappingMode::Intervals, MappingMode::RegisterTag] {
            let mut bundle = TraceBundle::default();
            let mut item = 0u64;
            for core in 0..4u32 {
                let mut tsc = 31u64 * core as u64;
                for rep in 0..25u64 {
                    bundle
                        .marks
                        .push(mark(core, tsc, item % 7, MarkKind::Start));
                    for k in 0..(rep % 5) {
                        let ip = ips[(rep + k) as usize % 3];
                        let tag = encode_tag(ItemId(item % 7));
                        bundle.samples.push(sample(core, tsc + 1 + k * 13, ip, tag));
                    }
                    tsc += 80;
                    bundle.marks.push(mark(core, tsc, item % 7, MarkKind::End));
                    // Gap sample between items: no tag, no interval.
                    bundle.samples.push(sample(core, tsc + 3, ips[0], NO_TAG));
                    tsc += 10;
                    item += 1;
                }
            }
            bundle.sort();
            let it = integrate(&bundle, &symtab, freq(), mode);
            let (fast, _ns) = EstimateTable::from_integrated_timed(&it);
            let reference = EstimateTable::from_integrated_reference(&it);
            assert_eq!(fast, reference, "mode {mode:?}");
            // The columnar estimator agrees too, both from a directly
            // built SoA trace and from an AoS conversion.
            let soa = crate::soa::integrate_soa(&bundle, &symtab, freq(), mode);
            let (columnar, _ns) = EstimateTable::from_soa_timed(&soa);
            assert_eq!(columnar, reference, "soa mode {mode:?}");
            let converted = crate::soa::SoaTrace::from_integrated(&it);
            assert_eq!(
                EstimateTable::from_soa(&converted),
                reference,
                "converted soa mode {mode:?}"
            );
        }
    }

    #[test]
    fn series_for_func_orders_by_item() {
        let (symtab, f, _) = setup();
        let ip = symtab.range(f).start;
        let mut bundle = TraceBundle::default();
        for (i, base) in [(2u64, 100_000u64), (1, 0)] {
            bundle.marks.push(mark(0, base, i, MarkKind::Start));
            bundle.marks.push(mark(0, base + 50_000, i, MarkKind::End));
            bundle.samples.push(sample(0, base + 1_000, ip, NO_TAG));
            bundle.samples.push(sample(0, base + 4_000, ip, NO_TAG));
        }
        bundle.sort();
        let it = integrate(&bundle, &symtab, freq(), MappingMode::Intervals);
        let table = EstimateTable::from_integrated(&it);
        let series = table.series_for_func(f);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, ItemId(1));
        assert_eq!(series[1].0, ItemId(2));
        assert_eq!(series[0].1, SimDuration::from_us(1));
    }
}
