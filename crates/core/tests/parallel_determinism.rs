//! Property tests of the parallel pipeline's determinism guarantee:
//! for any multi-core workload, integration output is bit-identical
//! across worker-pool sizes (the `FLUCTRACE_THREADS` contract), and the
//! linear-scan estimator reproduces the reference implementation
//! exactly.

use fluctrace_core::{
    chrome_trace_string, integrate_with_threads, run_indexed, EstimateTable, ExportOptions,
    MappingMode,
};
use fluctrace_cpu::{
    CoreConfig, Exec, FuncId, ItemId, Machine, MachineConfig, PebsConfig, SymbolTable,
    SymbolTableBuilder, TraceBundle,
};
use fluctrace_sim::{Freq, SimDuration};
use proptest::prelude::*;

/// A randomized workload spread over several cores.
#[derive(Debug, Clone)]
struct MultiCoreWorkload {
    reset: u64,
    /// Per core, per item: list of (func index, kilouops) segments.
    cores: Vec<Vec<Vec<(usize, u64)>>>,
    gap_us: u64,
    reg_tagging: bool,
}

fn arb_workload() -> impl Strategy<Value = MultiCoreWorkload> {
    (
        500u64..10_000,
        proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec((0usize..4, 1u64..40), 1..4),
                1..10,
            ),
            1..6,
        ),
        0u64..10,
        any::<bool>(),
    )
        .prop_map(|(reset, cores, gap_us, reg_tagging)| MultiCoreWorkload {
            reset,
            cores,
            gap_us,
            reg_tagging,
        })
}

/// Run the workload on a simulated machine and collect its trace.
fn trace(w: &MultiCoreWorkload) -> (TraceBundle, SymbolTable) {
    let mut b = SymbolTableBuilder::new();
    let funcs: Vec<FuncId> = (0..4).map(|i| b.add(&format!("fn{i}"), 2048)).collect();
    let symtab = b.build();
    let mut cfg = CoreConfig::bare().with_pebs(PebsConfig::new(w.reset));
    cfg.reg_tagging = w.reg_tagging;
    let mut machine = Machine::new(MachineConfig::new(w.cores.len(), cfg), symtab.clone());
    for (c, items) in w.cores.iter().enumerate() {
        let core = machine.core_mut(c);
        for (i, segments) in items.iter().enumerate() {
            // Item ids unique per core so cross-core aliasing doesn't
            // mask a splicing bug.
            let item = ItemId((c * 1_000 + i) as u64);
            core.mark_item_start(item);
            for &(f, kuops) in segments {
                core.exec(Exec::new(funcs[f], kuops * 1000));
            }
            core.mark_item_end(item);
            core.idle(SimDuration::from_us(w.gap_us));
        }
    }
    let (bundle, _) = machine.collect();
    (bundle, symtab)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn integration_is_thread_count_invariant(w in arb_workload()) {
        let (bundle, symtab) = trace(&w);
        for mode in [MappingMode::Intervals, MappingMode::RegisterTag] {
            let reference =
                integrate_with_threads(&bundle, &symtab, Freq::ghz(3), mode, 1);
            for threads in [2usize, 4, 16] {
                let it =
                    integrate_with_threads(&bundle, &symtab, Freq::ghz(3), mode, threads);
                prop_assert_eq!(&it.samples, &reference.samples,
                    "samples differ at {} threads ({:?})", threads, mode);
                prop_assert_eq!(&it.intervals, &reference.intervals);
                prop_assert_eq!(&it.errors, &reference.errors);
            }
        }
    }

    #[test]
    fn linear_estimator_matches_reference(w in arb_workload()) {
        let (bundle, symtab) = trace(&w);
        for mode in [MappingMode::Intervals, MappingMode::RegisterTag] {
            let it = integrate_with_threads(&bundle, &symtab, Freq::ghz(3), mode, 4);
            let (fast, _ns) = EstimateTable::from_integrated_timed(&it);
            let reference = EstimateTable::from_integrated_reference(&it);
            prop_assert_eq!(fast, reference, "estimators disagree ({:?})", mode);
        }
    }

    #[test]
    fn exported_artifact_bytes_are_thread_count_invariant(w in arb_workload()) {
        let (bundle, symtab) = trace(&w);
        let render = |threads: usize| {
            let it = integrate_with_threads(
                &bundle, &symtab, Freq::ghz(3), MappingMode::Intervals, threads);
            let (table, _ns) = EstimateTable::from_integrated_timed(&it);
            chrome_trace_string(&it, &table, &symtab, ExportOptions { include_samples: true })
        };
        let reference = render(1);
        for threads in [4usize, 16] {
            prop_assert_eq!(&render(threads), &reference,
                "exported artifact bytes differ at {} threads", threads);
        }
    }

    #[test]
    fn sweep_runner_is_order_stable(xs in proptest::collection::vec(0u64..1_000, 1..40)) {
        let expected: Vec<u64> = xs.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 8] {
            let out = run_indexed(xs.clone(), threads, |_, x| x * 3 + 1);
            prop_assert_eq!(&out, &expected, "threads={}", threads);
        }
    }
}
