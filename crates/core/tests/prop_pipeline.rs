//! Property tests driving the full machine → integrate → estimate chain
//! with randomized workloads: the tracer's invariants must hold for
//! *any* self-switching program, not just the paper's apps.

use fluctrace_core::{integrate, EstimateTable, MappingMode};
use fluctrace_cpu::{
    CoreConfig, Exec, FuncId, ItemId, Machine, MachineConfig, PebsConfig, SymbolTable,
    SymbolTableBuilder,
};
use fluctrace_sim::{Freq, SimDuration};
use proptest::prelude::*;

/// A randomized self-switching workload description.
#[derive(Debug, Clone)]
struct Workload {
    reset: u64,
    /// Per item: list of (func index, kilouops) segments.
    items: Vec<Vec<(usize, u64)>>,
    gap_us: u64,
    reg_tagging: bool,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        500u64..20_000,
        proptest::collection::vec(
            proptest::collection::vec((0usize..4, 1u64..60), 1..6),
            1..25,
        ),
        0u64..20,
        any::<bool>(),
    )
        .prop_map(|(reset, items, gap_us, reg_tagging)| Workload {
            reset,
            items,
            gap_us,
            reg_tagging,
        })
}

fn run(w: &Workload) -> (Machine, Vec<FuncId>, SymbolTable) {
    let mut b = SymbolTableBuilder::new();
    let funcs: Vec<FuncId> = (0..4).map(|i| b.add(&format!("fn{i}"), 2048)).collect();
    let symtab = b.build();
    let mut cfg = CoreConfig::bare().with_pebs(PebsConfig::new(w.reset));
    cfg.reg_tagging = w.reg_tagging;
    let mut machine = Machine::new(MachineConfig::new(1, cfg), symtab.clone());
    let core = machine.core_mut(0);
    for (i, segments) in w.items.iter().enumerate() {
        core.mark_item_start(ItemId(i as u64));
        for &(f, kuops) in segments {
            core.exec(Exec::new(funcs[f], kuops * 1000));
        }
        core.mark_item_end(ItemId(i as u64));
        core.idle(SimDuration::from_us(w.gap_us));
    }
    (machine, funcs, symtab)
}

proptest! {
    // 48 cases by default; scheduled CI sets FLUCTRACE_PROPTEST_CASES to
    // explore deeper without patching the source.
    #![proptest_config(ProptestConfig::cases_from_env(48))]

    #[test]
    fn estimates_never_exceed_marked_totals(w in arb_workload()) {
        let (mut machine, _funcs, symtab) = run(&w);
        let (bundle, _) = machine.collect();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        prop_assert!(it.errors.is_empty());
        let table = EstimateTable::from_integrated(&it);
        for ie in table.items() {
            let total = ie.marked_total.expect("marks exist");
            for fe in &ie.funcs {
                prop_assert!(fe.elapsed <= total,
                    "item {} fn {}: {} > {}", ie.item, fe.func, fe.elapsed, total);
            }
            // NOTE: the SUM over functions may exceed the total when
            // functions interleave within an item (f g f): f's
            // first→last span covers g's — the §V.B.2 limitation the
            // paper acknowledges. Only the per-function bound holds in
            // general.
        }
    }

    #[test]
    fn every_sample_is_attributed_no_spin_no_loss(w in arb_workload()) {
        // This workload never spins between marks (idle retires no
        // uops), so every sample lies inside some interval and must be
        // attributed.
        let (mut machine, _funcs, symtab) = run(&w);
        let (bundle, _) = machine.collect();
        let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
        if !it.samples.is_empty() {
            prop_assert!((it.attribution_ratio() - 1.0).abs() < 1e-12,
                "attribution {}", it.attribution_ratio());
        }
        // Sample conservation through the estimate table.
        let table = EstimateTable::from_integrated(&it);
        let attributed: u64 = table
            .items()
            .map(|ie| ie.funcs.iter().map(|f| f.samples as u64).sum::<u64>()
                + ie.unknown_func_samples as u64)
            .sum();
        prop_assert_eq!(attributed, it.samples.len() as u64);
    }

    #[test]
    fn interval_and_tag_modes_agree_when_tagging(w in arb_workload()) {
        prop_assume!(w.reg_tagging);
        let (mut machine, funcs, symtab) = run(&w);
        let (bundle, _) = machine.collect();
        let a = EstimateTable::from_integrated(&integrate(
            &bundle, &symtab, Freq::ghz(3), MappingMode::Intervals));
        let b = EstimateTable::from_integrated(&integrate(
            &bundle, &symtab, Freq::ghz(3), MappingMode::RegisterTag));
        for (i, _) in w.items.iter().enumerate() {
            for &f in &funcs {
                let ea = a.get(ItemId(i as u64), f).map(|e| (e.samples, e.elapsed));
                let eb = b.get(ItemId(i as u64), f).map(|e| (e.samples, e.elapsed));
                prop_assert_eq!(ea, eb, "item {} fn {}", i, f);
            }
        }
    }

    #[test]
    fn runs_are_deterministic(w in arb_workload()) {
        let collect = |w: &Workload| {
            let (mut machine, _, symtab) = run(w);
            let (bundle, _) = machine.collect();
            let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
            (bundle.samples.len(), bundle.marks.len(),
             EstimateTable::from_integrated(&it)
                .items()
                .map(|ie| (ie.item, ie.estimated_total().as_ps()))
                .collect::<Vec<_>>())
        };
        prop_assert_eq!(collect(&w), collect(&w));
    }

    #[test]
    fn sample_count_matches_uop_budget(w in arb_workload()) {
        let (mut machine, _, _) = run(&w);
        let total_uops: u64 = w.items.iter().flatten().map(|&(_, k)| k * 1000).sum();
        let (bundle, _) = machine.collect();
        // Exactly floor(total_uops / reset) samples: the counter never
        // resets between items.
        prop_assert_eq!(bundle.samples.len() as u64, total_uops / w.reset);
    }
}
