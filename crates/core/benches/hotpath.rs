//! Old-vs-new hot-path kernels, head to head: the AoS row pipeline
//! against the columnar (SoA) fast path, for both the merge-cursor
//! attribution kernel and the batched estimate fold.
//!
//! The statistical regression gate lives in `perf-hunt`
//! (`crates/bench`); these benches are the per-kernel microscope —
//! run `cargo bench -p fluctrace-core --bench hotpath` after touching
//! `integrate.rs`, `soa.rs` or `estimate.rs`.
//!
//! Workload size honours `FLUCTRACE_PERF_SAMPLES` (approximate total
//! samples, default 200 000 — cache-resident so per-kernel deltas are
//! visible; the gate in `perf-hunt` measures at production volume).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fluctrace_core::{
    integrate_soa_with_threads, integrate_with_threads, EstimateTable, MappingMode,
};
use fluctrace_cpu::{
    CoreId, HwEvent, ItemId, MarkKind, MarkRecord, PebsRecord, SymbolTable, SymbolTableBuilder,
    TraceBundle,
};
use fluctrace_sim::Freq;
use std::hint::black_box;

const CORES: u32 = 4;
const SAMPLES_PER_ITEM: u64 = 24;
const FUNCS: usize = 384;

fn total_samples() -> u64 {
    std::env::var("FLUCTRACE_PERF_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000u64)
        .max(1_000)
}

/// Synthetic multi-core trace shaped like the perf-hunt workload:
/// marked items, function hops, occasional unattributed gap samples.
fn synthetic_bundle() -> (TraceBundle, SymbolTable) {
    let mut b = SymbolTableBuilder::new();
    let funcs: Vec<_> = (0..FUNCS)
        .map(|i| b.add(&format!("fn_{i:04}"), 48 + (i as u64 % 7) * 16))
        .collect();
    let symtab = b.build();
    let items_per_core = (total_samples() / u64::from(CORES) / (SAMPLES_PER_ITEM + 1)).max(1);

    let mut bundle = TraceBundle::default();
    let mut state = 0x5EED_u64;
    let mut rng = move |n: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % n.max(1)
    };
    for core in 0..CORES {
        let mut tsc = 1_000 + u64::from(core);
        for i in 0..items_per_core {
            let item = u64::from(core) * items_per_core + i;
            bundle.marks.push(MarkRecord {
                core: CoreId(core),
                tsc,
                item: ItemId(item),
                kind: MarkKind::Start,
            });
            let mut f = rng(FUNCS as u64) as usize;
            for _ in 0..SAMPLES_PER_ITEM {
                tsc += 40 + rng(120);
                if rng(8) == 0 {
                    f = rng(FUNCS as u64) as usize;
                }
                let Some(&func) = funcs.get(f) else {
                    continue;
                };
                bundle.samples.push(PebsRecord {
                    core: CoreId(core),
                    tsc,
                    ip: symtab.range(func).start,
                    r13: item + 1,
                    event: HwEvent::UopsRetired,
                });
            }
            tsc += 40 + rng(120);
            bundle.marks.push(MarkRecord {
                core: CoreId(core),
                tsc,
                item: ItemId(item),
                kind: MarkKind::End,
            });
            tsc += 200 + rng(400);
        }
    }
    bundle.sort();
    (bundle, symtab)
}

fn bench_attribution(c: &mut Criterion) {
    let (bundle, symtab) = synthetic_bundle();
    let n = bundle.samples.len() as u64;
    let freq = Freq::ghz(3);
    let mut g = c.benchmark_group("hotpath/attribution");
    g.throughput(Throughput::Elements(n)).sample_size(12);
    g.bench_function("old-aos-rows", |b| {
        b.iter(|| {
            black_box(integrate_with_threads(
                &bundle,
                &symtab,
                freq,
                MappingMode::Intervals,
                1,
            ))
        })
    });
    g.bench_function("new-soa-columns", |b| {
        b.iter(|| {
            black_box(integrate_soa_with_threads(
                &bundle,
                &symtab,
                freq,
                MappingMode::Intervals,
                1,
            ))
        })
    });
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let (bundle, symtab) = synthetic_bundle();
    let n = bundle.samples.len() as u64;
    let freq = Freq::ghz(3);
    let it = integrate_with_threads(&bundle, &symtab, freq, MappingMode::Intervals, 1);
    let soa = integrate_soa_with_threads(&bundle, &symtab, freq, MappingMode::Intervals, 1);
    let mut g = c.benchmark_group("hotpath/estimate");
    g.throughput(Throughput::Elements(n)).sample_size(12);
    g.bench_function("old-row-scan", |b| {
        b.iter(|| black_box(EstimateTable::from_integrated(&it)))
    });
    g.bench_function("new-run-scan", |b| {
        b.iter(|| black_box(EstimateTable::from_soa(&soa)))
    });
    g.finish();
}

criterion_group!(benches, bench_attribution, bench_estimate);
criterion_main!(benches);
