//! End-to-end daemon tests: drained-shutdown equality with the batch
//! pipeline, snapshot byte-stability, the protocol surface, and the
//! Prometheus endpoint.

use fluctrace_core::{integrate, CumulativeMode, EstimateTable, MappingMode};
use fluctrace_cpu::TraceBundle;
use fluctrace_serve::{build_symtab, query, Daemon, ServeConfig, TrafficGen};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Lossless bounded config: blocking submission, thinning off — the
/// mode whose drained cumulative table must equal the batch run.
fn lossless(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(seed);
    cfg.shards = 2;
    cfg.cores = 2;
    cfg.max_batches = Some(24);
    cfg.window.window_items = 16;
    cfg.window.max_windows = 4;
    cfg
}

/// Replay one shard's full stream offline and return the batch-pipeline
/// estimate table — the golden the drained daemon must reproduce.
fn batch_table(cfg: &ServeConfig, shard: u32) -> EstimateTable {
    let symtab = build_symtab(cfg.funcs);
    let mut traffic = TrafficGen::new(cfg, shard, Arc::clone(&symtab));
    let mut all = TraceBundle::default();
    for _ in 0..cfg.max_batches.expect("bounded config") {
        all.merge(traffic.next_batch());
    }
    all.sort();
    let it = integrate(&all, &symtab, cfg.window.freq, MappingMode::Intervals);
    EstimateTable::from_integrated(&it)
}

#[test]
fn drained_cumulative_tables_equal_the_batch_run() {
    let cfg = lossless(1234);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").unwrap();
    let addr = daemon.addr().to_string();
    daemon.wait_drained();

    let response = query(&addr, "table").unwrap();
    for shard in 0..cfg.shards as u32 {
        let expected = serde_json::to_string(&batch_table(&cfg, shard)).unwrap();
        assert!(
            response.contains(&expected),
            "shard {shard} cumulative table != batch pipeline table\n\
             response: {response}\nexpected fragment: {expected}"
        );
    }
    // Byte-stable across repeated queries once drained.
    assert_eq!(response, query(&addr, "table").unwrap());

    let loss = query(&addr, "loss").unwrap();
    assert!(loss.contains("\"conserves_samples\":true"), "{loss}");
    // Lossless mode: nothing dropped, evicted, thinned, or discarded.
    for counter in [
        "\"batches_dropped\":0",
        "\"samples_dropped\":0",
        "\"samples_thinned\":0",
        "\"samples_evicted\":0",
        "\"samples_discarded\":0",
    ] {
        assert!(loss.contains(counter), "missing {counter} in {loss}");
    }

    daemon.quiesce();
    daemon.join();
}

#[test]
fn snapshot_double_query_is_byte_identical_after_drain() {
    let cfg = lossless(77);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").unwrap();
    let addr = daemon.addr().to_string();
    daemon.wait_drained();

    let a = query(&addr, "snapshot").unwrap();
    let b = query(&addr, "snapshot").unwrap();
    assert_eq!(a, b, "drained snapshot must be frozen");
    assert!(a.contains("serve.total.items"));
    assert!(a.contains("serve.shard000.windows_closed"));
    assert!(a.contains("serve.shard001.worker.utilization_milli"));
    assert!(a.contains("serve.shard000.wait.ring_empty_cycles"));
    assert!(a.contains("serve.total.loss.samples_spin"));

    let drained = query(&addr, "drained").unwrap();
    assert_eq!(drained.trim(), "{\"drained\":true}");

    // Windows: bounded run of 24 batches × 4 items × 2 cores = 192
    // items per shard at 16-item windows -> 12 closed, 4 retained.
    let windows = query(&addr, "windows 2").unwrap();
    assert!(windows.contains("\"windows_closed\":12"), "{windows}");
    assert!(windows.contains("\"windows_evicted\":8"), "{windows}");

    let episodes = query(&addr, "episodes").unwrap();
    assert!(episodes.contains("\"shards\":["), "{episodes}");

    daemon.quiesce();
    daemon.join();
}

#[test]
fn metrics_endpoint_serves_prometheus_on_the_same_listener() {
    let cfg = lossless(9);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").unwrap();
    daemon.wait_drained();

    let mut stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("text/plain"));
    // The pinned catalog is pre-registered, so core metrics appear even
    // when this test process never ran the batch pipeline...
    assert!(response.contains("# TYPE fluctrace_core_online_items_processed counter"));
    // ...and the serve.* series are present and live.
    assert!(response.contains("# TYPE fluctrace_serve_windows_closed counter"));
    assert!(response.contains("# TYPE fluctrace_serve_worker_utilization_milli gauge"));

    // Unknown paths 404 without killing the listener.
    let mut stream = TcpStream::connect(daemon.addr()).unwrap();
    stream.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");

    daemon.quiesce();
    daemon.join();
}

#[test]
fn malformed_requests_get_error_documents() {
    let cfg = lossless(5);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").unwrap();
    let addr = daemon.addr().to_string();
    daemon.wait_drained();

    assert!(query(&addr, "bogus").unwrap().contains("\"error\""));
    assert!(query(&addr, "windows").unwrap().contains("\"error\""));
    assert!(query(&addr, "windows -3").unwrap().contains("\"error\""));
    // The daemon survives malformed input.
    assert!(query(&addr, "drained").unwrap().contains("true"));

    daemon.quiesce();
    daemon.join();
}

#[test]
fn quiesce_drains_an_unbounded_run_and_answers_with_final_state() {
    let mut cfg = lossless(31);
    cfg.max_batches = None; // unbounded: only quiesce ends it
    let daemon = Daemon::start(cfg, "127.0.0.1:0").unwrap();
    let addr = daemon.addr().to_string();

    // Let it work until every shard has closed a few windows.
    for view in daemon.shards() {
        while view
            .counters
            .windows_closed
            .load(std::sync::atomic::Ordering::Acquire)
            < 3
        {
            std::thread::yield_now();
        }
    }

    let finale = query(&addr, "quiesce").unwrap();
    assert!(finale.contains("\"quiesced\":true"), "{finale}");
    assert!(finale.contains("\"snapshot\":"), "{finale}");
    assert!(finale.contains("\"tables\":"), "{finale}");

    // After quiesce every shard is drained and the ledger conserves.
    let shards = daemon.shards().to_vec();
    daemon.join();
    for view in shards {
        assert!(view
            .counters
            .drained
            .load(std::sync::atomic::Ordering::Acquire));
        assert!(view.integrator.lock().report().conserves_samples());
    }
}

#[test]
fn folded_mode_serves_totals_instead_of_tables() {
    let mut cfg = lossless(64);
    cfg.window.cumulative = CumulativeMode::Folded;
    let daemon = Daemon::start(cfg, "127.0.0.1:0").unwrap();
    let addr = daemon.addr().to_string();
    daemon.wait_drained();

    let tables = query(&addr, "table").unwrap();
    assert!(tables.contains("\"mode\":\"folded\""), "{tables}");
    assert!(tables.contains("\"table\":null"), "{tables}");
    assert!(tables.contains("\"marked_cycles\":"), "{tables}");

    daemon.quiesce();
    daemon.join();
}
