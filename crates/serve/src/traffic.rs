//! Deterministic continuous traffic: the seeded generator each shard
//! runs forever.
//!
//! The stream shape follows the perf-hunt workload: per-core bracketed
//! items (Start mark, samples, End mark) with IP locality inside a hot
//! function, an occasional unresolvable IP, a stray inter-item spin
//! sample, and periodic spiked items that run `spike_scale`× slower to
//! exercise the anomaly-episode path. Everything derives from
//! [`fluctrace_sim::Rng`] forks of `(seed + shard)`, so the same config
//! replayed offline produces byte-identical batches — the property the
//! drained-shutdown-equals-batch-run check stands on.

use crate::ServeConfig;
use fluctrace_cpu::{
    CoreId, HwEvent, ItemId, MarkKind, MarkRecord, PebsRecord, SymbolTable, SymbolTableBuilder,
    TraceBundle, VirtAddr, NO_TAG,
};
use fluctrace_sim::Rng;
use std::sync::Arc;

/// Shared symbol table of the synthetic service: `funcs` functions
/// named `svc_fn{i}`, 512 bytes each.
pub fn build_symtab(funcs: usize) -> Arc<SymbolTable> {
    let mut b = SymbolTableBuilder::new();
    for i in 0..funcs.max(1) {
        b.add(&format!("svc_fn{i}"), 512);
    }
    b.build().into_shared()
}

/// Per-core generator state.
struct CoreGen {
    rng: Rng,
    tsc: u64,
    /// Items completed on this core so far (low bits of the item id).
    seq: u64,
    /// Current hot function index (IP locality).
    hot: u64,
}

/// Deterministic per-shard traffic source. Not `Clone`: the stream is
/// the state; replay by constructing a fresh generator from the same
/// config and shard id.
pub struct TrafficGen {
    shard: u64,
    cores: Vec<CoreGen>,
    symtab: Arc<SymbolTable>,
    items_per_batch: u64,
    samples_per_item: u64,
    funcs: u64,
    spike_every: u64,
    spike_scale: u64,
}

impl TrafficGen {
    /// Generator for shard `shard` of `config`, over `symtab` (build it
    /// once with [`build_symtab`] and share across shards).
    pub fn new(config: &ServeConfig, shard: u32, symtab: Arc<SymbolTable>) -> Self {
        let mut root = Rng::new(config.seed.wrapping_add(u64::from(shard)));
        let cores = (0..config.cores)
            .map(|c| CoreGen {
                rng: root.fork(),
                tsc: 1_000 + u64::from(c) * 137,
                seq: 0,
                hot: u64::from(c) % config.funcs.max(1) as u64,
            })
            .collect();
        TrafficGen {
            shard: u64::from(shard),
            cores,
            symtab,
            items_per_batch: config.items_per_batch.max(1),
            samples_per_item: config.samples_per_item.max(1),
            funcs: config.funcs.max(1) as u64,
            spike_every: config.spike_every,
            spike_scale: config.spike_scale.max(1),
        }
    }

    /// Generate the next batch: `items_per_batch` complete items per
    /// core, sorted. Every item is bracketed (its End is in the same
    /// batch), so any batch prefix of the stream is a well-formed
    /// workload — which is what lets a drained daemon equal a batch run
    /// over the concatenation.
    pub fn next_batch(&mut self) -> TraceBundle {
        let mut bundle = TraceBundle::default();
        let items = self.items_per_batch;
        let samples = self.samples_per_item;
        let funcs = self.funcs;
        let (spike_every, spike_scale) = (self.spike_every, self.spike_scale);
        for (ci, core) in self.cores.iter_mut().enumerate() {
            let core_id = CoreId(ci as u32);
            for _ in 0..items {
                core.seq += 1;
                let item =
                    ItemId((self.shard << 40) | ((ci as u64) << 32) | (core.seq & 0xffff_ffff));
                let stretch = if spike_every > 0 && core.seq % spike_every == 0 {
                    spike_scale
                } else {
                    1
                };
                bundle.marks.push(MarkRecord {
                    core: core_id,
                    tsc: core.tsc,
                    item,
                    kind: MarkKind::Start,
                });
                for _ in 0..samples {
                    core.tsc += (20 + core.rng.gen_below(30)) * stretch;
                    // 1-in-8 hop to a new hot function, 1-in-64 IP that
                    // resolves to no function at all.
                    if core.rng.gen_below(8) == 0 {
                        core.hot = core.rng.gen_below(funcs);
                    }
                    let ip = if core.rng.gen_below(64) == 0 {
                        VirtAddr(3)
                    } else {
                        let id = fluctrace_cpu::FuncId((core.hot % funcs) as u32);
                        let range = self.symtab.range(id);
                        VirtAddr(range.start.as_u64() + core.rng.gen_below(range.size().max(1)))
                    };
                    bundle.samples.push(PebsRecord {
                        core: core_id,
                        tsc: core.tsc,
                        ip,
                        r13: NO_TAG,
                        event: HwEvent::UopsRetired,
                    });
                }
                core.tsc += 25 * stretch;
                bundle.marks.push(MarkRecord {
                    core: core_id,
                    tsc: core.tsc,
                    item,
                    kind: MarkKind::End,
                });
                if core.seq % 16 == 0 {
                    // Stray inter-item spin sample: keeps the
                    // samples_spin ledger branch continuously exercised.
                    core.tsc += 7;
                    let id = fluctrace_cpu::FuncId((core.hot % funcs) as u32);
                    let range = self.symtab.range(id);
                    bundle.samples.push(PebsRecord {
                        core: core_id,
                        tsc: core.tsc,
                        ip: range.start,
                        r13: NO_TAG,
                        event: HwEvent::UopsRetired,
                    });
                }
                core.tsc += 40 + core.rng.gen_below(60);
            }
        }
        bundle.sort();
        bundle
    }

    /// The symbol table the stream resolves against.
    pub fn symtab(&self) -> &Arc<SymbolTable> {
        &self.symtab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_byte_identical() {
        let cfg = ServeConfig::new(42);
        let symtab = build_symtab(cfg.funcs);
        let mut a = TrafficGen::new(&cfg, 1, Arc::clone(&symtab));
        let mut b = TrafficGen::new(&cfg, 1, Arc::clone(&symtab));
        for _ in 0..5 {
            let ba = a.next_batch();
            let bb = b.next_batch();
            assert_eq!(ba.samples, bb.samples);
            assert_eq!(ba.marks, bb.marks);
        }
    }

    #[test]
    fn shards_produce_distinct_streams_and_item_ids() {
        let cfg = ServeConfig::new(7);
        let symtab = build_symtab(cfg.funcs);
        let b0 = TrafficGen::new(&cfg, 0, Arc::clone(&symtab)).next_batch();
        let b1 = TrafficGen::new(&cfg, 1, Arc::clone(&symtab)).next_batch();
        assert_ne!(b0.samples, b1.samples);
        for m in &b0.marks {
            assert_eq!(m.item.0 >> 40, 0);
        }
        for m in &b1.marks {
            assert_eq!(m.item.0 >> 40, 1);
        }
    }

    #[test]
    fn batches_are_self_contained_and_sorted() {
        let cfg = ServeConfig::new(9);
        let symtab = build_symtab(cfg.funcs);
        let mut g = TrafficGen::new(&cfg, 0, symtab);
        for _ in 0..3 {
            let b = g.next_batch();
            let mut sorted = b.clone();
            sorted.sort();
            assert_eq!(b.marks, sorted.marks);
            assert_eq!(b.samples, sorted.samples);
            let starts = b.marks.iter().filter(|m| m.kind == MarkKind::Start).count();
            let ends = b.marks.iter().filter(|m| m.kind == MarkKind::End).count();
            assert_eq!(starts, ends);
            assert_eq!(
                starts as u64,
                cfg.items_per_batch * u64::from(cfg.cores),
                "every item bracketed within the batch"
            );
        }
    }
}
