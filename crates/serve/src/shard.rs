//! One shard: a seeded generator thread feeding a windowed-integrator
//! worker thread over a bounded channel, with the online tracer's two
//! overload policies composed in front of it.
//!
//! * **Back-pressure** — `blocking: true` blocks the generator on a
//!   full channel (lossless); `false` drops whole batches and counts
//!   them (`batches_dropped` / `samples_dropped`), exactly like
//!   `OnlineTracer::try_submit`.
//! * **Adaptive effective-reset** — every submission feeds channel
//!   occupancy to a per-shard [`AdaptiveR`]; a factor above 1× thins
//!   the batch to every factor-th sample, counted in
//!   `samples_thinned`.
//!
//! The worker folds `ring_empty` idle time into the shard's
//! [`WaitLog`] — one [`WaitCause::RingEmpty`] edge per empty-poll,
//! measured in obs clock ticks — and the idle/busy tick split becomes
//! the `serve.worker.utilization_milli` gauge surfaced in snapshots
//! and `/metrics`.

use crate::{ServeConfig, TrafficGen};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use fluctrace_core::online::AdaptiveR;
use fluctrace_core::{LossStats, WindowReport, WindowedIntegrator};
use fluctrace_cpu::{SymbolTable, TraceBundle};
use fluctrace_obs as obs;
use fluctrace_rt::{WaitCause, WaitEdge, WaitLog};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Monotonic counters of one shard, written by its two threads and
/// read by the protocol handlers. All counters are cumulative totals
/// (stores of the latest value, not deltas), so a reader sees a
/// consistent-enough picture without locking the integrator.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Batches the generator produced (including dropped ones).
    pub batches_produced: AtomicU64,
    /// Batches the worker ingested.
    pub batches_ingested: AtomicU64,
    /// Items completed by the integrator.
    pub items: AtomicU64,
    /// Samples the integrator received.
    pub samples_seen: AtomicU64,
    /// Samples attributed to completed items.
    pub samples_attributed: AtomicU64,
    /// Windows closed.
    pub windows_closed: AtomicU64,
    /// Window summaries evicted by retention.
    pub windows_evicted: AtomicU64,
    /// Approximate bytes of evicted summaries.
    pub evicted_bytes: AtomicU64,
    /// Anomaly episodes recorded.
    pub episodes: AtomicU64,
    /// Producer-side: whole batches dropped on a full channel.
    pub batches_dropped: AtomicU64,
    /// Producer-side: samples inside those dropped batches.
    pub samples_dropped: AtomicU64,
    /// Producer-side: samples shed by adaptive thinning.
    pub samples_thinned: AtomicU64,
    /// Worker ticks spent inside `ingest` (obs clock).
    pub busy_ticks: AtomicU64,
    /// Worker ticks spent blocked on an empty ring (obs clock); always
    /// equals the sum of this shard's `ring_empty` wait-edge cycles.
    pub idle_ticks: AtomicU64,
    /// Channel occupancy at the last submission, in milli-units.
    pub occupancy_milli: AtomicU64,
    /// Set once the worker has finished the stream (channel closed and
    /// final window flushed).
    pub drained: AtomicBool,
}

impl ShardCounters {
    /// Worker utilization in milli-units: `busy / (busy + idle)`.
    /// 1000 = never waited; 0 before the worker has done anything.
    pub fn utilization_milli(&self) -> u64 {
        let busy = self.busy_ticks.load(Ordering::Acquire);
        let idle = self.idle_ticks.load(Ordering::Acquire);
        let total = busy.saturating_add(idle);
        busy.saturating_mul(1000).checked_div(total).unwrap_or(0)
    }

    /// Producer-side shed counters merged into a [`LossStats`] base
    /// (the integrator's ledger only sees what crossed the channel).
    pub fn fold_producer_loss(&self, mut loss: LossStats) -> LossStats {
        loss.batches_dropped += self.batches_dropped.load(Ordering::Acquire);
        loss.samples_dropped += self.samples_dropped.load(Ordering::Acquire);
        loss.samples_thinned += self.samples_thinned.load(Ordering::Acquire);
        loss
    }
}

/// One running shard: the two thread handles plus the shared state the
/// protocol layer reads.
pub struct ShardHandle {
    /// Shard index (also the `core` id of its wait edges).
    pub id: u32,
    /// The windowed integrator, locked only for ingest and queries.
    pub integrator: Arc<Mutex<WindowedIntegrator>>,
    /// `ring_empty` wait edges of the worker.
    pub wait: Arc<Mutex<WaitLog>>,
    /// Live counters.
    pub counters: Arc<ShardCounters>,
    producer: Option<JoinHandle<()>>,
    consumer: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// Join both threads (the producer must already be finite or
    /// stopped via the daemon's stop flag, or this blocks forever).
    pub fn join(&mut self) {
        if let Some(h) = self.producer.take() {
            let _ = h.join();
        }
        if let Some(h) = self.consumer.take() {
            let _ = h.join();
        }
    }
}

/// Copy the integrator's cumulative report into the shard counters and
/// the global `serve.*` obs metrics (deltas against `last`).
fn publish(counters: &ShardCounters, report: &WindowReport, last: &WindowReport) {
    counters
        .items
        .store(report.items_processed, Ordering::Release);
    counters
        .samples_seen
        .store(report.samples_seen, Ordering::Release);
    counters
        .samples_attributed
        .store(report.samples_attributed, Ordering::Release);
    counters
        .windows_closed
        .store(report.windows_closed, Ordering::Release);
    counters
        .windows_evicted
        .store(report.windows_evicted, Ordering::Release);
    counters
        .evicted_bytes
        .store(report.evicted_bytes, Ordering::Release);
    counters.episodes.store(report.episodes, Ordering::Release);
    if obs::recording() {
        obs::counter!("serve.traffic.items")
            .add(report.items_processed.saturating_sub(last.items_processed));
        obs::counter!("serve.windows.closed")
            .add(report.windows_closed.saturating_sub(last.windows_closed));
        obs::counter!("serve.windows.evicted")
            .add(report.windows_evicted.saturating_sub(last.windows_evicted));
        obs::counter!("serve.windows.evicted_bytes")
            .add(report.evicted_bytes.saturating_sub(last.evicted_bytes));
        obs::counter!("serve.anomaly.episodes").add(report.episodes.saturating_sub(last.episodes));
    }
}

fn run_producer(
    config: ServeConfig,
    id: u32,
    symtab: Arc<SymbolTable>,
    tx: Sender<TraceBundle>,
    counters: Arc<ShardCounters>,
    stop: Arc<AtomicBool>,
) {
    let mut traffic = TrafficGen::new(&config, id, symtab);
    let mut adaptive = AdaptiveR::new(config.adaptive);
    let cap = tx.capacity().max(1);
    let mut produced = 0u64;
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        if let Some(max) = config.max_batches {
            if produced >= max {
                break;
            }
        }
        let mut batch = traffic.next_batch();
        produced += 1;
        counters.batches_produced.store(produced, Ordering::Release);

        // Overload policy 1: occupancy-driven adaptive thinning.
        let occupancy = tx.len() as f64 / cap as f64;
        let occ_milli = (occupancy * 1000.0) as u64;
        counters.occupancy_milli.store(occ_milli, Ordering::Release);
        if obs::recording() {
            obs::gauge!("serve.queue.occupancy_milli").record(occ_milli);
        }
        let factor = adaptive.observe(occupancy) as usize;
        if factor > 1 {
            let before = batch.samples.len();
            let mut i = 0usize;
            batch.samples.retain(|_| {
                let keep = i.is_multiple_of(factor);
                i += 1;
                keep
            });
            let thinned = (before - batch.samples.len()) as u64;
            counters
                .samples_thinned
                .fetch_add(thinned, Ordering::AcqRel);
        }

        // Overload policy 2: back-pressure or counted drop.
        if config.blocking {
            if tx.send(batch).is_err() {
                break;
            }
        } else {
            match tx.try_send(batch) {
                Ok(()) => {}
                Err(TrySendError::Full(b)) => {
                    counters.batches_dropped.fetch_add(1, Ordering::AcqRel);
                    counters
                        .samples_dropped
                        .fetch_add(b.samples.len() as u64, Ordering::AcqRel);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        if obs::recording() {
            obs::counter!("serve.traffic.batches").inc();
        }
    }
    // Dropping the sender closes the channel; the worker drains what is
    // queued, finishes the stream, and raises `drained`.
}

fn run_consumer(
    id: u32,
    rx: Receiver<TraceBundle>,
    integrator: Arc<Mutex<WindowedIntegrator>>,
    wait: Arc<Mutex<WaitLog>>,
    counters: Arc<ShardCounters>,
) {
    let mut last = WindowReport::default();
    let mut ingested = 0u64;
    loop {
        // Idle accounting: an empty poll means the worker is about to
        // block on its ring — the `ring_empty` wait of the staged
        // pipelines, measured here in obs clock ticks.
        let waited = if rx.is_empty() {
            Some(obs::now_ticks())
        } else {
            None
        };
        let batch = match rx.recv() {
            Ok(b) => b,
            Err(_) => {
                if let Some(t0) = waited {
                    let cycles = obs::now_ticks().wrapping_sub(t0);
                    counters.idle_ticks.fetch_add(cycles, Ordering::AcqRel);
                    wait.lock().record(WaitEdge {
                        core: id,
                        tsc: t0,
                        cycles,
                        cause: WaitCause::RingEmpty,
                        peer: id,
                    });
                }
                break;
            }
        };
        if let Some(t0) = waited {
            let cycles = obs::now_ticks().wrapping_sub(t0);
            counters.idle_ticks.fetch_add(cycles, Ordering::AcqRel);
            wait.lock().record(WaitEdge {
                core: id,
                tsc: t0,
                cycles,
                cause: WaitCause::RingEmpty,
                peer: id,
            });
        }
        let t0 = obs::now_ticks();
        let report = {
            let mut wi = integrator.lock();
            wi.ingest(batch);
            wi.report()
        };
        counters
            .busy_ticks
            .fetch_add(obs::now_ticks().wrapping_sub(t0), Ordering::AcqRel);
        ingested += 1;
        counters.batches_ingested.store(ingested, Ordering::Release);
        publish(&counters, &report, &last);
        if obs::recording() {
            obs::gauge!("serve.worker.utilization_milli").record(counters.utilization_milli());
        }
        last = report;
    }
    // Channel closed: account for truncated items and flush the final
    // partial window, then publish the frozen totals.
    let report = {
        let mut wi = integrator.lock();
        wi.finish_stream();
        wi.report()
    };
    publish(&counters, &report, &last);
    if obs::recording() {
        obs::gauge!("serve.worker.utilization_milli").record(counters.utilization_milli());
    }
    counters.drained.store(true, Ordering::Release);
}

/// Spawn one shard's generator + worker pair.
pub fn spawn_shard(
    config: &ServeConfig,
    id: u32,
    symtab: Arc<SymbolTable>,
    stop: Arc<AtomicBool>,
) -> ShardHandle {
    let (tx, rx) = bounded::<TraceBundle>(config.channel_capacity.max(1));
    let integrator = Arc::new(Mutex::new(WindowedIntegrator::new(
        Arc::clone(&symtab),
        config.window,
    )));
    let wait = Arc::new(Mutex::new(WaitLog::new(config.wait_capacity)));
    let counters = Arc::new(ShardCounters::default());

    let producer = {
        let config = *config;
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || run_producer(config, id, symtab, tx, counters, stop))
    };
    let consumer = {
        let integrator = Arc::clone(&integrator);
        let wait = Arc::clone(&wait);
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || run_consumer(id, rx, integrator, wait, counters))
    };

    ShardHandle {
        id,
        integrator,
        wait,
        counters,
        producer: Some(producer),
        consumer: Some(consumer),
    }
}
