//! The daemon: shard supervision, the TCP listener, and graceful
//! drain.
//!
//! One listener serves both surfaces: a line that starts with `GET `
//! is HTTP (the Prometheus `/metrics` endpoint, rendered from the
//! global obs registry); anything else is one line-delimited protocol
//! request (see [`crate::proto`]). Connections are handled one at a
//! time on the accept thread — the protocol is one request per
//! connection and every handler is bounded, so a serialized accept
//! loop keeps the daemon free of per-connection thread churn.
//!
//! `quiesce` is the graceful-shutdown contract: raise the stop flag,
//! join every generator, let each worker drain its channel to the
//! closed end and finish the stream, then answer with the final
//! snapshot + cumulative tables and stop accepting. Because the
//! generators only stop at batch boundaries and the workers consume
//! to the very last queued batch, nothing in flight is lost — which
//! is what makes the drained cumulative table equal the batch run in
//! lossless mode.

use crate::proto::{self, Request};
use crate::shard::{spawn_shard, ShardCounters, ShardHandle};
use crate::ServeConfig;
use fluctrace_core::WindowedIntegrator;
use fluctrace_obs as obs;
use fluctrace_rt::WaitLog;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Read-side view of one shard, shared with the protocol handlers.
#[derive(Clone)]
pub struct ShardView {
    /// Shard index.
    pub id: u32,
    /// The shard's windowed integrator.
    pub integrator: Arc<Mutex<WindowedIntegrator>>,
    /// The shard's `ring_empty` wait log.
    pub wait: Arc<Mutex<WaitLog>>,
    /// The shard's live counters.
    pub counters: Arc<ShardCounters>,
}

impl ShardView {
    fn of(handle: &ShardHandle) -> ShardView {
        ShardView {
            id: handle.id,
            integrator: Arc::clone(&handle.integrator),
            wait: Arc::clone(&handle.wait),
            counters: Arc::clone(&handle.counters),
        }
    }
}

struct DaemonState {
    shards: Vec<ShardView>,
    stop: Arc<AtomicBool>,
    handles: Mutex<Vec<ShardHandle>>,
    quiesced: AtomicBool,
}

impl DaemonState {
    /// Stop traffic and drain every shard. Idempotent; returns once
    /// all shard threads have exited and the streams are finished.
    fn quiesce(&self) {
        self.stop.store(true, Ordering::Release);
        let mut handles = self.handles.lock();
        for handle in handles.iter_mut() {
            handle.join();
        }
        handles.clear();
        self.quiesced.store(true, Ordering::Release);
    }
}

/// A running daemon: N shards plus the accept thread.
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<DaemonState>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Start shards and the listener on `addr` (use port 0 for an
    /// ephemeral port; the bound address is [`Daemon::addr`]).
    pub fn start(config: ServeConfig, addr: &str) -> Result<Daemon, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;

        let symtab = crate::build_symtab(config.funcs);
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        let mut shards = Vec::new();
        for id in 0..config.shards.max(1) as u32 {
            let handle = spawn_shard(&config, id, Arc::clone(&symtab), Arc::clone(&stop));
            shards.push(ShardView::of(&handle));
            handles.push(handle);
        }
        let state = Arc::new(DaemonState {
            shards,
            stop,
            handles: Mutex::new(handles),
            quiesced: AtomicBool::new(false),
        });

        let accept = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if state.quiesced.load(Ordering::Acquire) {
                        break;
                    }
                    let keep_going = match stream {
                        Ok(s) => handle_connection(s, &state),
                        Err(_) => true,
                    };
                    if !keep_going {
                        break;
                    }
                }
            })
        };

        Ok(Daemon {
            addr: bound,
            state,
            accept: Some(accept),
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Read-side shard views (for embedding the daemon in tests and
    /// benchmarks without going through the socket).
    pub fn shards(&self) -> &[ShardView] {
        &self.state.shards
    }

    /// Block until every shard has drained — only meaningful for
    /// bounded configs (`max_batches: Some`), where the generators
    /// retire on their own.
    pub fn wait_drained(&self) {
        for view in &self.state.shards {
            while !view.counters.drained.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
    }

    /// Programmatic quiesce: stop traffic, drain shards, stop the
    /// accept loop. Equivalent to the `quiesce` protocol request.
    pub fn quiesce(&self) {
        self.state.quiesce();
        // Poke the accept loop so it observes the quiesced flag even
        // if no client ever connects again.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
    }

    /// Join the accept thread (returns after a quiesce).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Handle one connection; `false` stops the accept loop (quiesce).
fn handle_connection(stream: TcpStream, state: &DaemonState) -> bool {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return true;
    }
    let mut stream = reader.into_inner();
    if let Some(path) = http_request_path(&line) {
        let response = http_response(&path);
        let _ = stream.write_all(response.as_bytes());
        return true;
    }
    let line = line.trim();
    if line.is_empty() {
        // Bare poke (or EOF): nothing to answer.
        return true;
    }
    let (body, keep_going) = match proto::parse(line) {
        Err(detail) => (proto::error_doc(&detail), true),
        Ok(Request::Snapshot) => (proto::snapshot_doc(&state.shards).to_json(), true),
        Ok(Request::Windows(k)) => (proto::windows_doc(&state.shards, k), true),
        Ok(Request::Episodes) => (proto::episodes_doc(&state.shards), true),
        Ok(Request::Loss) => (proto::loss_doc(&state.shards), true),
        Ok(Request::Table) => (proto::tables_doc(&state.shards), true),
        Ok(Request::Drained) => (proto::drained_doc(&state.shards), true),
        Ok(Request::Quiesce) => {
            state.quiesce();
            let snapshot = proto::snapshot_doc(&state.shards).to_json();
            let tables = proto::tables_doc(&state.shards);
            (
                format!("{{\"quiesced\":true,\"snapshot\":{snapshot},\"tables\":{tables}}}"),
                false,
            )
        }
    };
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.write_all(b"\n");
    keep_going
}

/// `Some(path)` when the first line is an HTTP request line.
fn http_request_path(line: &str) -> Option<String> {
    let rest = line.strip_prefix("GET ")?;
    let path = rest.split_whitespace().next().unwrap_or("/");
    Some(path.to_string())
}

/// Minimal HTTP/1.0-style response; `/metrics` serves the Prometheus
/// rendering of the global obs registry (pinned catalog + `serve.*`).
fn http_response(path: &str) -> String {
    if path == "/metrics" {
        let body = obs::snapshot_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        let body = "not found; scrape /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    }
}

/// One-shot protocol client: connect, send `request` as a single line,
/// return the response body. Used by tests, the CI smoke script (via
/// the bin's `query` subcommand), and scripted clients.
pub fn query(addr: &str, request: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    stream
        .write_all(request.trim().as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    Ok(response)
}
