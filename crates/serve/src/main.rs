//! `fluctrace-serve` binary: run the daemon, or query one.
//!
//! ```text
//! fluctrace-serve [--addr A] [--shards N] [--cores M] [--seed S]
//!                 [--window-items W] [--max-windows K]
//!                 [--mode exact|folded] [--batches B|unbounded]
//!                 [--capacity C] [--adaptive] [--drop]
//!                 [--funcs F] [--items-per-batch I]
//!                 [--samples-per-item P] [--spike-every E]
//! fluctrace-serve query <addr> <request words...>
//! ```
//!
//! The daemon prints `listening on <addr>` once the socket is bound
//! and then serves until a `quiesce` request. This binary is the one
//! sanctioned wall-clock site of the crate: it installs the obs wall
//! clock so utilization ticks measure real time; the library stays in
//! the deterministic tick domain for tests.

use fluctrace_core::online::AdaptiveConfig;
use fluctrace_core::CumulativeMode;
use fluctrace_serve::{query, Daemon, ServeConfig};

fn fail(msg: &str) -> ! {
    eprintln!("fluctrace-serve: {msg}");
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value.and_then(|v| v.parse::<u64>().ok()) {
        Some(v) => v,
        None => fail(&format!("{flag} needs an unsigned integer")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("query") {
        let addr = match args.next() {
            Some(a) => a,
            None => fail("query needs an address"),
        };
        let request = args.collect::<Vec<_>>().join(" ");
        if request.is_empty() {
            fail("query needs a request line");
        }
        match query(&addr, &request) {
            Ok(response) => print!("{response}"),
            Err(e) => fail(&e),
        }
        return;
    }

    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServeConfig::new(42);
    config.max_batches = None; // daemon default: unbounded until quiesce

    let mut pending = first;
    while let Some(flag) = pending.take().or_else(|| args.next()) {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => fail("--addr needs a value"),
            },
            "--shards" => config.shards = parse_u64("--shards", args.next()).max(1) as usize,
            "--cores" => config.cores = parse_u64("--cores", args.next()).max(1) as u32,
            "--seed" => config.seed = parse_u64("--seed", args.next()),
            "--window-items" => {
                config.window.window_items = parse_u64("--window-items", args.next()).max(1)
            }
            "--max-windows" => {
                config.window.max_windows = parse_u64("--max-windows", args.next()).max(1) as usize
            }
            "--mode" => match args.next().as_deref() {
                Some("exact") => config.window.cumulative = CumulativeMode::Exact,
                Some("folded") => config.window.cumulative = CumulativeMode::Folded,
                _ => fail("--mode is exact | folded"),
            },
            "--batches" => match args.next().as_deref() {
                Some("unbounded") => config.max_batches = None,
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => config.max_batches = Some(n),
                    Err(_) => fail("--batches is a count or 'unbounded'"),
                },
                None => fail("--batches needs a value"),
            },
            "--capacity" => {
                config.channel_capacity = parse_u64("--capacity", args.next()).max(1) as usize
            }
            "--adaptive" => config.adaptive = AdaptiveConfig::new(),
            "--drop" => config.blocking = false,
            "--funcs" => config.funcs = parse_u64("--funcs", args.next()).max(1) as usize,
            "--items-per-batch" => {
                config.items_per_batch = parse_u64("--items-per-batch", args.next()).max(1)
            }
            "--samples-per-item" => {
                config.samples_per_item = parse_u64("--samples-per-item", args.next()).max(1)
            }
            "--spike-every" => config.spike_every = parse_u64("--spike-every", args.next()),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    // The sanctioned wall-clock install: bins measure real time, the
    // library crates stay on the deterministic tick clock.
    fluctrace_obs::install_wall_clock();

    let daemon = match Daemon::start(config, &addr) {
        Ok(d) => d,
        Err(e) => fail(&e),
    };
    println!("listening on {}", daemon.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    daemon.join();
    println!("quiesced");
}
