//! `fluctrace-serve` — the always-on face of the tracer.
//!
//! Every other binary in this workspace runs one experiment and exits;
//! the paper's production premise — high-throughput software serving
//! continuous traffic — demands a tracer that *stays up*. This crate
//! runs N independent shard pipelines × M simulated cores under
//! continuous seeded traffic for unbounded wall-time, each shard
//! feeding a [`fluctrace_core::WindowedIntegrator`] so memory stays
//! bounded no matter how long the stream runs, and exposes the live
//! state over a local socket:
//!
//! * a **line-delimited request protocol** (`snapshot`, `windows <k>`,
//!   `episodes`, `loss`, `table`, `drained`, `quiesce`) returning
//!   canonical JSON through the obs exporter, and
//! * a **Prometheus `/metrics` endpoint** on the same listener serving
//!   the full pinned obs catalog plus the `serve.*` gauges.
//!
//! Overload composes the online tracer's two policies per shard:
//! blocking back-pressure (or counted drops) on the bounded channel,
//! and the adaptive effective-reset thinning policy driven by channel
//! occupancy. Graceful shutdown (`quiesce`) stops the generators,
//! drains every shard to the last batch, and finishes the stream — so
//! the final cumulative table is byte-identical to the equivalent
//! batch run on the same seed (lossless mode: blocking submission,
//! adaptive thinning off). See `SERVE.md` for the protocol grammar and
//! the carry-forward contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon;
pub mod proto;
pub mod shard;
pub mod traffic;

pub use daemon::{query, Daemon};
pub use shard::{ShardCounters, ShardHandle};
pub use traffic::{build_symtab, TrafficGen};

use fluctrace_core::online::AdaptiveConfig;
use fluctrace_core::WindowConfig;
use fluctrace_sim::Freq;

/// Configuration of one daemon instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Independent shard pipelines (each its own generator, channel,
    /// worker and windowed integrator).
    pub shards: usize,
    /// Simulated cores per shard generating interleaved item streams.
    pub cores: u32,
    /// Seed of the traffic; shard `i` forks stream `seed + i`.
    pub seed: u64,
    /// Windowed-integration parameters (window size, retention,
    /// divergence, cumulative mode). `window.freq` is the TSC
    /// frequency used everywhere.
    pub window: WindowConfig,
    /// Complete items each core contributes per generated batch.
    pub items_per_batch: u64,
    /// PEBS samples per item (before spikes and thinning).
    pub samples_per_item: u64,
    /// Functions in the synthetic symbol table.
    pub funcs: usize,
    /// Every `spike_every`-th item per core runs `spike_scale`× slower
    /// (drives anomaly episodes); 0 disables spikes.
    pub spike_every: u64,
    /// Slowdown factor of spiked items.
    pub spike_scale: u64,
    /// Batches each shard's generator produces before retiring; `None`
    /// runs unbounded until `quiesce`.
    pub max_batches: Option<u64>,
    /// Bounded channel capacity between generator and worker.
    pub channel_capacity: usize,
    /// Adaptive effective-reset policy (occupancy-driven thinning).
    /// Must be [`AdaptiveConfig::disabled`] for drain-equality runs.
    pub adaptive: AdaptiveConfig,
    /// `true`: block on a full channel (lossless back-pressure).
    /// `false`: drop whole batches with exact loss accounting.
    pub blocking: bool,
    /// Per-core capacity of each shard's `ring_empty` wait log.
    pub wait_capacity: usize,
}

impl ServeConfig {
    /// Defaults: 2 shards × 4 cores, 32-item windows retaining 8,
    /// blocking submission, thinning off, bounded 64-batch run (about
    /// 16 windows per shard) — the lossless configuration whose drained
    /// cumulative table equals the batch run.
    pub fn new(seed: u64) -> Self {
        let mut window = WindowConfig::new(Freq::ghz(3));
        window.window_items = 32;
        window.max_windows = 8;
        ServeConfig {
            shards: 2,
            cores: 4,
            seed,
            window,
            items_per_batch: 4,
            samples_per_item: 8,
            funcs: 12,
            spike_every: 97,
            spike_scale: 12,
            max_batches: Some(64),
            channel_capacity: 8,
            adaptive: AdaptiveConfig::disabled(),
            blocking: true,
            wait_capacity: 1 << 12,
        }
    }

    /// Items one shard will generate over a bounded run (`None` when
    /// unbounded).
    pub fn items_per_shard(&self) -> Option<u64> {
        self.max_batches
            .map(|b| b * self.items_per_batch * u64::from(self.cores))
    }
}
