//! The line-delimited request protocol and its JSON renderings.
//!
//! One request per connection: the client sends a single line, the
//! daemon answers with one JSON document (newline-terminated) and
//! closes. Grammar (see `SERVE.md`):
//!
//! ```text
//! request  = "snapshot" | "windows" SP count | "episodes" | "loss"
//!          | "table" | "drained" | "quiesce"
//! count    = 1*DIGIT
//! ```
//!
//! `snapshot` renders through the obs exporter ([`Snapshot::to_json`])
//! so its bytes are canonical: ordered keys, stable formatting — two
//! queries against a drained daemon compare byte-equal. An HTTP `GET`
//! on the same listener is answered with the Prometheus rendering of
//! the **global** obs registry (`/metrics`), full pinned catalog plus
//! the live `serve.*` series.

use crate::daemon::ShardView;
use fluctrace_core::{Episode, EstimateTable, FoldedTotals, LossStats};
use fluctrace_obs::Snapshot;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// A parsed protocol request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Full counter/gauge snapshot, canonical JSON.
    Snapshot,
    /// Metadata of the most recent `k` retained windows per shard.
    Windows(usize),
    /// Retained anomaly episodes per shard.
    Episodes,
    /// The composed 11-counter loss ledger, per shard and total.
    Loss,
    /// Cumulative tables (exact) or folded totals per shard.
    Table,
    /// Whether every shard has drained (bounded runs).
    Drained,
    /// Stop traffic, drain all shards, answer with the final state,
    /// and shut the daemon down.
    Quiesce,
}

/// Parse one request line.
pub fn parse(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let cmd = words.next().unwrap_or("");
    let arg = words.next();
    if words.next().is_some() {
        return Err(format!("trailing arguments after {cmd:?}"));
    }
    match (cmd, arg) {
        ("snapshot", None) => Ok(Request::Snapshot),
        ("windows", Some(k)) => k
            .parse::<usize>()
            .map(Request::Windows)
            .map_err(|_| format!("windows: bad count {k:?}")),
        ("windows", None) => Err("windows: missing count".to_string()),
        ("episodes", None) => Ok(Request::Episodes),
        ("loss", None) => Ok(Request::Loss),
        ("table", None) => Ok(Request::Table),
        ("drained", None) => Ok(Request::Drained),
        ("quiesce", None) => Ok(Request::Quiesce),
        _ => Err(format!(
            "unknown request {line:?} (expected snapshot | windows <k> | episodes | loss | table | drained | quiesce)"
        )),
    }
}

/// Render a protocol error as the error document.
pub fn error_doc(detail: &str) -> String {
    // Hand-escaped: the derive shim does not serialize borrowed
    // fields, and the detail string may quote client input.
    let mut escaped = String::with_capacity(detail.len());
    for c in detail.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    format!("{{\"error\":\"{escaped}\"}}")
}

fn shard_prefix(id: u32) -> String {
    format!("serve.shard{id:03}")
}

/// Build the local snapshot document: `serve.total.*` aggregates plus
/// per-shard `serve.shardNNN.*` entries, rendered through the obs
/// exporter. Local — not the global registry — so the bytes depend
/// only on this daemon's state and freeze once the shards drain.
pub fn snapshot_doc(shards: &[ShardView]) -> Snapshot {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();

    let mut total_loss = LossStats::default();
    let mut busy_total = 0u64;
    let mut idle_total = 0u64;
    let mut occ_max = 0u64;
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for view in shards {
        let c = &view.counters;
        let loss = c.fold_producer_loss(view.integrator.lock().loss());
        let prefix = shard_prefix(view.id);
        let fields: [(&'static str, u64); 8] = [
            (
                "batches_ingested",
                c.batches_ingested.load(Ordering::Acquire),
            ),
            (
                "batches_produced",
                c.batches_produced.load(Ordering::Acquire),
            ),
            ("items", c.items.load(Ordering::Acquire)),
            (
                "samples_attributed",
                c.samples_attributed.load(Ordering::Acquire),
            ),
            ("samples_seen", c.samples_seen.load(Ordering::Acquire)),
            ("episodes", c.episodes.load(Ordering::Acquire)),
            ("windows_closed", c.windows_closed.load(Ordering::Acquire)),
            ("windows_evicted", c.windows_evicted.load(Ordering::Acquire)),
        ];
        for (name, value) in fields {
            counters.insert(format!("{prefix}.{name}"), value);
            *totals.entry(name).or_insert(0) += value;
        }
        let loss_fields: [(&'static str, u64); 11] = [
            ("batches_dropped", loss.batches_dropped),
            ("boundary_samples", loss.boundary_samples),
            ("marks_mismatched", loss.marks_mismatched),
            ("marks_orphaned", loss.marks_orphaned),
            ("samples_discarded", loss.samples_discarded),
            ("samples_dropped", loss.samples_dropped),
            ("samples_evicted", loss.samples_evicted),
            ("samples_spin", loss.samples_spin),
            ("samples_thinned", loss.samples_thinned),
            ("starts_abandoned", loss.starts_abandoned),
            ("starts_truncated", loss.starts_truncated),
        ];
        for (name, value) in loss_fields {
            counters.insert(format!("{prefix}.loss.{name}"), value);
        }
        total_loss.batches_dropped += loss.batches_dropped;
        total_loss.boundary_samples += loss.boundary_samples;
        total_loss.marks_mismatched += loss.marks_mismatched;
        total_loss.marks_orphaned += loss.marks_orphaned;
        total_loss.samples_discarded += loss.samples_discarded;
        total_loss.samples_dropped += loss.samples_dropped;
        total_loss.samples_evicted += loss.samples_evicted;
        total_loss.samples_spin += loss.samples_spin;
        total_loss.samples_thinned += loss.samples_thinned;
        total_loss.starts_abandoned += loss.starts_abandoned;
        total_loss.starts_truncated += loss.starts_truncated;

        // Satellite: the `ring_empty` WaitLog folded into utilization.
        let (edges, ring_cycles, dropped) = {
            let log = view.wait.lock();
            let cycles = log
                .cycles_by_cause()
                .get("ring_empty")
                .copied()
                .unwrap_or(0);
            (log.len() as u64, cycles, log.dropped())
        };
        counters.insert(format!("{prefix}.wait.ring_empty_edges"), edges);
        counters.insert(format!("{prefix}.wait.ring_empty_cycles"), ring_cycles);
        counters.insert(format!("{prefix}.wait.dropped"), dropped);

        let busy = c.busy_ticks.load(Ordering::Acquire);
        let idle = c.idle_ticks.load(Ordering::Acquire);
        busy_total += busy;
        idle_total += idle;
        gauges.insert(
            format!("{prefix}.worker.utilization_milli"),
            c.utilization_milli(),
        );
        let occ = c.occupancy_milli.load(Ordering::Acquire);
        occ_max = occ_max.max(occ);
        gauges.insert(format!("{prefix}.queue.occupancy_milli"), occ);
    }

    for (name, value) in totals {
        counters.insert(format!("serve.total.{name}"), value);
    }
    let total_loss_fields: [(&'static str, u64); 11] = [
        ("batches_dropped", total_loss.batches_dropped),
        ("boundary_samples", total_loss.boundary_samples),
        ("marks_mismatched", total_loss.marks_mismatched),
        ("marks_orphaned", total_loss.marks_orphaned),
        ("samples_discarded", total_loss.samples_discarded),
        ("samples_dropped", total_loss.samples_dropped),
        ("samples_evicted", total_loss.samples_evicted),
        ("samples_spin", total_loss.samples_spin),
        ("samples_thinned", total_loss.samples_thinned),
        ("starts_abandoned", total_loss.starts_abandoned),
        ("starts_truncated", total_loss.starts_truncated),
    ];
    for (name, value) in total_loss_fields {
        counters.insert(format!("serve.total.loss.{name}"), value);
    }
    counters.insert("serve.total.shards".to_string(), shards.len() as u64);

    let total_ticks = busy_total.saturating_add(idle_total);
    gauges.insert(
        "serve.total.worker.utilization_milli".to_string(),
        busy_total
            .saturating_mul(1000)
            .checked_div(total_ticks)
            .unwrap_or(0),
    );
    gauges.insert("serve.total.queue.occupancy_milli".to_string(), occ_max);

    Snapshot {
        counters,
        gauges,
        histograms: BTreeMap::new(),
    }
}

#[derive(Serialize)]
struct WindowMeta {
    index: u64,
    items: u64,
    samples: u64,
    anomalies: u64,
}

#[derive(Serialize)]
struct ShardWindows {
    shard: u32,
    windows_closed: u64,
    windows_evicted: u64,
    retained: Vec<WindowMeta>,
}

#[derive(Serialize)]
struct WindowsDoc {
    shards: Vec<ShardWindows>,
}

/// Render the `windows <k>` document: the newest `k` retained window
/// summaries of every shard, metadata only (the raw per-window tables
/// stay inside the daemon; `table` serves the cumulative artifact).
pub fn windows_doc(shards: &[ShardView], k: usize) -> String {
    let doc = WindowsDoc {
        shards: shards
            .iter()
            .map(|view| {
                let wi = view.integrator.lock();
                let retained: Vec<WindowMeta> = wi
                    .windows()
                    .map(|w| WindowMeta {
                        index: w.index,
                        items: w.items,
                        samples: w.samples,
                        anomalies: w.anomalies,
                    })
                    .collect();
                let skip = retained.len().saturating_sub(k);
                ShardWindows {
                    shard: view.id,
                    windows_closed: wi.windows_closed(),
                    windows_evicted: wi.report().windows_evicted,
                    retained: retained.into_iter().skip(skip).collect(),
                }
            })
            .collect(),
    };
    render(&doc)
}

#[derive(Serialize)]
struct ShardEpisodes {
    shard: u32,
    total: u64,
    retained: Vec<Episode>,
}

#[derive(Serialize)]
struct EpisodesDoc {
    shards: Vec<ShardEpisodes>,
}

/// Render the `episodes` document.
pub fn episodes_doc(shards: &[ShardView]) -> String {
    let doc = EpisodesDoc {
        shards: shards
            .iter()
            .map(|view| {
                let wi = view.integrator.lock();
                ShardEpisodes {
                    shard: view.id,
                    total: wi.report().episodes,
                    retained: wi.episodes().copied().collect(),
                }
            })
            .collect(),
    };
    render(&doc)
}

#[derive(Serialize)]
struct ShardLoss {
    shard: u32,
    loss: LossStats,
    conserves_samples: bool,
}

#[derive(Serialize)]
struct LossDoc {
    total: LossStats,
    shards: Vec<ShardLoss>,
}

/// Render the `loss` document: the integrator ledger composed with the
/// producer-side shed counters, per shard and summed.
pub fn loss_doc(shards: &[ShardView]) -> String {
    let mut total = LossStats::default();
    let rows: Vec<ShardLoss> = shards
        .iter()
        .map(|view| {
            let (loss, conserves) = {
                let wi = view.integrator.lock();
                (
                    view.counters.fold_producer_loss(wi.loss()),
                    wi.report().conserves_samples(),
                )
            };
            total.batches_dropped += loss.batches_dropped;
            total.boundary_samples += loss.boundary_samples;
            total.marks_mismatched += loss.marks_mismatched;
            total.marks_orphaned += loss.marks_orphaned;
            total.samples_discarded += loss.samples_discarded;
            total.samples_dropped += loss.samples_dropped;
            total.samples_evicted += loss.samples_evicted;
            total.samples_spin += loss.samples_spin;
            total.samples_thinned += loss.samples_thinned;
            total.starts_abandoned += loss.starts_abandoned;
            total.starts_truncated += loss.starts_truncated;
            ShardLoss {
                shard: view.id,
                loss,
                conserves_samples: conserves,
            }
        })
        .collect();
    render(&LossDoc {
        total,
        shards: rows,
    })
}

#[derive(Serialize)]
struct ShardTable {
    shard: u32,
    mode: &'static str,
    table: Option<EstimateTable>,
    folded: FoldedTotals,
}

#[derive(Serialize)]
struct TablesDoc {
    shards: Vec<ShardTable>,
}

/// Render the `table` document: per shard, the exact cumulative
/// [`EstimateTable`] (the drain-equality surface — byte-identical to
/// the batch pipeline on the same stream) or, in folded mode, `null`
/// plus the per-function totals. `folded` is present in both modes so
/// the two can be cross-checked.
pub fn tables_doc(shards: &[ShardView]) -> String {
    let doc = TablesDoc {
        shards: shards
            .iter()
            .map(|view| {
                let wi = view.integrator.lock();
                let table = wi.cumulative_table();
                ShardTable {
                    shard: view.id,
                    mode: if table.is_some() { "exact" } else { "folded" },
                    table,
                    folded: wi.folded_totals(),
                }
            })
            .collect(),
    };
    render(&doc)
}

/// Render the `drained` document.
pub fn drained_doc(shards: &[ShardView]) -> String {
    let drained = shards
        .iter()
        .all(|v| v.counters.drained.load(Ordering::Acquire));
    format!("{{\"drained\":{drained}}}")
}

fn render<T: Serialize>(doc: &T) -> String {
    serde_json::to_string(doc).unwrap_or_else(|e| error_doc(&format!("render: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_grammar() {
        assert_eq!(parse("snapshot"), Ok(Request::Snapshot));
        assert_eq!(parse("  windows 5 "), Ok(Request::Windows(5)));
        assert_eq!(parse("episodes"), Ok(Request::Episodes));
        assert_eq!(parse("loss"), Ok(Request::Loss));
        assert_eq!(parse("table"), Ok(Request::Table));
        assert_eq!(parse("drained"), Ok(Request::Drained));
        assert_eq!(parse("quiesce"), Ok(Request::Quiesce));
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(parse("").is_err());
        assert!(parse("windows").is_err());
        assert!(parse("windows x").is_err());
        assert!(parse("snapshot extra").is_err());
        assert!(parse("nonsense").is_err());
    }
}
