//! The pinned metric catalog: every metric the workspace records, with
//! its kind, unit and help text.
//!
//! Pre-registering the catalog into the global registry (done by
//! [`crate::registry()`]) guarantees that every snapshot carries the
//! full name set — a stage that never ran exports zeros instead of
//! silently vanishing, and snapshot bytes cannot depend on which code
//! paths happened to execute first. `OBSERVABILITY.md` at the repo root
//! renders this catalog for humans; this module is the source of truth.

/// Metric kind, deciding both the handle type and the aggregation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count; shards aggregate by sum.
    Counter,
    /// High-watermark; shards aggregate by max.
    Gauge,
    /// Log-bucketed distribution; shards aggregate by exact merge.
    Histogram,
}

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Dotted metric name, `<layer>.<component>.<quantity>`.
    pub name: &'static str,
    /// Kind (counter / gauge / histogram).
    pub kind: MetricKind,
    /// Unit of the recorded value.
    pub unit: &'static str,
    /// One-line description (also the Prometheus HELP text).
    pub help: &'static str,
}

const fn counter(name: &'static str, unit: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Counter,
        unit,
        help,
    }
}

const fn gauge(name: &'static str, unit: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Gauge,
        unit,
        help,
    }
}

const fn histogram(name: &'static str, unit: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Histogram,
        unit,
        help,
    }
}

/// Every metric the workspace records. Only deterministic quantities
/// (event counts, sim-TSC cycle values, data sizes) are allowed here —
/// never clock-derived durations, which would break snapshot
/// byte-determinism. Wall-time lives in `BENCH_*.json`, not in metrics.
pub const CATALOG: &[MetricDef] = &[
    // --- core::integrate -------------------------------------------------
    counter(
        "core.integrate.runs",
        "runs",
        "Integration passes over a trace bundle",
    ),
    counter(
        "core.integrate.samples",
        "samples",
        "PEBS samples fed into interval attribution",
    ),
    counter(
        "core.integrate.intervals",
        "intervals",
        "Item intervals built from mark pairs",
    ),
    counter(
        "core.integrate.shards",
        "shards",
        "Per-core shards processed by the parallel integrator",
    ),
    counter(
        "core.integrate.errors",
        "errors",
        "Malformed mark sequences surfaced during interval building",
    ),
    histogram(
        "core.integrate.interval_cycles",
        "cycles",
        "Item interval length in simulated TSC cycles",
    ),
    histogram(
        "core.integrate.shard_samples",
        "samples",
        "Samples per per-core shard",
    ),
    // --- core::estimate --------------------------------------------------
    counter(
        "core.estimate.runs",
        "runs",
        "Estimator passes over an integrated trace",
    ),
    counter(
        "core.estimate.spans",
        "spans",
        "(item, func) spans flushed into the estimate table",
    ),
    counter(
        "core.estimate.samples_missing_span",
        "samples",
        "Samples skipped because no interval contained them",
    ),
    histogram(
        "core.estimate.span_cycles",
        "cycles",
        "Per-span elapsed estimate in simulated TSC cycles",
    ),
    // --- core::soa -------------------------------------------------------
    counter(
        "core.soa.runs",
        "runs",
        "SoA (columnar) integration passes over a trace bundle",
    ),
    counter(
        "core.soa.samples",
        "samples",
        "Samples ingested into SoA sample columns",
    ),
    counter(
        "core.soa.fallbacks",
        "runs",
        "SoA runs that fell back to the AoS path (reserved item id)",
    ),
    // --- core::parallel --------------------------------------------------
    counter(
        "core.parallel.runs",
        "runs",
        "run_indexed invocations (work-claiming fan-outs)",
    ),
    counter(
        "core.parallel.tasks",
        "tasks",
        "Tasks claimed across all run_indexed invocations",
    ),
    // --- core::online ----------------------------------------------------
    counter(
        "core.online.batches_submitted",
        "batches",
        "Batches accepted by submit/try_submit",
    ),
    counter(
        "core.online.batches_dropped",
        "batches",
        "Batches dropped by the lossy try_submit path",
    ),
    counter(
        "core.online.samples_submitted",
        "samples",
        "Samples contained in accepted batches",
    ),
    counter(
        "core.online.samples_seen",
        "samples",
        "Samples received by the online worker",
    ),
    counter(
        "core.online.samples_attributed",
        "samples",
        "Samples attributed to a completed item",
    ),
    counter(
        "core.online.samples_dropped",
        "samples",
        "Samples inside batches dropped by try_submit",
    ),
    counter(
        "core.online.samples_evicted",
        "samples",
        "Oldest-first pending evictions under the max_pending bound",
    ),
    counter(
        "core.online.samples_thinned",
        "samples",
        "Samples shed by adaptive effective-reset degradation",
    ),
    counter(
        "core.online.samples_discarded",
        "samples",
        "Pending samples discarded with an item that could not complete",
    ),
    counter(
        "core.online.samples_spin",
        "samples",
        "Samples that arrived outside any item (inter-item spin)",
    ),
    counter(
        "core.online.boundary_samples",
        "samples",
        "Samples attributed exactly at an interval bound",
    ),
    counter(
        "core.online.bytes_seen",
        "bytes",
        "Bytes of PEBS data received by the worker",
    ),
    counter(
        "core.online.bytes_dumped",
        "bytes",
        "Bytes retained for offline analysis (anomalous items only)",
    ),
    counter(
        "core.online.marks_orphaned",
        "marks",
        "End marks that arrived with no open item",
    ),
    counter(
        "core.online.marks_mismatched",
        "marks",
        "End marks whose item id did not match the open item",
    ),
    counter(
        "core.online.starts_abandoned",
        "marks",
        "Start marks that abandoned a still-open item",
    ),
    counter(
        "core.online.starts_truncated",
        "marks",
        "Start marks still open at stream end",
    ),
    counter(
        "core.online.items_processed",
        "items",
        "Items closed and estimated by the online worker",
    ),
    counter(
        "core.online.anomalies",
        "anomalies",
        "Items flagged as divergent from their baseline",
    ),
    counter(
        "core.online.flushes",
        "flushes",
        "End-of-stream finalizations (truncated starts + trailing spin)",
    ),
    counter(
        "core.online.degrade_episodes",
        "episodes",
        "Adaptive degradation episodes (high-water crossings)",
    ),
    gauge(
        "core.online.pending_peak",
        "samples",
        "Peak pending-sample backlog per core",
    ),
    gauge(
        "core.online.degrade_factor_peak_milli",
        "milli_factor",
        "Peak adaptive effective-reset factor in milli-units (1750 = 1.75x)",
    ),
    histogram(
        "core.online.batch_samples",
        "samples",
        "Samples per submitted batch",
    ),
    // --- rt::spsc ---------------------------------------------------------
    counter("rt.spsc.pushes", "items", "Successful SPSC ring pushes"),
    counter(
        "rt.spsc.push_stalls",
        "stalls",
        "Pushes rejected because the ring was full",
    ),
    counter("rt.spsc.pops", "items", "Successful SPSC ring pops"),
    counter(
        "rt.spsc.pop_stalls",
        "stalls",
        "Pops that found the ring empty",
    ),
    gauge(
        "rt.spsc.depth_peak",
        "items",
        "Peak SPSC ring occupancy observed at push",
    ),
    // --- rt::stage / rt::pipeline ----------------------------------------
    counter("rt.stage.runs", "runs", "Stage executions"),
    counter("rt.stage.items", "items", "Items emitted by stages"),
    counter(
        "rt.stage.batches",
        "batches",
        "Batches formed by batched stages",
    ),
    histogram(
        "rt.stage.batch_len",
        "items",
        "Items per batch in batched stages",
    ),
    counter("rt.pipeline.runs", "runs", "Pipeline executions"),
    counter(
        "rt.pipeline.stages",
        "stages",
        "Stages executed across all pipeline runs",
    ),
    // --- rt::wait ---------------------------------------------------------
    counter(
        "rt.wait.edges",
        "edges",
        "Typed wait edges offered to wait logs (DepGraph diagnosis)",
    ),
    counter(
        "rt.wait.dropped",
        "edges",
        "Wait edges dropped by a full bounded per-core log",
    ),
    histogram(
        "rt.wait.cycles",
        "cycles",
        "Length of each offered wait edge (recording site's clock domain)",
    ),
    // --- sim::fault -------------------------------------------------------
    counter(
        "sim.fault.schedules",
        "schedules",
        "Fault schedules materialized",
    ),
    counter(
        "sim.fault.drop_open",
        "faults",
        "DropOpen faults scheduled (lost Start marks)",
    ),
    counter(
        "sim.fault.corrupt_close",
        "faults",
        "CorruptClose faults scheduled (corrupted End marks)",
    ),
    counter(
        "sim.fault.bursts",
        "faults",
        "Burst faults scheduled (sample floods)",
    ),
    histogram(
        "sim.fault.burst_len",
        "samples",
        "Extra samples per scheduled burst",
    ),
    counter(
        "sim.fault.dep_schedules",
        "schedules",
        "Depgraph ground-truth scenarios materialized",
    ),
    // --- bench ------------------------------------------------------------
    counter("bench.sweep.runs", "runs", "run_sweep invocations"),
    counter(
        "bench.sweep.configs",
        "configs",
        "Sweep configurations executed",
    ),
    // Wall-derived throughput gauges, recorded ONLY by the perf-hunt
    // binary (which writes BENCH_hotpath.json, never figure artifacts).
    // Figure binaries leave them at zero, so deterministic snapshots
    // stay byte-identical — the one sanctioned carve-out from the
    // "no clock-derived values" rule above. See OBSERVABILITY.md.
    gauge(
        "bench.hotpath.integrate_samples_per_sec",
        "samples_per_s",
        "perf-hunt fast-path integrate throughput (wall-derived)",
    ),
    gauge(
        "bench.hotpath.estimate_samples_per_sec",
        "samples_per_s",
        "perf-hunt fast-path estimate throughput (wall-derived)",
    ),
    gauge(
        "bench.store.write_mb_per_s",
        "mb_per_s",
        "store-bench columnar write throughput (wall-derived)",
    ),
    gauge(
        "bench.store.read_mb_per_s",
        "mb_per_s",
        "store-bench columnar read throughput (wall-derived)",
    ),
    gauge(
        "bench.serve.items_per_sec",
        "items_per_s",
        "serve-bench sustained daemon throughput (wall-derived)",
    ),
    // --- store ------------------------------------------------------------
    counter(
        "store.writer.segments",
        "segments",
        "Store segments finished (footer + tail written)",
    ),
    counter(
        "store.writer.samples",
        "samples",
        "Logical sample rows appended to trace stores",
    ),
    counter(
        "store.writer.marks",
        "marks",
        "Mark rows appended to trace stores",
    ),
    counter(
        "store.writer.elided",
        "samples",
        "Sample rows elided by redundancy suppression (ledgered)",
    ),
    counter(
        "store.writer.chunks",
        "chunks",
        "Column chunks written across both streams",
    ),
    counter(
        "store.writer.bytes",
        "bytes",
        "Store bytes written, magic/footer/tail included",
    ),
    counter(
        "store.reader.segments",
        "segments",
        "Store segments opened by full reads",
    ),
    counter(
        "store.reader.samples",
        "samples",
        "Sample rows materialized by store reads",
    ),
    counter(
        "store.reader.marks",
        "marks",
        "Mark rows materialized by store reads",
    ),
    counter(
        "store.reader.bytes",
        "bytes",
        "Chunk bytes fetched by store reads",
    ),
    // --- serve ------------------------------------------------------------
    counter(
        "serve.traffic.batches",
        "batches",
        "Traffic batches submitted to shard pipelines",
    ),
    counter(
        "serve.traffic.items",
        "items",
        "Work items completed by shard integrators",
    ),
    counter(
        "serve.windows.closed",
        "windows",
        "Integration windows closed across all shards",
    ),
    counter(
        "serve.windows.evicted",
        "windows",
        "Closed windows evicted by the retention ring",
    ),
    counter(
        "serve.windows.evicted_bytes",
        "bytes",
        "Approximate bytes reclaimed by window eviction",
    ),
    counter(
        "serve.anomaly.episodes",
        "episodes",
        "Divergence episodes recorded by shard integrators",
    ),
    // Utilization/occupancy gauges derive from consumer busy/idle tick
    // counts; under the daemon binary ticks come from the wall clock,
    // so like the bench throughput gauges above these are exempt from
    // the "no clock-derived values" rule. Library tests leave the tick
    // clock deterministic, keeping snapshots stable.
    gauge(
        "serve.queue.occupancy_milli",
        "milli",
        "Producer-observed shard channel occupancy (0-1000)",
    ),
    gauge(
        "serve.worker.utilization_milli",
        "milli",
        "Consumer busy-tick share incl. ring_empty idle (0-1000)",
    ),
];

/// Look up a catalog entry by name.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    CATALOG.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_sorted_friendly_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for def in CATALOG {
            assert!(seen.insert(def.name), "duplicate metric {}", def.name);
            assert!(
                def.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "bad metric name {}",
                def.name
            );
            assert!(
                def.name.split('.').count() >= 3,
                "name {} lacks layer.component.quantity structure",
                def.name
            );
            assert!(!def.help.is_empty());
            assert!(!def.unit.is_empty());
        }
    }

    #[test]
    fn lookup_finds_every_entry() {
        for def in CATALOG {
            assert!(lookup(def.name).is_some());
        }
        assert!(lookup("no.such.metric").is_none());
    }
}
