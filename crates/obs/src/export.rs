//! Snapshot exporters: canonical JSON and Prometheus text exposition.
//!
//! Both formats are hand-rendered (this crate is std-only) and
//! deliberately rigid: 2-space-indented JSON with `BTreeMap`-ordered
//! keys and a trailing newline, so two snapshots of equal content are
//! byte-identical — CI diffs them with `cmp` and the conformance crate
//! pins a golden copy of the fig4 export.

use crate::catalog;
use crate::hist::bucket_upper_bound;
use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_map<V>(
    out: &mut String,
    name: &str,
    entries: &std::collections::BTreeMap<String, V>,
    mut write_value: impl FnMut(&mut String, &V),
    trailing_comma: bool,
) {
    let _ = write!(out, "  \"{name}\": ");
    if entries.is_empty() {
        out.push_str("{}");
    } else {
        out.push_str("{\n");
        let last = entries.len().saturating_sub(1);
        for (i, (k, v)) in entries.iter().enumerate() {
            let _ = write!(out, "    \"{}\": ", escape_json(k));
            write_value(out, v);
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push_str("  }");
    }
    out.push_str(if trailing_comma { ",\n" } else { "\n" });
}

/// Canonical JSON rendering of a snapshot: ordered keys, 2-space
/// indent, non-empty histograms as `{count, sum, buckets: [[idx, n]…]}`
/// with only non-zero buckets listed, trailing newline. Byte-stable for
/// equal contents.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    write_map(
        &mut out,
        "counters",
        &snap.counters,
        |o, v| {
            let _ = write!(o, "{v}");
        },
        true,
    );
    write_map(
        &mut out,
        "gauges",
        &snap.gauges,
        |o, v| {
            let _ = write!(o, "{v}");
        },
        true,
    );
    write_map(
        &mut out,
        "histograms",
        &snap.histograms,
        |o, h| {
            let _ = write!(
                o,
                "{{ \"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count(),
                h.sum
            );
            let mut first = true;
            for (i, c) in h.nonzero_buckets() {
                if !first {
                    o.push_str(", ");
                }
                first = false;
                let _ = write!(o, "[{i}, {c}]");
            }
            o.push_str("] }");
        },
        false,
    );
    out.push_str("}\n");
    out
}

/// `metric.name` → `fluctrace_metric_name` (Prometheus identifier).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("fluctrace_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_header(out: &mut String, name: &str, kind: &str) {
    let pname = prom_name(name);
    if let Some(def) = catalog::lookup(name) {
        let _ = writeln!(out, "# HELP {pname} {} ({}).", def.help, def.unit);
    }
    let _ = writeln!(out, "# TYPE {pname} {kind}");
}

/// Prometheus text exposition rendering of a snapshot. Counters and
/// gauges are plain samples; histograms expose cumulative `_bucket{le=}`
/// series (bucket upper bounds from the log-bucket geometry) plus
/// `_sum` and `_count`.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        prom_header(&mut out, name, "counter");
        let _ = writeln!(out, "{} {v}", prom_name(name));
    }
    for (name, v) in &snap.gauges {
        prom_header(&mut out, name, "gauge");
        let _ = writeln!(out, "{} {v}", prom_name(name));
    }
    for (name, h) in &snap.histograms {
        prom_header(&mut out, name, "histogram");
        let pname = prom_name(name);
        let mut cumulative = 0u64;
        for (i, c) in h.nonzero_buckets() {
            cumulative = cumulative.wrapping_add(c);
            let _ = writeln!(
                out,
                "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper_bound(i)
            );
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{pname}_sum {}", h.sum);
        let _ = writeln!(out, "{pname}_count {cumulative}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::with_shards(2);
        r.counter("t.ops").add(42);
        r.gauge("t.depth_peak").record(7);
        let h = r.histogram("t.latency");
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(1000);
        r.snapshot()
    }

    #[test]
    fn json_is_byte_stable_and_canonical() {
        let snap = sample_snapshot();
        let a = snap.to_json();
        let b = snap.to_json();
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\n  \"counters\": {\n    \"t.ops\": 42\n  },\n  \"gauges\": {\n    \
             \"t.depth_peak\": 7\n  },\n  \"histograms\": {\n    \"t.latency\": \
             { \"count\": 4, \"sum\": 1006, \"buckets\": [[0, 1], [2, 2], [10, 1]] }\n  }\n}\n"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty_maps() {
        let snap = Snapshot::default();
        assert_eq!(
            snap.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
    }

    #[test]
    fn prometheus_exposition_has_types_buckets_and_totals() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE fluctrace_t_ops counter"));
        assert!(text.contains("fluctrace_t_ops 42"));
        assert!(text.contains("# TYPE fluctrace_t_depth_peak gauge"));
        assert!(text.contains("# TYPE fluctrace_t_latency histogram"));
        // Cumulative buckets: le=0 → 1, le=3 → 3, le=1023 → 4.
        assert!(text.contains("fluctrace_t_latency_bucket{le=\"0\"} 1"));
        assert!(text.contains("fluctrace_t_latency_bucket{le=\"3\"} 3"));
        assert!(text.contains("fluctrace_t_latency_bucket{le=\"1023\"} 4"));
        assert!(text.contains("fluctrace_t_latency_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("fluctrace_t_latency_sum 1006"));
        assert!(text.contains("fluctrace_t_latency_count 4"));
    }

    #[test]
    fn catalog_names_get_help_lines() {
        let r = Registry::with_shards(1);
        r.counter("core.integrate.samples").add(1);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# HELP fluctrace_core_integrate_samples"));
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
