//! Log-bucketed (HDR-style) histogram arithmetic: bucket mapping, exact
//! merge, and the plain-data snapshot form the exporters consume.
//!
//! Values are bucketed by bit width: value `v` lands in bucket
//! `64 - v.leading_zeros()` (bucket 0 holds only 0, bucket `i ≥ 1` holds
//! `[2^(i-1), 2^i)`), giving 65 fixed buckets covering all of `u64` with
//! ≤ 2x relative error — the classic HDR trade: O(1) record, O(1) space,
//! exact *counts* per bucket. Because buckets are just counters, merging
//! two histograms is element-wise addition: associative, commutative and
//! lossless with respect to the bucketed representation (property-tested
//! against a naive reference in this module's tests).

/// Number of buckets: one for zero plus one per bit width of `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise its bit width.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Largest value that lands in bucket `i` (inclusive upper bound).
/// Out-of-range indices saturate to `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i).wrapping_sub(1)
    }
}

/// Plain-data histogram state: per-bucket counts plus the exact sum of
/// recorded values. This is what [`crate::Registry::snapshot`] produces
/// after aggregating shards, and what the exporters serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Exact sum of every recorded value (wrapping).
    pub sum: u64,
    buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (bucket increment + sum), for building snapshots
    /// outside the atomic registry (tests, reference models).
    pub fn record(&mut self, v: u64) {
        if let Some(b) = self.buckets.get_mut(bucket_index(v)) {
            *b = b.wrapping_add(1);
        }
        self.sum = self.sum.wrapping_add(v);
    }

    /// Set the count of bucket `i` directly (registry aggregation).
    pub fn set_bucket(&mut self, i: usize, count: u64) {
        if let Some(b) = self.buckets.get_mut(i) {
            *b = count;
        }
    }

    /// Count in bucket `i` (0 for out-of-range indices).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Exact, lossless merge: element-wise bucket addition plus sum
    /// addition. Associative and commutative, so shards (or machines)
    /// can be combined in any order or grouping.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Bucket-wise difference `self − base`, for delta snapshots taken
    /// against a cumulative registry. Saturates at zero so a snapshot
    /// pair taken out of order degrades to empty rather than garbage.
    pub fn diff(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        for (i, (a, b)) in self.buckets.iter().zip(base.buckets.iter()).enumerate() {
            out.set_bucket(i, a.saturating_sub(*b));
        }
        out.sum = self.sum.wrapping_sub(base.sum);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn from_values(xs: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::new();
        for &x in xs {
            h.record(x);
        }
        h
    }

    /// Naive reference: count occurrences per bucket with a plain loop.
    fn naive_buckets(xs: &[u64]) -> Vec<u64> {
        let mut counts = vec![0u64; BUCKETS];
        for &x in xs {
            if let Some(c) = counts.get_mut(bucket_index(x)) {
                *c += 1;
            }
        }
        counts
    }

    #[test]
    fn bucket_mapping_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn count_and_sum_are_exact() {
        let h = from_values(&[0, 1, 1, 7, 1024]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum, 1033);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(11), 1);
    }

    proptest! {
        #[test]
        fn merge_is_lossless_vs_naive_reference(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            ys in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let mut merged = from_values(&xs);
            merged.merge(&from_values(&ys));
            let mut all = xs.clone();
            all.extend_from_slice(&ys);
            // Bucket-for-bucket identical to bucketing the concatenated
            // stream naively: nothing is lost or smeared by merging.
            let reference = naive_buckets(&all);
            for (i, &want) in reference.iter().enumerate() {
                prop_assert_eq!(merged.bucket(i), want, "bucket {}", i);
            }
            prop_assert_eq!(merged, from_values(&all));
        }

        #[test]
        fn merge_is_commutative(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            ys in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let (a, b) = (from_values(&xs), from_values(&ys));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(
            xs in proptest::collection::vec(any::<u64>(), 0..100),
            ys in proptest::collection::vec(any::<u64>(), 0..100),
            zs in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let (a, b, c) = (from_values(&xs), from_values(&ys), from_values(&zs));
            let mut left = a.clone(); // (a ⊕ b) ⊕ c
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone(); // a ⊕ (b ⊕ c)
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn diff_inverts_merge(
            xs in proptest::collection::vec(any::<u64>(), 0..100),
            ys in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let base = from_values(&xs);
            let mut total = base.clone();
            total.merge(&from_values(&ys));
            prop_assert_eq!(total.diff(&base), from_values(&ys));
        }
    }
}
