//! The lock-free, per-core-sharded metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! `Arc`'d atomic cell arrays; recording picks a shard from a
//! thread-local hint (threads land on distinct cache-line-padded cells,
//! so hot paths never contend) and performs one relaxed atomic add (two
//! for histograms: bucket + sum). Registration takes a mutex, but only
//! ever on the first touch of a name — the `counter!`/`gauge!`/
//! `histogram!` macros cache handles behind `OnceLock`s.
//!
//! [`Registry::snapshot`] folds shards into totals under `BTreeMap`
//! name ordering, so the exported bytes depend only on *what* was
//! recorded, never on which thread recorded it, the shard count, or
//! `FLUCTRACE_THREADS` (property-tested in this module and driven
//! end-to-end by the fig4 golden obs snapshot in the conformance crate).

use crate::catalog::{self, MetricKind};
use crate::export;
use crate::hist::{bucket_index, HistogramSnapshot, BUCKETS};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Pad each shard's cell to its own cache line so two threads recording
/// the same metric never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Pad(AtomicU64);

fn cells(n: usize) -> Arc<[Pad]> {
    (0..n).map(|_| Pad::default()).collect()
}

// lint:allow(atomic-ordering): round-robin ticket — the value only seeds a thread-local shard hint; no data is published through it
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_HINT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard hint: assigned round-robin on first use, then
/// cached. Masked by each handle against its own (power-of-two) shard
/// count, so one hint serves registries of any width.
fn shard_hint() -> usize {
    SHARD_HINT.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

static RECORDING: AtomicBool = AtomicBool::new(true);

/// Globally enable/disable hot-path recording. Used by the self-overhead
/// harness (`obs_overhead` bin) to time instrumented vs uninstrumented
/// runs of the same workload; the disabled path costs one acquire load
/// and a branch (free on x86, same cost as relaxed).
///
/// Release/Acquire pairing: the flag gates whether other threads touch
/// the metric cells at all, so the flip must be ordered against the
/// cell writes around it — a plain relaxed gate could let a disabled
/// thread's counter add drift past the harness's timing boundary.
pub fn set_recording(enabled: bool) {
    RECORDING.store(enabled, Ordering::Release);
}

/// True when hot-path recording is enabled (the default).
pub fn recording() -> bool {
    RECORDING.load(Ordering::Acquire)
}

/// Monotonic counter handle: `add` is a single relaxed atomic op.
#[derive(Debug, Clone)]
pub struct Counter {
    cells: Arc<[Pad]>,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if !recording() {
            return;
        }
        let mask = self.cells.len().wrapping_sub(1);
        if let Some(c) = self.cells.get(shard_hint() & mask) {
            // lint:allow(atomic-ordering): statistical counter cell — relaxed add/load can only tear a snapshot total, never control flow
            c.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across shards (test/inspection helper; exporters go
    /// through [`Registry::snapshot`]).
    pub fn total(&self) -> u64 {
        self.cells
            .iter()
            .fold(0u64, |a, c| a.wrapping_add(c.0.load(Ordering::Relaxed)))
    }
}

/// High-watermark gauge handle: `record` keeps the maximum value seen.
/// (Watermarks — peak queue depth, peak degradation factor — are the
/// gauge flavor whose aggregate is meaningful under sharding.)
#[derive(Debug, Clone)]
pub struct Gauge {
    cells: Arc<[Pad]>,
}

impl Gauge {
    /// Raise the watermark to `v` if `v` is higher.
    pub fn record(&self, v: u64) {
        if !recording() {
            return;
        }
        let mask = self.cells.len().wrapping_sub(1);
        if let Some(c) = self.cells.get(shard_hint() & mask) {
            c.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current watermark across shards.
    pub fn peak(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

/// Log-bucketed histogram handle: `record` is two relaxed atomic ops
/// (bucket count + exact sum). Bucket geometry lives in [`crate::hist`].
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `shards × BUCKETS` bucket counters, shard-major.
    buckets: Arc<[AtomicU64]>,
    /// Per-shard exact sums.
    sums: Arc<[Pad]>,
}

impl Histogram {
    /// Record one value.
    pub fn record(&self, v: u64) {
        if !recording() {
            return;
        }
        let mask = self.sums.len().wrapping_sub(1);
        let shard = shard_hint() & mask;
        if let Some(b) = self.buckets.get(shard * BUCKETS + bucket_index(v)) {
            // lint:allow(atomic-ordering): statistical histogram bucket — relaxed add/load can only tear a snapshot, never control flow
            b.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(s) = self.sums.get(shard) {
            // lint:allow(atomic-ordering): statistical histogram sum — relaxed add/load can only tear a snapshot, never control flow
            s.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Aggregate the shards into a plain-data snapshot.
    pub fn fold(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let count = b.load(Ordering::Relaxed);
            if count != 0 {
                let bucket = i % BUCKETS;
                out.set_bucket(bucket, out.bucket(bucket).wrapping_add(count));
            }
        }
        out.sum = self
            .sums
            .iter()
            .fold(0u64, |a, s| a.wrapping_add(s.0.load(Ordering::Relaxed)));
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A sharded metrics registry. Most code uses the process-wide
/// [`registry()`]; tests build private ones with [`Registry::with_shards`]
/// to prove shard-count invariance.
#[derive(Debug)]
pub struct Registry {
    shards: usize,
    inner: Mutex<Inner>,
}

impl Registry {
    /// A registry with `shards` rounded up to a power of two (min 1).
    pub fn with_shards(shards: usize) -> Self {
        Registry {
            shards: shards.max(1).next_power_of_two(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Shard count (always a power of two).
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.lock()
            .counters
            .entry(name)
            .or_insert_with(|| Counter {
                cells: cells(self.shards),
            })
            .clone()
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.lock()
            .gauges
            .entry(name)
            .or_insert_with(|| Gauge {
                cells: cells(self.shards),
            })
            .clone()
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.lock()
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram {
                buckets: (0..self.shards * BUCKETS)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                sums: cells(self.shards),
            })
            .clone()
    }

    /// Pre-register every metric in the pinned catalog so snapshots
    /// carry the full name set even for stages that never ran.
    pub fn register_catalog(&self) {
        for def in catalog::CATALOG {
            match def.kind {
                MetricKind::Counter => {
                    self.counter(def.name);
                }
                MetricKind::Gauge => {
                    self.gauge(def.name);
                }
                MetricKind::Histogram => {
                    self.histogram(def.name);
                }
            }
        }
    }

    /// Deterministic aggregate of everything recorded so far: shards are
    /// summed (max'd for gauges) into per-name totals under `BTreeMap`
    /// ordering. The result depends only on the recorded multiset of
    /// events, not on threads or shard count.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(&k, v)| (k.to_string(), v.total()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&k, v)| (k.to_string(), v.peak()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.fold()))
                .collect(),
        }
    }
}

/// Plain-data aggregate of a registry at one instant. Maps are ordered,
/// so [`Snapshot::to_json`] / [`Snapshot::to_prometheus`] are
/// byte-stable for equal contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge watermarks by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Canonical JSON (2-space pretty, ordered keys, trailing newline).
    pub fn to_json(&self) -> String {
        export::to_json(self)
    }

    /// Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        export::to_prometheus(self)
    }

    /// Delta `self − base` for every metric, for scoping a measurement
    /// window against the cumulative process-wide registry. Counter and
    /// histogram values subtract (saturating); gauges keep `self`'s
    /// watermark (a high-water mark has no meaningful difference).
    pub fn diff(&self, base: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    let b = base.counters.get(k).copied().unwrap_or(0);
                    (k.clone(), v.saturating_sub(b))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let out = match base.histograms.get(k) {
                        Some(b) => v.diff(b),
                        None => v.clone(),
                    };
                    (k.clone(), out)
                })
                .collect(),
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Global shard count: fixed (not tied to `FLUCTRACE_THREADS`) so the
/// layout of the registry can never vary with the thread configuration.
const GLOBAL_SHARDS: usize = 8;

/// The process-wide registry, with the full catalog pre-registered.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let r = Registry::with_shards(GLOBAL_SHARDS);
        r.register_catalog();
        r
    })
}

/// Snapshot the process-wide registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Canonical JSON snapshot of the process-wide registry.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

/// Prometheus text exposition of the process-wide registry.
pub fn snapshot_prometheus() -> String {
    snapshot().to_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_sum_across_threads_and_shards() {
        let r = Registry::with_shards(4);
        let c = r.counter("t.counter");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(r.counter("t.counter").total(), 4000);
    }

    #[test]
    fn gauges_keep_the_watermark() {
        let r = Registry::with_shards(2);
        let g = r.gauge("t.peak");
        g.record(3);
        g.record(10);
        g.record(7);
        assert_eq!(g.peak(), 10);
    }

    #[test]
    fn snapshot_bytes_are_invariant_across_shard_counts_and_threads() {
        // The same multiset of events recorded into registries of
        // different widths, by different numbers of threads, must yield
        // byte-identical snapshots.
        let mut jsons = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 4] {
                let r = Arc::new(Registry::with_shards(shards));
                let per = 120 / threads;
                let workers: Vec<_> = (0..threads)
                    .map(|t| {
                        let r = Arc::clone(&r);
                        thread::spawn(move || {
                            let c = r.counter("t.ops");
                            let g = r.gauge("t.depth_peak");
                            let h = r.histogram("t.latency");
                            // Each worker records its slice of one fixed
                            // global multiset, so only the *sharding*
                            // varies across configurations.
                            for i in (t * per)..((t + 1) * per) {
                                c.add(2);
                                g.record((i % 7) as u64);
                                h.record((i as u64) * 17 % 1000);
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().expect("worker");
                }
                jsons.push(r.snapshot().to_json());
            }
        }
        let first = jsons.first().cloned().unwrap_or_default();
        for (i, j) in jsons.iter().enumerate() {
            assert_eq!(*j, first, "variant {i} diverged");
        }
    }

    #[test]
    fn snapshot_diff_scopes_a_window() {
        let r = Registry::with_shards(1);
        let c = r.counter("t.n");
        let h = r.histogram("t.h");
        c.add(5);
        h.record(100);
        let base = r.snapshot();
        c.add(7);
        h.record(3);
        let delta = r.snapshot().diff(&base);
        assert_eq!(delta.counters.get("t.n"), Some(&7));
        let hs = delta.histograms.get("t.h").cloned().unwrap_or_default();
        assert_eq!(hs.count(), 1);
        assert_eq!(hs.sum, 3);
    }

    // The `set_recording` gate is process-global, so toggling it here
    // would race with the exact-count assertions of sibling tests; it is
    // covered in its own test binary (`tests/recording_gate.rs`).

    #[test]
    fn global_registry_carries_the_catalog() {
        let snap = snapshot();
        for def in crate::catalog::CATALOG {
            let present = match def.kind {
                MetricKind::Counter => snap.counters.contains_key(def.name),
                MetricKind::Gauge => snap.gauges.contains_key(def.name),
                MetricKind::Histogram => snap.histograms.contains_key(def.name),
            };
            assert!(present, "catalog metric {} missing from snapshot", def.name);
        }
    }
}
