//! Tick-based timekeeping behind a trait: deterministic logical ticks by
//! default, wall-clock only where a bench binary explicitly installs it.
//!
//! Everything downstream (pipeline phase timing, span journaling) works
//! in opaque *ticks* and differences them TSC-style with `wrapping_sub`.
//! Under the default [`TickClock`] a tick is a logical event count, so
//! library code and tests never observe host time; under [`WallClock`]
//! (bench binaries only) a tick is a nanosecond since process start, so
//! throughput numbers on stdout and in `BENCH_*.json` are real.
//!
//! Snapshots stay byte-deterministic either way because the metrics
//! registry never records clock-derived values — ticks feed only the
//! flight recorder and `PipelineStats` wall-time fields, neither of
//! which lands in figure artifacts or obs snapshots.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant; // lint:allow(clock-hygiene): the Clock impl is the one sanctioned wall-clock site

/// A monotonic tick source. Tick *values* are opaque; only differences
/// (taken with `wrapping_sub`) are meaningful, and the unit depends on
/// the implementation (logical events, nanoseconds, sim picoseconds).
pub trait Clock: Send + Sync {
    /// Current tick. Monotonically non-decreasing per clock.
    fn now_ticks(&self) -> u64;
}

/// Deterministic logical clock: every read returns the next integer.
/// This is the default process-wide clock, so library paths and tests
/// never depend on host time.
#[derive(Debug, Default)]
pub struct TickClock {
    // lint:allow(atomic-ordering): logical tick ticket — fetch_add hands out unique values; no data is published through it
    ticks: AtomicU64,
}

impl TickClock {
    /// A fresh logical clock starting at tick 0.
    pub const fn new() -> Self {
        TickClock {
            ticks: AtomicU64::new(0),
        }
    }
}

impl Clock for TickClock {
    fn now_ticks(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }
}

/// Externally-driven clock for tests: reads return the value last set,
/// so span durations in a test are exact script-controlled constants.
#[derive(Debug, Default)]
pub struct ManualClock {
    ticks: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at tick 0.
    pub const fn new() -> Self {
        ManualClock {
            ticks: AtomicU64::new(0),
        }
    }

    /// Set the current tick.
    pub fn set(&self, ticks: u64) {
        self.ticks.store(ticks, Ordering::Relaxed);
    }

    /// Advance the current tick by `delta`.
    pub fn advance(&self, delta: u64) {
        self.ticks.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// Wall clock: one tick = one nanosecond since the clock was created.
/// The only implementation allowed to touch host time; bench binaries
/// install it process-wide via [`install_wall_clock`], everything else
/// must stay on ticks (enforced by the `clock-hygiene` lint rule).
#[derive(Debug)]
pub struct WallClock {
    start: Instant, // lint:allow(clock-hygiene): the Clock impl is the one sanctioned wall-clock site
}

impl WallClock {
    /// A wall clock anchored at the moment of creation.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(), // lint:allow(clock-hygiene): the Clock impl is the one sanctioned wall-clock site
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ticks(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

const MODE_TICK: u8 = 0;
const MODE_WALL: u8 = 1;

static MODE: AtomicU8 = AtomicU8::new(MODE_TICK);
static TICK: TickClock = TickClock::new();
static WALL: OnceLock<WallClock> = OnceLock::new();

/// Switch the process-wide clock to wall time (nanosecond ticks).
///
/// Bench binaries call this first thing in `main` so their stdout
/// throughput numbers and `BENCH_*.json` timings are real; library code
/// and tests never call it and stay on the deterministic [`TickClock`].
/// Idempotent; there is deliberately no way back — a process either
/// reports wall time or it does not.
pub fn install_wall_clock() {
    WALL.get_or_init(WallClock::new);
    MODE.store(MODE_WALL, Ordering::Release);
}

/// True once [`install_wall_clock`] has been called.
pub fn wall_clock_installed() -> bool {
    MODE.load(Ordering::Acquire) == MODE_WALL
}

/// Current tick of the process-wide clock. Difference two reads with
/// `wrapping_sub`; never interpret a single value.
pub fn now_ticks() -> u64 {
    match MODE.load(Ordering::Acquire) {
        MODE_WALL => match WALL.get() {
            Some(w) => w.now_ticks(),
            None => TICK.now_ticks(),
        },
        _ => TICK.now_ticks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_is_strictly_monotonic() {
        let c = TickClock::new();
        let a = c.now_ticks();
        let b = c.now_ticks();
        let d = c.now_ticks();
        assert_eq!(b.wrapping_sub(a), 1);
        assert_eq!(d.wrapping_sub(b), 1);
    }

    #[test]
    fn manual_clock_is_script_controlled() {
        let c = ManualClock::new();
        assert_eq!(c.now_ticks(), 0);
        c.set(100);
        assert_eq!(c.now_ticks(), 100);
        c.advance(17);
        assert_eq!(c.now_ticks(), 117);
    }

    #[test]
    fn global_clock_defaults_to_ticks() {
        // The process-wide default must be the deterministic tick clock;
        // installing the wall clock is a bin-only action that tests never
        // perform, so consecutive reads step by exactly one.
        if wall_clock_installed() {
            return; // another test in this process installed it
        }
        let a = now_ticks();
        let b = now_ticks();
        assert_eq!(b.wrapping_sub(a), 1);
    }

    #[test]
    fn wall_clock_advances() {
        let w = WallClock::new();
        let a = w.now_ticks();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = w.now_ticks();
        assert!(b.wrapping_sub(a) >= 1_000_000, "2ms sleep ≥ 1ms of ns");
    }
}
