//! Span/event journal with a fixed-capacity ring-buffer flight recorder.
//!
//! `span!("integrate.shard", core)` opens a scope whose start/end ticks
//! (from the process-wide [`crate::clock`]) are journaled when the scope
//! exits — including on unwind, which is exactly when the journal is
//! most valuable. The recorder keeps only the newest `capacity` records
//! (old ones are evicted, and the eviction count is kept), so it is
//! always cheap and always holds the moments just before an anomaly,
//! a worker panic, or `finish()` — the three dump points.
//!
//! Ticks are differenced with `wrapping_sub`, TSC-style; under the
//! default tick clock they are logical event counts, so the journal is
//! a causal trace, not a wall-time profile. Nothing here feeds the
//! metrics registry: snapshots stay byte-deterministic while the journal
//! is free to record scheduling-dependent detail.

use crate::clock::now_ticks;
use crate::registry::recording;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock, PoisonError};

/// One journaled span (or point event, when `start_ticks == end_ticks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name from the fixed taxonomy (see OBSERVABILITY.md).
    pub name: &'static str,
    /// Caller-chosen argument (shard index, core id, item id, …).
    pub arg: u64,
    /// Tick at scope entry.
    pub start_ticks: u64,
    /// Tick at scope exit.
    pub end_ticks: u64,
    /// Journal sequence number (monotonic per recorder).
    pub seq: u64,
}

impl SpanRecord {
    /// Span duration in ticks (wrap-safe).
    pub fn duration_ticks(&self) -> u64 {
        self.end_ticks.wrapping_sub(self.start_ticks)
    }
}

#[derive(Debug, Default)]
struct FlightState {
    ring: VecDeque<SpanRecord>,
    next_seq: u64,
    evicted: u64,
}

/// Fixed-capacity ring of the newest spans.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// A recorder keeping the newest `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(FlightState::default()),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Journal a finished span. Oldest records are evicted beyond
    /// capacity; the sequence number is assigned under the journal lock
    /// so it reflects commit order.
    pub fn push(&self, name: &'static str, arg: u64, start_ticks: u64, end_ticks: u64) {
        let mut st = self.lock();
        let seq = st.next_seq;
        st.next_seq = st.next_seq.wrapping_add(1);
        if st.ring.len() == self.capacity {
            st.ring.pop_front();
            st.evicted = st.evicted.wrapping_add(1);
        }
        st.ring.push_back(SpanRecord {
            name,
            arg,
            start_ticks,
            end_ticks,
            seq,
        });
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().ring.iter().copied().collect()
    }

    /// How many spans have been evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Drop all retained spans (eviction count and sequence continue).
    pub fn clear(&self) {
        self.lock().ring.clear();
    }

    /// Human-readable dump for post-mortems (stderr on worker panic).
    pub fn dump_text(&self) -> String {
        let st = self.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} span(s) retained, {} evicted",
            st.ring.len(),
            st.evicted
        );
        for s in &st.ring {
            let _ = writeln!(
                out,
                "  #{:<6} {:<24} arg={:<8} start={} dur={}",
                s.seq,
                s.name,
                s.arg,
                s.start_ticks,
                s.duration_ticks()
            );
        }
        out
    }
}

/// Default flight-recorder depth: enough to cover the shards, batches
/// and stages leading up to a failure without unbounded memory.
const FLIGHT_CAPACITY: usize = 256;

static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder.
pub fn flight() -> &'static FlightRecorder {
    FLIGHT.get_or_init(|| FlightRecorder::with_capacity(FLIGHT_CAPACITY))
}

/// RAII scope journaling into the process-wide flight recorder on drop.
/// Inert (records nothing) while recording is disabled.
#[derive(Debug)]
pub struct SpanGuard {
    name: Option<&'static str>,
    arg: u64,
    start_ticks: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            flight().push(name, self.arg, self.start_ticks, now_ticks());
        }
    }
}

/// Open a span scope; prefer the [`crate::span!`] macro. The guard
/// journals the scope on drop, including during unwinding.
pub fn span(name: &'static str, arg: u64) -> SpanGuard {
    if !recording() {
        return SpanGuard {
            name: None,
            arg: 0,
            start_ticks: 0,
        };
    }
    SpanGuard {
        name: Some(name),
        arg,
        start_ticks: now_ticks(),
    }
}

/// Journal a point event (zero-duration span) immediately.
pub fn event(name: &'static str, arg: u64) {
    if !recording() {
        return;
    }
    let t = now_ticks();
    flight().push(name, arg, t, t);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_eviction_keeps_exactly_the_newest_n() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            r.push("t.span", i, i, i + 1);
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 8, "capacity bounds retention");
        assert_eq!(r.evicted(), 12, "everything beyond capacity is counted");
        // Exactly the newest 8, oldest first, in commit order.
        let args: Vec<u64> = spans.iter().map(|s| s.arg).collect();
        assert_eq!(args, (12..20).collect::<Vec<u64>>());
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn guard_records_on_drop_and_on_unwind() {
        let before = flight().spans().len() + flight().evicted() as usize;
        {
            let _g = span("t.scope", 7);
        }
        let after = flight().spans().len() + flight().evicted() as usize;
        assert!(after > before, "scope exit journaled a span");

        let result = std::panic::catch_unwind(|| {
            let _g = span("t.unwind", 9);
            panic!("boom");
        });
        assert!(result.is_err());
        let spans = flight().spans();
        assert!(
            spans.iter().any(|s| s.name == "t.unwind"),
            "unwinding still journals the open span"
        );
    }

    #[test]
    fn events_are_zero_duration() {
        event("t.event", 3);
        let spans = flight().spans();
        let e = spans
            .iter()
            .rev()
            .find(|s| s.name == "t.event")
            .copied()
            .expect("event journaled");
        assert_eq!(e.duration_ticks(), 0);
        assert_eq!(e.arg, 3);
    }

    #[test]
    fn dump_text_mentions_retention_and_spans() {
        let r = FlightRecorder::with_capacity(4);
        r.push("t.a", 1, 10, 15);
        let text = r.dump_text();
        assert!(text.contains("1 span(s) retained"));
        assert!(text.contains("t.a"));
        assert!(text.contains("dur=5"));
    }
}
