//! # fluctrace-obs
//!
//! The tracer traces itself. This crate is the self-observability
//! substrate for the whole workspace: a lock-free, per-core-sharded
//! metrics registry (monotonic counters, high-watermark gauges and
//! log-bucketed HDR-style histograms with exact merge), a span/event
//! journal backed by a fixed-capacity ring-buffer *flight recorder*,
//! and canonical snapshot exporters (JSON and Prometheus text
//! exposition).
//!
//! The paper's whole argument is an overhead/visibility trade-off
//! (§IV.C, §V.C: the `a + b/R` overhead law); a tracer that cannot
//! answer "what is tracing costing right now, and where?" cannot hold
//! that line. fluctrace-obs answers it continuously:
//!
//! * **Hot-path recording is cheap.** A counter increment is a single
//!   `Relaxed` atomic add into a cache-line-padded per-thread shard; a
//!   histogram record is two (bucket + sum). There are no locks on any
//!   record path.
//! * **Aggregation is deterministic.** Metric names live in `BTreeMap`s,
//!   shards are summed (or max'd, for watermark gauges) into
//!   thread-count-independent totals, and the exporters emit byte-stable
//!   text: the same recorded multiset of events yields the same snapshot
//!   bytes regardless of `FLUCTRACE_THREADS` or the shard count.
//! * **Time is ticks, never wall-clock.** Durations come from the
//!   [`Clock`] abstraction and are differenced TSC-style with
//!   `wrapping_sub`. Library code always sees a deterministic-by-default
//!   logical tick clock; the one sanctioned wall-clock implementation
//!   ([`WallClock`]) is installed only by bench binaries. The
//!   `clock-hygiene` lint rule enforces this split.
//!
//! The metric catalog (names, kinds, units) is pinned in [`catalog`] and
//! pre-registered into the global [`registry`], so every snapshot
//! carries the full name set even for stages that did not run — another
//! ingredient of byte-stability. See `OBSERVABILITY.md` at the repo root
//! for the catalog, the span taxonomy and the 3% self-overhead budget
//! CI enforces with `core::overhead::fit_instrumentation`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod clock;
pub mod export;
pub mod flight;
pub mod hist;
pub mod registry;

pub use catalog::{lookup, MetricDef, MetricKind, CATALOG};
pub use clock::{
    install_wall_clock, now_ticks, wall_clock_installed, Clock, ManualClock, TickClock, WallClock,
};
pub use flight::{event, flight, span, FlightRecorder, SpanGuard, SpanRecord};
pub use hist::{bucket_index, bucket_upper_bound, HistogramSnapshot, BUCKETS};
pub use registry::{
    recording, registry, set_recording, snapshot, snapshot_json, snapshot_prometheus, Counter,
    Gauge, Histogram, Registry, Snapshot,
};

/// Record a scoped span into the flight recorder: the span covers the
/// rest of the enclosing block and is journaled (with its start/end
/// ticks) when the block exits, including on unwind.
///
/// ```
/// fluctrace_obs::span!("integrate.shard");
/// fluctrace_obs::span!("integrate.shard", 3u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _fluctrace_obs_span_guard = $crate::span($name, 0);
    };
    ($name:expr, $arg:expr) => {
        let _fluctrace_obs_span_guard = $crate::span($name, $arg as u64);
    };
}

/// Cached handle to a counter in the global registry. Expands to a
/// one-time registration behind a `OnceLock`, so the steady-state cost
/// of `counter!("name").add(n)` is one relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Cached handle to a high-watermark gauge in the global registry.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Cached handle to a histogram in the global registry.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}
