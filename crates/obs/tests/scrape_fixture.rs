//! Golden-pinned Prometheus scrape: the full text exposition of a
//! constructed snapshot, compared byte-for-byte against a committed
//! fixture. Pins the scrape contract end to end — HELP/TYPE headers
//! from the catalog, identifier mangling, and the cumulative
//! `_bucket{le=}` / `_sum` / `_count` histogram series — so format
//! drift shows up as a fixture diff, not a broken dashboard.
//!
//! Bless with:
//!
//! ```text
//! FLUCTRACE_BLESS=1 cargo test -p fluctrace-obs --test scrape_fixture
//! ```

use fluctrace_obs::Registry;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("scrape.prom")
}

fn blessing() -> bool {
    std::env::var_os("FLUCTRACE_BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// A local registry exercising every exposition shape: catalogued
/// counter/gauge/histogram (HELP + TYPE), an uncatalogued counter
/// (TYPE only), and a histogram spanning several log-buckets so the
/// cumulative `le=` ladder is non-trivial.
fn constructed_snapshot() -> fluctrace_obs::Snapshot {
    let r = Registry::with_shards(2);
    r.counter("core.online.items_processed").add(12345);
    r.counter("serve.windows.closed").add(64);
    r.counter("t.uncatalogued.ops").add(3);
    r.gauge("serve.worker.utilization_milli").record(875);
    let h = r.histogram("rt.wait.cycles");
    for v in [0, 1, 3, 3, 100, 100, 100, 4096, 1 << 20] {
        h.record(v);
    }
    r.snapshot()
}

#[test]
fn prometheus_scrape_matches_pinned_fixture() {
    let actual = constructed_snapshot().to_prometheus();

    let path = fixture_path();
    if blessing() {
        std::fs::write(&path, &actual).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); bless it with FLUCTRACE_BLESS=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "Prometheus exposition drift against {}:\n--- expected ---\n{expected}\n\
         --- actual ---\n{actual}\nIf intentional, re-bless with FLUCTRACE_BLESS=1.",
        path.display()
    );
}

#[test]
fn scrape_is_byte_stable_across_renders() {
    let snap = constructed_snapshot();
    assert_eq!(snap.to_prometheus(), snap.to_prometheus());
}
