//! The global recording gate, tested in its own process: toggling
//! `set_recording` is process-wide, so it cannot share a test binary
//! with tests that assert exact counts.

use fluctrace_obs::{set_recording, Registry};

#[test]
fn disabled_recording_is_a_no_op_for_every_metric_kind() {
    let r = Registry::with_shards(2);
    let c = r.counter("t.gated");
    let g = r.gauge("t.gated_peak");
    let h = r.histogram("t.gated_hist");

    set_recording(false);
    c.add(100);
    g.record(42);
    h.record(7);
    set_recording(true);
    c.add(1);
    g.record(5);
    h.record(3);

    let snap = r.snapshot();
    assert_eq!(snap.counters.get("t.gated"), Some(&1));
    assert_eq!(snap.gauges.get("t.gated_peak"), Some(&5));
    let hist = snap
        .histograms
        .get("t.gated_hist")
        .cloned()
        .unwrap_or_default();
    assert_eq!(hist.count(), 1);
    assert_eq!(hist.sum, 3);

    // Spans are gated too: nothing lands in the flight recorder while
    // recording is off.
    fluctrace_obs::flight().clear();
    set_recording(false);
    {
        fluctrace_obs::span!("gated.span");
    }
    set_recording(true);
    {
        fluctrace_obs::span!("live.span");
    }
    let spans = fluctrace_obs::flight().spans();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans.first().map(|s| s.name), Some("live.span"));
}
