//! Criterion benchmarks of the simulation substrate: event queue
//! operations, PRNG output, and core execution throughput with and
//! without PEBS enabled (the simulator's own cost of modelling
//! sampling).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fluctrace_cpu::{Core, CoreConfig, CoreId, Exec, PebsConfig, SymbolTableBuilder};
use fluctrace_sim::{EventQueue, Rng, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop", |b| {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 17;
            q.push(SimTime::from_ns(t % 1_000_000), t);
            black_box(q.pop());
        })
    });
    g.bench_function("push_pop_1k_backlog", |b| {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(SimTime::from_ns(i * 37 % 100_000), i);
        }
        let mut t = 0u64;
        b.iter(|| {
            t += 17;
            q.push(SimTime::from_ns(t % 100_000), t);
            black_box(q.pop());
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    g.bench_function("next_u64", |b| {
        let mut r = Rng::new(1);
        b.iter(|| black_box(r.next_u64()))
    });
    g.bench_function("gen_below", |b| {
        let mut r = Rng::new(1);
        b.iter(|| black_box(r.gen_below(1_000_003)))
    });
    g.finish();
}

fn make_core(pebs: Option<PebsConfig>) -> (Core, fluctrace_cpu::FuncId) {
    let mut b = SymbolTableBuilder::new();
    let f = b.add("work", 4096);
    let mut cfg = CoreConfig::bare();
    cfg.pebs = pebs;
    (
        Core::new(CoreId(0), cfg, b.build().into_shared(), Rng::new(3)),
        f,
    )
}

fn bench_core_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_exec");
    g.throughput(Throughput::Elements(1));
    g.bench_function("segment_no_sampling", |b| {
        let (mut core, f) = make_core(None);
        b.iter(|| black_box(core.exec(Exec::new(f, 10_000))))
    });
    g.bench_function("segment_pebs_r8000", |b| {
        let (mut core, f) = make_core(Some(PebsConfig::new(8_000)));
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            if n.is_multiple_of(50_000) {
                black_box(core.drain_trace());
            }
            black_box(core.exec(Exec::new(f, 10_000)))
        })
    });
    g.bench_function("segment_pebs_r500", |b| {
        let (mut core, f) = make_core(Some(PebsConfig::new(500)));
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            if n.is_multiple_of(5_000) {
                black_box(core.drain_trace());
            }
            black_box(core.exec(Exec::new(f, 10_000)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_core_exec);
criterion_main!(benches);
