//! Criterion benchmarks of the real lock-free SPSC ring: single-thread
//! round trips and cross-thread streaming throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fluctrace_rt::spsc_ring;
use std::hint::black_box;
use std::thread;

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_single_thread");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop_u64", |b| {
        let (mut tx, mut rx) = spsc_ring::<u64>(1024);
        b.iter(|| {
            tx.push(black_box(42)).unwrap();
            black_box(rx.pop().unwrap());
        })
    });
    g.bench_function("push_pop_vec", |b| {
        let (mut tx, mut rx) = spsc_ring::<Vec<u64>>(1024);
        let payload = vec![1u64; 16];
        b.iter(|| {
            tx.push(black_box(payload.clone())).unwrap();
            black_box(rx.pop().unwrap());
        })
    });
    g.finish();
}

fn bench_cross_thread(c: &mut Criterion) {
    const N: u64 = 100_000;
    let mut g = c.benchmark_group("spsc_cross_thread");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N));
    g.bench_function("stream_100k_u64", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = spsc_ring::<u64>(4096);
            let producer = thread::spawn(move || {
                for i in 0..N {
                    while tx.push(i).is_err() {
                        std::hint::spin_loop();
                    }
                }
            });
            let mut sum = 0u64;
            let mut got = 0u64;
            while got < N {
                if let Some(v) = rx.pop() {
                    sum = sum.wrapping_add(v);
                    got += 1;
                }
            }
            producer.join().unwrap();
            black_box(sum)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_cross_thread);
criterion_main!(benches);
