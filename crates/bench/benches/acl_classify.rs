//! Criterion benchmarks of the real ACL classifier: build time and
//! per-packet classification cost for the three Table IV packet types.
//! (These measure OUR implementation's wall-clock performance, not the
//! simulated latencies.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fluctrace_acl::{table3_rules, AclBuildConfig, MultiTrieAcl, NullMeter};
use fluctrace_apps::PacketType;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("acl_build");
    g.sample_size(10);
    for (label, params) in [
        ("5k_rules", (100u16, 50u16, 0u16)),
        ("50k_rules", (666, 75, 50)),
    ] {
        let rules = table3_rules(params.0, params.1, params.2);
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| MultiTrieAcl::build(black_box(&rules), AclBuildConfig::paper_patched()))
        });
    }
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    let rules = table3_rules(666, 75, 50);
    let acl = MultiTrieAcl::build(&rules, AclBuildConfig::paper_patched());
    let mut g = c.benchmark_group("acl_classify_247_tries");
    for t in PacketType::ALL {
        let key = t.key();
        g.bench_function(BenchmarkId::from_parameter(t.label()), |b| {
            b.iter(|| acl.classify(black_box(&key), &mut NullMeter))
        });
    }
    // A matching (dropped) packet walks to full depth and evaluates a
    // match entry.
    let dropped = fluctrace_acl::PacketKey::new([192, 168, 10, 4], [192, 168, 11, 5], 5, 7);
    g.bench_function("matching", |b| {
        b.iter(|| acl.classify(black_box(&dropped), &mut NullMeter))
    });
    g.finish();
}

fn bench_trie_count(c: &mut Criterion) {
    // The paper's amplification effect on real hardware: same rules,
    // 8 tries vs 247 tries.
    let rules = table3_rules(666, 75, 50);
    let vanilla = MultiTrieAcl::build(&rules, AclBuildConfig::vanilla());
    let patched = MultiTrieAcl::build(&rules, AclBuildConfig::paper_patched());
    let key = PacketType::A.key();
    let mut g = c.benchmark_group("trie_count_amplification");
    g.bench_function("8_tries", |b| {
        b.iter(|| vanilla.classify(black_box(&key), &mut NullMeter))
    });
    g.bench_function("247_tries", |b| {
        b.iter(|| patched.classify(black_box(&key), &mut NullMeter))
    });
    g.finish();
}

fn bench_compiled_vs_nfa(c: &mut Criterion) {
    // rte_acl executes a compiled DFA; compare our compiled classifier
    // against the insertion-order (NFA-ish) trie on real wall clock.
    let rules = table3_rules(666, 75, 50);
    let nfa = MultiTrieAcl::build(&rules, AclBuildConfig::paper_patched());
    let dfa = fluctrace_acl::CompiledAcl::compile(&nfa);
    let mut g = c.benchmark_group("compiled_vs_nfa");
    for t in PacketType::ALL {
        let key = t.key();
        g.bench_function(format!("nfa/{}", t.label()), |b| {
            b.iter(|| nfa.classify(black_box(&key), &mut NullMeter))
        });
        g.bench_function(format!("dfa/{}", t.label()), |b| {
            b.iter(|| dfa.classify(black_box(&key), &mut NullMeter))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_classify,
    bench_trie_count,
    bench_compiled_vs_nfa
);
criterion_main!(benches);
