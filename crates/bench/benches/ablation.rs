//! Ablation benchmarks of the design choices DESIGN.md calls out:
//!
//! 1. **drain mode** — synchronous SSD drain (paper's prototype) vs
//!    double buffering (§III.E's suggested optimisation): simulated
//!    packet-latency overhead of each;
//! 2. **mapping mode** — interval mapping vs register tagging on the
//!    same trace: integration wall-clock and identical estimates;
//! 3. **online filtering** — volume kept with divergence-triggered
//!    dumping vs dump-everything;
//! 4. **trie partitioning** — simulated classification work at 8 vs 247
//!    tries.
//!
//! These are Criterion benches so the numbers land in bench output, but
//! each also asserts the qualitative outcome so a regression fails the
//! run rather than silently changing a conclusion.

use criterion::{criterion_group, criterion_main, Criterion};
use fluctrace_acl::{table3_rules, AclBuildConfig, CountingMeter, MultiTrieAcl, WorkMeter as _};
use fluctrace_apps::PacketType;
use fluctrace_bench::acl_experiment::{run_acl, AclRunConfig};
use fluctrace_core::{integrate, EstimateTable, MappingMode, OnlineConfig, OnlineTracer};
use fluctrace_cpu::{DrainMode, ItemId};
use fluctrace_sim::Freq;
use std::hint::black_box;

fn bench_drain_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_drain_mode");
    g.sample_size(10);
    for (label, drain) in [
        ("synchronous_ssd", DrainMode::Synchronous),
        ("double_buffered", DrainMode::DoubleBuffered),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = AclRunConfig::new(Some(8_000), 40, (200, 100, 0));
                cfg.drain = drain;
                black_box(run_acl(cfg).mean_latency_us)
            })
        });
    }
    g.finish();
    // Qualitative assertion: synchronous drains produce (weakly) larger
    // mean latency because 200 µs SSD stalls can land inside packets.
    let mut sync_cfg = AclRunConfig::new(Some(8_000), 200, (200, 100, 0));
    sync_cfg.drain = DrainMode::Synchronous;
    let mut dbl_cfg = sync_cfg;
    dbl_cfg.drain = DrainMode::DoubleBuffered;
    let sync = run_acl(sync_cfg).mean_latency_us;
    let dbl = run_acl(dbl_cfg).mean_latency_us;
    assert!(
        sync >= dbl,
        "synchronous drain should not be faster: {sync} vs {dbl}"
    );
}

fn bench_mapping_modes(c: &mut Criterion) {
    // One traced ULT-free firewall run, integrated both ways.
    use fluctrace_apps::{AclCostModel, Firewall, Tester};
    use fluctrace_cpu::{CoreConfig, Machine, MachineConfig, PebsConfig};
    use fluctrace_sim::{SimDuration, SimTime};

    let (symtab, funcs) = Firewall::symtab();
    let core_cfg = CoreConfig::bare()
        .with_pebs(PebsConfig::new(8_000))
        .with_reg_tagging();
    let mut machine = Machine::new(MachineConfig::new(3, core_cfg), symtab);
    let rules = table3_rules(200, 100, 0);
    let fw = Firewall::new(
        &rules,
        AclBuildConfig::paper_patched(),
        AclCostModel::default(),
        funcs,
    );
    let (_, ingress) =
        Tester::send_round_robin(SimTime::from_us(10), SimDuration::from_us(60), 100);
    fw.run(&mut machine, ingress);
    let (bundle, _) = machine.collect();
    let symtab = machine.symtab().clone();

    let mut g = c.benchmark_group("ablation_mapping_mode");
    for (label, mode) in [
        ("intervals", MappingMode::Intervals),
        ("register_tag", MappingMode::RegisterTag),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let it = integrate(black_box(&bundle), &symtab, Freq::ghz(3), mode);
                black_box(EstimateTable::from_integrated(&it))
            })
        });
    }
    g.finish();

    // Qualitative assertion: on a self-switching app both modes give the
    // same per-item classify estimates.
    let classify = funcs.rte_acl_classify;
    let ti = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
    let tr = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::RegisterTag);
    let ei = EstimateTable::from_integrated(&ti);
    let er = EstimateTable::from_integrated(&tr);
    let mut checked = 0;
    for item in 0..300u64 {
        if let (Some(a), Some(b)) = (
            ei.get(ItemId(item), classify),
            er.get(ItemId(item), classify),
        ) {
            assert_eq!(a.elapsed, b.elapsed, "item {item}");
            checked += 1;
        }
    }
    assert!(checked > 50, "only {checked} items compared");
}

fn bench_online_filtering(c: &mut Criterion) {
    use fluctrace_cpu::{
        CoreId, HwEvent, MarkKind, MarkRecord, PebsRecord, SymbolTableBuilder, TraceBundle, NO_TAG,
    };
    let mut b = SymbolTableBuilder::new();
    let f = b.add("f", 4096);
    let symtab = b.build().into_shared();
    let make_batch = |item: u64, cycles: u64| {
        let base = item * 1_000_000;
        let mut bundle = TraceBundle::default();
        bundle.marks.push(MarkRecord {
            core: CoreId(0),
            tsc: base,
            item: ItemId(item),
            kind: MarkKind::Start,
        });
        for k in 0..20u64 {
            bundle.samples.push(PebsRecord {
                core: CoreId(0),
                tsc: base + 10 + k * cycles / 20,
                ip: symtab.range(f).start,
                r13: NO_TAG,
                event: HwEvent::UopsRetired,
            });
        }
        bundle.marks.push(MarkRecord {
            core: CoreId(0),
            tsc: base + cycles + 100,
            item: ItemId(item),
            kind: MarkKind::End,
        });
        bundle
    };
    let mut g = c.benchmark_group("ablation_online_filtering");
    g.sample_size(10);
    g.bench_function("stream_2k_items", |b| {
        b.iter(|| {
            let tracer = OnlineTracer::spawn(symtab.clone(), OnlineConfig::new(Freq::ghz(3)));
            for i in 0..2_000u64 {
                let cycles = if i % 100 == 7 { 30_000 } else { 3_000 };
                tracer.submit(make_batch(i, cycles)).expect("worker alive");
            }
            black_box(tracer.finish().expect("worker exits cleanly"))
        })
    });
    g.finish();

    // Qualitative assertion: the filter keeps ~1% of items → ≥ 50×
    // volume reduction vs dump-everything.
    let tracer = OnlineTracer::spawn(symtab.clone(), OnlineConfig::new(Freq::ghz(3)));
    for i in 0..2_000u64 {
        let cycles = if i % 100 == 7 { 30_000 } else { 3_000 };
        tracer.submit(make_batch(i, cycles)).expect("worker alive");
    }
    let report = tracer.finish().expect("worker exits cleanly");
    assert!(
        report.reduction_factor() > 20.0,
        "reduction only {}x",
        report.reduction_factor()
    );
}

fn bench_trie_partitioning_work(c: &mut Criterion) {
    // Simulated *work* (node visits), not wall time: the quantity the
    // cost model converts to µops.
    let rules = table3_rules(666, 75, 50);
    let key = PacketType::A.key();
    let mut g = c.benchmark_group("ablation_trie_partitioning");
    for (label, cfg) in [
        ("vanilla_8", AclBuildConfig::vanilla()),
        ("patched_247", AclBuildConfig::paper_patched()),
    ] {
        let acl = MultiTrieAcl::build(&rules, cfg);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut m = CountingMeter::new();
                acl.classify(black_box(&key), &mut m);
                black_box(m.node_visits)
            })
        });
    }
    g.finish();
    // Qualitative assertion: 247 tries visit ~30x the nodes of 8 tries.
    let mut m8 = CountingMeter::new();
    let mut m247 = CountingMeter::new();
    MultiTrieAcl::build(&rules, AclBuildConfig::vanilla()).classify(&key, &mut m8);
    MultiTrieAcl::build(&rules, AclBuildConfig::paper_patched()).classify(&key, &mut m247);
    m8.on_trie_start(); // silence unused-trait-import on some toolchains
    assert!(m247.node_visits > 20 * m8.node_visits);
}

criterion_group!(
    benches,
    bench_drain_modes,
    bench_mapping_modes,
    bench_online_filtering,
    bench_trie_partitioning_work
);
criterion_main!(benches);
