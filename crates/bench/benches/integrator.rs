//! Criterion benchmarks of the tracer's integration and estimation
//! pipeline: how many samples per second can the offline integrator
//! attribute, and how fast is fluctuation detection?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fluctrace_core::{detect, integrate, EstimateTable, MappingMode};
use fluctrace_cpu::{
    CoreId, HwEvent, ItemId, MarkKind, MarkRecord, PebsRecord, SymbolTable, SymbolTableBuilder,
    TraceBundle, NO_TAG,
};
use fluctrace_sim::{Freq, SimDuration};
use std::hint::black_box;

/// Build a synthetic bundle: `items` items, `samples_per_item` samples
/// spread over `funcs` functions.
fn synthetic_bundle(items: u64, samples_per_item: u64) -> (TraceBundle, SymbolTable) {
    let mut b = SymbolTableBuilder::new();
    let funcs: Vec<_> = (0..8).map(|i| b.add(&format!("fn{i}"), 4096)).collect();
    let symtab = b.build();
    let mut bundle = TraceBundle::default();
    let mut tsc = 0u64;
    for item in 0..items {
        bundle.marks.push(MarkRecord {
            core: CoreId(0),
            tsc,
            item: ItemId(item),
            kind: MarkKind::Start,
        });
        for s in 0..samples_per_item {
            tsc += 3000;
            let f = funcs[(s % funcs.len() as u64) as usize];
            bundle.samples.push(PebsRecord {
                core: CoreId(0),
                tsc,
                ip: symtab.range(f).start,
                r13: NO_TAG,
                event: HwEvent::UopsRetired,
            });
        }
        tsc += 3000;
        bundle.marks.push(MarkRecord {
            core: CoreId(0),
            tsc,
            item: ItemId(item),
            kind: MarkKind::End,
        });
        tsc += 1000;
    }
    bundle.sort();
    (bundle, symtab)
}

fn bench_integrate(c: &mut Criterion) {
    let (bundle, symtab) = synthetic_bundle(1_000, 100);
    let n = bundle.samples.len() as u64;
    let mut g = c.benchmark_group("integrate");
    g.throughput(Throughput::Elements(n));
    g.bench_function("interval_mode_100k_samples", |b| {
        b.iter(|| {
            integrate(
                black_box(&bundle),
                &symtab,
                Freq::ghz(3),
                MappingMode::Intervals,
            )
        })
    });
    g.bench_function("register_tag_mode_100k_samples", |b| {
        b.iter(|| {
            integrate(
                black_box(&bundle),
                &symtab,
                Freq::ghz(3),
                MappingMode::RegisterTag,
            )
        })
    });
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let (bundle, symtab) = synthetic_bundle(1_000, 100);
    let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
    let mut g = c.benchmark_group("estimate");
    g.throughput(Throughput::Elements(it.samples.len() as u64));
    g.bench_function("estimate_table_100k_samples", |b| {
        b.iter(|| EstimateTable::from_integrated(black_box(&it)))
    });
    let table = EstimateTable::from_integrated(&it);
    g.bench_function("detect_1k_items", |b| {
        b.iter(|| {
            detect(
                black_box(&table),
                |_| Some("g".to_string()),
                3.0,
                SimDuration::from_ns(100),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_integrate, bench_estimate);
criterion_main!(benches);
