//! Criterion benchmarks of the tracer's integration and estimation
//! pipeline: how many samples per second can the offline integrator
//! attribute, and how fast is fluctuation detection?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fluctrace_core::{detect, integrate, integrate_with_threads, EstimateTable, MappingMode};
use fluctrace_cpu::{
    CoreId, HwEvent, ItemId, MarkKind, MarkRecord, PebsRecord, SymbolTable, SymbolTableBuilder,
    TraceBundle, NO_TAG,
};
use fluctrace_sim::{Freq, SimDuration};
use std::hint::black_box;

/// Build a synthetic bundle: `items` items spread round-robin over
/// `cores` cores, `samples_per_item` samples spread over 8 functions.
fn synthetic_bundle(cores: u32, items: u64, samples_per_item: u64) -> (TraceBundle, SymbolTable) {
    let mut b = SymbolTableBuilder::new();
    let funcs: Vec<_> = (0..8).map(|i| b.add(&format!("fn{i}"), 4096)).collect();
    let symtab = b.build();
    let mut bundle = TraceBundle::default();
    let mut tscs = vec![0u64; cores as usize];
    for item in 0..items {
        let core = (item % cores as u64) as u32;
        let tsc = &mut tscs[core as usize];
        bundle.marks.push(MarkRecord {
            core: CoreId(core),
            tsc: *tsc,
            item: ItemId(item),
            kind: MarkKind::Start,
        });
        for s in 0..samples_per_item {
            *tsc += 3000;
            let f = funcs[(s % funcs.len() as u64) as usize];
            bundle.samples.push(PebsRecord {
                core: CoreId(core),
                tsc: *tsc,
                ip: symtab.range(f).start,
                r13: NO_TAG,
                event: HwEvent::UopsRetired,
            });
        }
        *tsc += 3000;
        bundle.marks.push(MarkRecord {
            core: CoreId(core),
            tsc: *tsc,
            item: ItemId(item),
            kind: MarkKind::End,
        });
        *tsc += 1000;
    }
    bundle.sort();
    (bundle, symtab)
}

fn bench_integrate(c: &mut Criterion) {
    let (bundle, symtab) = synthetic_bundle(1, 1_000, 100);
    let n = bundle.samples.len() as u64;
    let mut g = c.benchmark_group("integrate");
    g.throughput(Throughput::Elements(n));
    g.bench_function("interval_mode_100k_samples", |b| {
        b.iter(|| {
            integrate(
                black_box(&bundle),
                &symtab,
                Freq::ghz(3),
                MappingMode::Intervals,
            )
        })
    });
    g.bench_function("register_tag_mode_100k_samples", |b| {
        b.iter(|| {
            integrate(
                black_box(&bundle),
                &symtab,
                Freq::ghz(3),
                MappingMode::RegisterTag,
            )
        })
    });
    // Thread scaling on a 4-core trace (same total sample count); the
    // 1-thread case is the sequential reference the parallel path must
    // match bit for bit.
    let (mc_bundle, mc_symtab) = synthetic_bundle(4, 1_000, 100);
    for threads in [1usize, 4] {
        g.bench_function(format!("interval_mode_4core_{threads}_threads"), |b| {
            b.iter(|| {
                integrate_with_threads(
                    black_box(&mc_bundle),
                    &mc_symtab,
                    Freq::ghz(3),
                    MappingMode::Intervals,
                    threads,
                )
            })
        });
    }
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let (bundle, symtab) = synthetic_bundle(1, 1_000, 100);
    let it = integrate(&bundle, &symtab, Freq::ghz(3), MappingMode::Intervals);
    let mut g = c.benchmark_group("estimate");
    g.throughput(Throughput::Elements(it.samples.len() as u64));
    g.bench_function("estimate_table_100k_samples", |b| {
        b.iter(|| EstimateTable::from_integrated(black_box(&it)))
    });
    // The retired BTreeMap-per-sample estimator, kept as the oracle —
    // benchmarking both keeps the linear scan honest.
    g.bench_function("estimate_table_reference_100k_samples", |b| {
        b.iter(|| EstimateTable::from_integrated_reference(black_box(&it)))
    });
    let table = EstimateTable::from_integrated(&it);
    g.bench_function("detect_1k_items", |b| {
        b.iter(|| {
            detect(
                black_box(&table),
                |_| Some("g".to_string()),
                3.0,
                SimDuration::from_ns(100),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_integrate, bench_estimate);
criterion_main!(benches);
