//! The obs snapshot must be a pure function of the recorded multiset of
//! events — never of the thread configuration that recorded them. This
//! test runs the deterministic probe under several `FLUCTRACE_THREADS`
//! settings inside one process and requires the delta snapshots to be
//! byte-identical.
//!
//! Deliberately a single `#[test]` in its own binary: it mutates the
//! process environment and scopes measurement windows against the
//! process-wide registry, so it must not share a process with other
//! tests.

use fluctrace_bench::obs_support::obs_probe;

#[test]
fn snapshot_bytes_invariant_across_thread_counts() {
    let mut snaps = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("FLUCTRACE_THREADS", threads);
        let base = fluctrace_obs::snapshot();
        obs_probe();
        let delta = fluctrace_obs::snapshot().diff(&base);
        snaps.push((threads, delta.to_json()));
    }
    std::env::remove_var("FLUCTRACE_THREADS");

    let (_, reference) = &snaps[0];
    // The probe exercised every subsystem, so the delta is non-trivial.
    for section in [
        "core.integrate.runs",
        "core.online.samples_evicted",
        "rt.spsc.pushes",
        "rt.stage.batches",
        "sim.fault.schedules",
    ] {
        assert!(reference.contains(section), "probe missed {section}");
    }
    for (threads, snap) in &snaps[1..] {
        assert_eq!(
            snap, reference,
            "obs snapshot changed between FLUCTRACE_THREADS=1 and {threads}"
        );
    }

    // The Prometheus exposition renders from the same snapshot and is
    // equally stable (spot-check shape, not bytes, to keep this test
    // focused on the JSON contract CI diffs).
    let prom = fluctrace_obs::snapshot_prometheus();
    assert!(prom.contains("# TYPE"));
    assert!(prom.contains("core_integrate_runs") || prom.contains("core.integrate.runs"));
}
