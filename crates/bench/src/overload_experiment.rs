//! Overload/fault-injection experiment for the online tracer (§IV.C.3).
//!
//! Three deterministic scenarios exercise the tracer's robustness
//! guarantees:
//!
//! * [`run_overload`] replays an item stream mutated by a
//!   [`FaultSchedule`] (lost Start marks, corrupted End marks, sample
//!   bursts) and returns the tracer's [`OnlineReport`] together with the
//!   [`ExpectedLosses`] computed *independently* from the schedule — the
//!   two must agree to the unit.
//! * [`run_stall`] parks the worker thread on a gate so channel
//!   occupancy is exact, then uses the lossy `try_submit` path; the
//!   number of dropped batches is a pure function of the batch count and
//!   channel capacity.
//! * [`run_degradation`] drives the adaptive effective-reset policy with
//!   a scripted occupancy waveform and returns the factor trace —
//!   reproducible because no real queue timing is involved.
//!
//! Everything an artifact is built from here is content-derived (counts,
//! schedules, policy state), never wall-clock, so the emitted JSON is
//! byte-identical across `FLUCTRACE_THREADS` settings.

use fluctrace_core::online::{AdaptiveConfig, AdaptiveR, OnlineConfig, OnlineReport, OnlineTracer};
use fluctrace_cpu::{
    CoreId, FuncId, HwEvent, ItemId, MarkKind, MarkRecord, PebsRecord, SymbolTable,
    SymbolTableBuilder, TraceBundle, NO_TAG,
};
use fluctrace_sim::{occupancy_wave, Fault, FaultSchedule, Freq};
use std::sync::mpsc;
use std::sync::Arc;

/// Cycles between an item's Start and End mark.
pub const ITEM_CYCLES: u64 = 3_000;
/// Offset added to the item id of a corrupted End mark.
const WRONG_ITEM_OFFSET: u64 = 1 << 32;

/// Configuration of a fault-replay run.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Items in the stream.
    pub items: usize,
    /// Per-item faults to apply while building the stream.
    pub schedule: FaultSchedule,
    /// `pending` bound handed to the tracer (small values force
    /// eviction under bursts).
    pub max_pending: usize,
    /// Keep the merged faulted stream on the result (for `--store`
    /// spill). Off by default: the sweep only needs the loss counts.
    pub keep_bundle: bool,
}

/// Ground-truth loss totals implied by a fault schedule — computed from
/// the schedule alone, with no knowledge of what the tracer observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpectedLosses {
    /// Items that complete (no DropOpen/CorruptClose fault).
    pub items_processed: u64,
    /// Samples in the stream (2 per item + burst extras).
    pub samples_seen: u64,
    /// Samples attributed to completed items.
    pub samples_attributed: u64,
    /// End marks left orphaned by dropped Starts.
    pub marks_orphaned: u64,
    /// Corrupted End marks.
    pub marks_mismatched: u64,
    /// Samples discarded with mismatched items.
    pub samples_discarded: u64,
    /// Oldest-sample evictions forced by bursts against `max_pending`.
    pub samples_evicted: u64,
    /// Orphan-item samples cleared as inter-item spin.
    pub samples_spin: u64,
    /// Starts still open at stream end (always 0 here: every batch ends
    /// with an End mark, so no item is left open).
    pub starts_truncated: u64,
    /// Samples attributed exactly at an interval bound.
    pub boundary_samples: u64,
}

/// Result of [`run_overload`]: what the tracer reported next to what
/// the schedule says it should have reported.
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// The tracer's report.
    pub report: OnlineReport,
    /// Ground truth from the schedule.
    pub expected: ExpectedLosses,
    /// The merged faulted stream (only when
    /// [`OverloadConfig::keep_bundle`] was set).
    pub bundle: Option<TraceBundle>,
}

impl OverloadResult {
    /// True when every loss category matches the ground truth exactly
    /// and the report's sample-conservation identity holds.
    pub fn accounting_exact(&self) -> bool {
        let r = &self.report;
        let e = &self.expected;
        r.items_processed == e.items_processed
            && r.samples_seen == e.samples_seen
            && r.samples_attributed == e.samples_attributed
            && r.loss.marks_orphaned == e.marks_orphaned
            && r.loss.marks_mismatched == e.marks_mismatched
            && r.loss.samples_discarded == e.samples_discarded
            && r.loss.samples_evicted == e.samples_evicted
            && r.loss.samples_spin == e.samples_spin
            && r.loss.starts_truncated == e.starts_truncated
            && r.loss.boundary_samples == e.boundary_samples
            && r.conserves_samples()
    }
}

/// One-function symbol table shared by the overload scenarios.
pub fn overload_symtab() -> (Arc<SymbolTable>, FuncId) {
    let mut b = SymbolTableBuilder::new();
    let f = b.add("handle", 100);
    (b.build().into_shared(), f)
}

fn sample(symtab: &SymbolTable, f: FuncId, tsc: u64) -> PebsRecord {
    PebsRecord {
        core: CoreId(0),
        tsc,
        ip: symtab.range(f).start,
        r13: NO_TAG,
        event: HwEvent::UopsRetired,
    }
}

fn mark(tsc: u64, item: u64, kind: MarkKind) -> MarkRecord {
    MarkRecord {
        core: CoreId(0),
        tsc,
        item: ItemId(item),
        kind,
    }
}

/// Build item `i`'s batch with its scheduled fault applied. The two
/// regular samples sit exactly on the Start and End timestamps, so every
/// completed item contributes two boundary samples (one, if a burst
/// evicted the older of them).
pub fn faulted_batch(symtab: &SymbolTable, f: FuncId, i: usize, fault: Fault) -> TraceBundle {
    let base = (i as u64 + 1) * 1_000_000;
    let end = base + ITEM_CYCLES;
    let mut bundle = TraceBundle::default();
    if fault != Fault::DropOpen {
        bundle.marks.push(mark(base, i as u64, MarkKind::Start));
    }
    bundle.samples.push(sample(symtab, f, base));
    if let Fault::Burst(n) = fault {
        for j in 0..u64::from(n) {
            // Strictly inside the interval; wraps within it for huge
            // bursts so ordering stays sane.
            bundle
                .samples
                .push(sample(symtab, f, base + 1 + j % (ITEM_CYCLES - 1)));
        }
    }
    bundle.samples.push(sample(symtab, f, end));
    let end_item = match fault {
        Fault::CorruptClose => i as u64 + WRONG_ITEM_OFFSET,
        _ => i as u64,
    };
    bundle.marks.push(mark(end, end_item, MarkKind::End));
    bundle
}

/// Compute the ground-truth [`ExpectedLosses`] of a schedule, given the
/// tracer's `max_pending` bound.
pub fn expected_losses(schedule: &FaultSchedule, max_pending: usize) -> ExpectedLosses {
    let mut e = ExpectedLosses::default();
    for fault in schedule.iter() {
        match fault {
            Fault::None => {
                e.items_processed += 1;
                e.samples_seen += 2;
                e.samples_attributed += 2;
                e.boundary_samples += 2;
            }
            Fault::DropOpen => {
                // End arrives with no open item; the item's samples are
                // never attributed but also never *discarded* — the
                // orphan End clears them as inter-item spin (relying on
                // the *next* Start to clear them would leak pending into
                // the eviction bound under consecutive dropped Starts).
                e.marks_orphaned += 1;
                e.samples_seen += 2;
                e.samples_spin += 2;
            }
            Fault::CorruptClose => {
                e.marks_mismatched += 1;
                e.samples_seen += 2;
                e.samples_discarded += 2;
            }
            Fault::Burst(n) => {
                e.items_processed += 1;
                let pushed = 2 + u64::from(n);
                e.samples_seen += pushed;
                let evicted = pushed.saturating_sub(max_pending.max(1) as u64);
                e.samples_evicted += evicted;
                e.samples_attributed += pushed - evicted;
                // Eviction drops oldest-first, so the start-boundary
                // sample goes first; the end-boundary sample is always
                // the newest and survives.
                e.boundary_samples += if evicted > 0 { 1 } else { 2 };
            }
        }
    }
    e
}

/// Replay a faulted item stream through the tracer (one batch per item,
/// blocking `submit`) and pair the report with the schedule's ground
/// truth.
pub fn run_overload(cfg: &OverloadConfig) -> OverloadResult {
    let (symtab, f) = overload_symtab();
    let mut online_cfg = OnlineConfig::new(Freq::ghz(3));
    online_cfg.max_pending = cfg.max_pending;
    let tracer = OnlineTracer::spawn(Arc::clone(&symtab), online_cfg);
    let mut kept = cfg.keep_bundle.then(TraceBundle::default);
    for i in 0..cfg.items {
        let batch = faulted_batch(&symtab, f, i, cfg.schedule.get(i));
        if let Some(b) = kept.as_mut() {
            b.merge(batch.clone());
        }
        tracer.submit(batch).expect("worker alive");
    }
    let report = tracer.finish().expect("no worker panic in replay");
    let expected = expected_losses(&cfg.schedule, cfg.max_pending);
    OverloadResult {
        report,
        expected,
        bundle: kept,
    }
}

/// Result of the slow-consumer stall scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallResult {
    /// Batches `try_submit` reported as dropped.
    pub batches_dropped: u64,
    /// `total_batches - 1 - channel_capacity`, the exact expected count.
    pub expected_dropped: u64,
    /// Items the tracer still processed (everything that fit).
    pub items_processed: u64,
}

/// Slow-consumer stall with exact drop accounting.
///
/// The worker parks on a gate after taking the first batch, so the
/// channel's occupancy during the stall is exact (not scheduler-timing
/// dependent): of the remaining `total_batches - 1` lossy submissions,
/// precisely `channel_capacity` fit and the rest are dropped and
/// counted.
pub fn run_stall(total_batches: usize, channel_capacity: usize) -> StallResult {
    assert!(total_batches >= 1);
    let (symtab, f) = overload_symtab();
    let mut cfg = OnlineConfig::new(Freq::ghz(3));
    cfg.channel_capacity = channel_capacity;
    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let mut first = true;
    let tracer = OnlineTracer::spawn_with_inspector(Arc::clone(&symtab), cfg, move |_batch| {
        if first {
            first = false;
            let _ = parked_tx.send(());
            let _ = resume_rx.recv();
        }
    });
    tracer
        .submit(faulted_batch(&symtab, f, 0, Fault::None))
        .expect("worker alive");
    parked_rx.recv().expect("worker parks on the gate");
    // Worker holds batch 0 and is parked; the channel is empty.
    for i in 1..total_batches {
        let batch = faulted_batch(&symtab, f, i, Fault::None);
        let _outcome = tracer.try_submit(batch).expect("worker alive");
    }
    resume_tx.send(()).expect("worker waits on resume");
    let report = tracer.finish().expect("no worker panic in stall run");
    StallResult {
        batches_dropped: report.loss.batches_dropped,
        expected_dropped: (total_batches as u64 - 1).saturating_sub(channel_capacity as u64),
        items_processed: report.items_processed,
    }
}

/// The factor trace of the adaptive effective-reset policy under a
/// scripted occupancy waveform, plus its episode stats.
pub fn run_degradation(
    steps: usize,
    period: usize,
    peak: f64,
    config: AdaptiveConfig,
) -> (Vec<u32>, fluctrace_core::DegradeStats) {
    let mut policy = AdaptiveR::new(config);
    let trace: Vec<u32> = occupancy_wave(steps, period, peak)
        .into_iter()
        .map(|occ| policy.observe(occ))
        .collect();
    (trace, policy.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluctrace_sim::FaultPlan;

    #[test]
    fn clean_schedule_accounts_exactly() {
        let cfg = OverloadConfig {
            items: 200,
            schedule: FaultPlan::none().schedule(200, 1),
            max_pending: 1 << 16,
            keep_bundle: false,
        };
        let r = run_overload(&cfg);
        assert!(
            r.accounting_exact(),
            "{:?} vs {:?}",
            r.report.loss,
            r.expected
        );
        assert_eq!(r.report.items_processed, 200);
        assert!(r.report.loss.samples_lost() == 0);
    }

    #[test]
    fn faulted_schedule_accounts_exactly() {
        let plan = FaultPlan {
            drop_open_per_mille: 100,
            corrupt_close_per_mille: 100,
            burst_per_mille: 100,
            burst_len: 40,
        };
        let cfg = OverloadConfig {
            items: 500,
            schedule: plan.schedule(500, 99),
            max_pending: 16, // force eviction on 42-sample bursts
            keep_bundle: false,
        };
        let r = run_overload(&cfg);
        assert!(
            r.accounting_exact(),
            "{:?} vs {:?}",
            r.report.loss,
            r.expected
        );
        assert!(
            r.report.loss.marks_orphaned > 0,
            "schedule exercised orphans"
        );
        assert!(
            r.report.loss.samples_evicted > 0,
            "schedule exercised eviction"
        );
    }

    #[test]
    fn stall_drops_exactly_the_overflow() {
        let r = run_stall(40, 8);
        assert_eq!(r.batches_dropped, r.expected_dropped);
        assert_eq!(r.batches_dropped, 40 - 1 - 8);
        // Everything that was not dropped got processed.
        assert_eq!(r.items_processed, 1 + 8);
    }

    #[test]
    fn degradation_trace_is_reproducible() {
        let (a, stats_a) = run_degradation(60, 20, 1.0, AdaptiveConfig::new());
        let (b, stats_b) = run_degradation(60, 20, 1.0, AdaptiveConfig::new());
        assert_eq!(a, b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.episodes >= 1, "the wave crosses high water");
        assert!(stats_a.peak_factor_milli > 1000);
    }
}
