//! Fig. 1 — a trace (left) vs a profile (right).
//!
//! The paper's illustrative example: a server invoking functions per
//! request. The profile shows only accumulated time per function; the
//! trace shows that function A took 90 µs for request #1 but 10 µs for
//! request #2 — the fluctuation a profile can never show.

use fluctrace_analysis::Table;
use fluctrace_core::{integrate, EstimateTable, FlatProfile, MappingMode};
use fluctrace_cpu::{
    CoreConfig, Exec, ItemId, Machine, MachineConfig, PebsConfig, SymbolTableBuilder,
};
use fluctrace_sim::Freq;

fn main() {
    fluctrace_bench::obs_support::init();
    let mut b = SymbolTableBuilder::new();
    let funcs = [b.add("A", 1024), b.add("B", 1024), b.add("C", 1024)];
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(2000));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let core = machine.core_mut(0);

    // 50 requests; request #1 hits function A cold, later ones are
    // warm. B and C are constant.
    for req in 1..=50u64 {
        core.mark_item_start(ItemId(req));
        let a_uops = if req == 1 { 270_000 } else { 30_000 };
        core.exec(Exec::new(funcs[0], a_uops).ipc_milli(1000)); // A
        core.exec(Exec::new(funcs[1], 24_000).ipc_milli(1000)); // B
        core.exec(Exec::new(funcs[2], 12_000).ipc_milli(1000)); // C
        core.mark_item_end(ItemId(req));
    }
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let estimates = EstimateTable::from_integrated(&it);
    let profile = FlatProfile::from_integrated(&it);

    println!("Fig. 1 — trace vs profile (imaginary web server)\n");
    println!("TRACE (per-request, per-function elapsed time, first 3 requests):");
    let mut trace_tbl = Table::new(vec!["request", "function", "elapsed (us)"]);
    for req in 1..=3u64 {
        if let Some(ie) = estimates.item(ItemId(req)) {
            for fe in &ie.funcs {
                trace_tbl.row(vec![
                    format!("#{req}"),
                    machine.symtab().name(fe.func).to_string(),
                    format!("{:.1}", fe.elapsed.as_us_f64()),
                ]);
            }
        }
    }
    println!("{trace_tbl}");
    let a = |req| {
        estimates
            .item(ItemId(req))
            .and_then(|ie| ie.func(funcs[0]))
            .map(|fe| fe.elapsed.as_us_f64())
            .unwrap_or(0.0)
    };
    println!(
        "=> the trace shows A fluctuating: {:.0} us for request #1, {:.0} us afterwards.\n",
        a(1),
        a(2)
    );

    println!("PROFILE (accumulated over the whole run):");
    let mut prof_tbl = Table::new(vec!["function", "total time (us)"]);
    for entry in profile.hottest() {
        prof_tbl.row(vec![
            machine.symtab().name(entry.func).to_string(),
            format!("{:.0}", entry.total_time.as_us_f64()),
        ]);
    }
    println!("{prof_tbl}");
    println!("=> the profile only shows averages; the request-#1 fluctuation is invisible.");
    fluctrace_bench::obs_support::finish();
}
