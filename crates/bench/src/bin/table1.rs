//! Table I — characteristics of the two tracing mechanisms, emitted
//! from the *actual configuration constants* of the implementation so
//! the table cannot drift from the code.

use fluctrace_analysis::Table;
use fluctrace_cpu::{PebsConfig, SwSamplerConfig};

fn main() {
    fluctrace_bench::obs_support::init();
    let pebs = PebsConfig::new(8_000);
    let sw = SwSamplerConfig::new(8_000);
    println!("Table I — characteristics by each tracing mechanism\n");
    let mut t = Table::new(vec!["", "Sampling (PEBS)", "Instrumentation (marks)"]);
    t.row(vec!["implemented by", "hardware", "software"]);
    t.row(vec![
        "overhead",
        &format!("low ({} per sample)", pebs.assist),
        "high (per invocation, software)",
    ]);
    t.row(vec!["timing", "periodic", "per each data-item"]);
    t.row(vec!["adjustable", "yes (reset value)", "no"]);
    t.row(vec![
        "what to trace",
        "pre-defined (event, IP, regs, TSC)",
        "software-controlled",
    ]);
    t.row(vec![
        "traced data includes",
        "timestamp, instruction pointer",
        "timestamp, data-item ID",
    ]);
    println!("{t}");
    println!(
        "(for contrast, software sampling pays {} of handler per sample — Fig. 4)",
        sw.handler
    );
    fluctrace_bench::obs_support::finish();
}
