//! Run every table/figure reproduction in sequence (the one-shot
//! EXPERIMENTS.md generator). Equivalent to running each `fig*` /
//! `table*` / `data_volume` / `tradeoff` binary.
//!
//! Besides the per-figure artifacts the children write, this binary
//! records an end-to-end benchmark summary — per-binary and total wall
//! time, plus integrate/estimate throughput from an in-process pipeline
//! probe — to `BENCH_analysis.json` in the artifact directory. Timing
//! lives only in that file (and on stdout): figure artifacts stay
//! byte-identical across `FLUCTRACE_THREADS` settings.

use fluctrace_bench::acl_experiment::{run_acl, AclRunConfig};
use fluctrace_bench::artifact_dir;
use serde_json::json;
use std::process::Command;
use std::time::Instant;

fn main() {
    fluctrace_bench::obs_support::init();
    let bins = [
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "fig4",
        "fig8",
        "fig9",
        "fig10",
        "data_volume",
        "tradeoff",
        "motivation",
        "tail_latency",
    ];
    // When invoked via cargo, re-running through cargo keeps the build
    // profile consistent; direct sibling invocation covers `cargo run`.
    let self_path = std::env::current_exe().expect("current exe");
    let dir = self_path.parent().expect("bin dir").to_path_buf();
    let total_start = Instant::now();
    let mut failures = Vec::new();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let start = Instant::now();
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", path.display()));
        timings.push((bin, start.elapsed().as_secs_f64()));
        if !status.success() {
            failures.push(bin);
        }
    }
    let total_wall_s = total_start.elapsed().as_secs_f64();

    // In-process probe: one profiled firewall run, reduced to the
    // analysis pipeline's wall-time/throughput counters.
    let probe = run_acl(AclRunConfig::new(Some(8_000), 200, (200, 100, 0)));
    let pipeline = probe.pipeline.expect("profiled run reports pipeline stats");

    println!("\n================ benchmark summary ================\n");
    for (bin, secs) in &timings {
        println!("  {bin:<12} {secs:>8.2} s");
    }
    println!("  {:<12} {total_wall_s:>8.2} s", "total");
    println!(
        "  pipeline probe ({} threads): integrate {:.2} Msamples/s, \
         estimate {:.2} Msamples/s",
        pipeline.threads,
        pipeline.integrate_samples_per_sec() / 1e6,
        pipeline.estimate_samples_per_sec() / 1e6,
    );

    let binaries: Vec<serde_json::Value> = timings
        .iter()
        .map(|&(bin, secs)| json!({"name": bin, "wall_s": secs}))
        .collect();
    let doc = json!({
        "total_wall_s": total_wall_s,
        "threads": pipeline.threads,
        "binaries": binaries,
        "pipeline_probe": {
            "samples": pipeline.samples,
            "intervals": pipeline.intervals,
            "interval_build_ns": pipeline.interval_build_ns,
            "attribution_ns": pipeline.attribution_ns,
            "estimate_ns": pipeline.estimate_ns,
            "integrate_samples_per_sec": pipeline.integrate_samples_per_sec(),
            "estimate_samples_per_sec": pipeline.estimate_samples_per_sec(),
        },
    });
    let out_dir = artifact_dir();
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("[artifact] create {} failed: {e}", out_dir.display());
    }
    let out_path = out_dir.join("BENCH_analysis.json");
    match serde_json::to_string_pretty(&doc) {
        Ok(body) => match std::fs::write(&out_path, body + "\n") {
            Ok(()) => println!("\n[artifact] {}", out_path.display()),
            Err(e) => eprintln!("\n[artifact] write failed: {e}"),
        },
        Err(e) => eprintln!("\n[artifact] serialize failed: {e}"),
    }

    fluctrace_bench::obs_support::finish();

    if failures.is_empty() {
        println!("\nall reproductions completed");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
