//! Run every table/figure reproduction in sequence (the one-shot
//! EXPERIMENTS.md generator). Equivalent to running each `fig*` /
//! `table*` / `data_volume` / `tradeoff` binary.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "fig4",
        "fig8",
        "fig9",
        "fig10",
        "data_volume",
        "tradeoff",
        "motivation",
        "tail_latency",
    ];
    // When invoked via cargo, re-running through cargo keeps the build
    // profile consistent; direct sibling invocation covers `cargo run`.
    let self_path = std::env::current_exe().expect("current exe");
    let dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", path.display()));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall reproductions completed");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
