//! §V.C — the reset-value trade-off: (1) sample interval is linear in
//! the reset value (strong linearity, small deviations), (2) overhead
//! is predictable from the number of samples, so a reset value can be
//! chosen for an overhead budget.

use fluctrace_analysis::{linear_fit, Table};
use fluctrace_apps::Kernel;
use fluctrace_bench::sampling_experiment::{measure_interval, Sampler};
use fluctrace_bench::Scale;
use fluctrace_core::OverheadModel;

fn main() {
    fluctrace_bench::obs_support::init();
    let uops = Scale::from_env().kernel_uops();
    println!("§V.C — choosing reset values\n");

    // (1) Linearity of interval vs reset value, per kernel.
    println!("(1) sample interval vs reset value is linear:");
    let mut t = Table::new(vec!["kernel", "slope (us/reset)", "intercept (us)", "R^2"]);
    for kernel in Kernel::ALL {
        let points: Vec<(f64, f64)> = (10..=15)
            .map(|p| {
                let reset = 1u64 << p;
                let m = measure_interval(kernel, Sampler::Pebs, reset, uops, 11);
                (reset as f64, m.mean_interval_us)
            })
            .collect();
        let fit = linear_fit(&points);
        t.row(vec![
            kernel.label().to_string(),
            format!("{:.3e}", fit.slope),
            format!("{:.3}", fit.intercept),
            format!("{:.5}", fit.r_squared),
        ]);
    }
    println!("{t}");
    println!("(paper: \"the sample intervals have a strong linearity with the reset values\")\n");

    // (2) Overhead predictability → pick a reset for a budget.
    println!("(2) reset value for a given overhead budget (ACL-like core, 4.5 G uops/s):");
    let model = OverheadModel::new(4.5e9);
    let mut t2 = Table::new(vec![
        "overhead budget",
        "min reset value",
        "sample interval",
    ]);
    for budget in [0.20, 0.10, 0.05, 0.02, 0.01] {
        let reset = model.min_reset_for_overhead(budget);
        t2.row(vec![
            format!("{:.0}%", budget * 100.0),
            reset.to_string(),
            format!("{}", model.sample_interval(reset)),
        ]);
    }
    println!("{t2}");
    fluctrace_bench::obs_support::finish();
}
