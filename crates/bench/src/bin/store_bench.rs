//! `store-bench` — compression ratio and throughput of the columnar
//! trace store, recorded to `BENCH_store.json`.
//!
//! ```text
//! store-bench                 # measure, print, write BENCH_store.json
//! store-bench --gate          # exit 1 unless compression >= floor
//! store-bench --gate --floor 5
//! store-bench --label <rev>   # entry label (default HEAD)
//! ```
//!
//! Workload size honours `FLUCTRACE_PERF_SAMPLES`; chunking honours
//! `FLUCTRACE_STORE_CHUNK`. The artifact lands in both
//! `artifacts/BENCH_store.json` and the repo-root mirror CI uploads.

use fluctrace_bench::obs_support;
use fluctrace_bench::perf_hunt::repo_root_bench_path;
use fluctrace_bench::store_experiment::measure_store;
use std::process::ExitCode;

struct Args {
    gate: bool,
    floor: f64,
    label: String,
    reps: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        gate: false,
        floor: 3.0,
        label: "HEAD".to_string(),
        reps: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gate" => args.gate = true,
            "--floor" => {
                args.floor = it
                    .next()
                    .ok_or("--floor requires a value")?
                    .parse()
                    .map_err(|e| format!("--floor: {e}"))?;
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .ok_or("--reps requires a value")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--label" => args.label = it.next().ok_or("--label requires a value")?,
            "--obs" => {
                let _ = it.next(); // handled by obs_support::obs_path
            }
            other if other.starts_with("--obs=") => {}
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    obs_support::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("store-bench: {e}");
            return ExitCode::from(2);
        }
    };

    let bench = measure_store(&args.label, args.reps);
    println!(
        "[store-bench] workload: {} samples + {} marks",
        bench.samples, bench.marks
    );
    println!(
        "[store-bench] JSON baseline {:.1} MB, columnar store {:.2} MB -> {:.1}x",
        bench.json_bytes as f64 / 1e6,
        bench.store_bytes as f64 / 1e6,
        bench.ratio_json_over_store,
    );
    println!(
        "[store-bench] suppression (locality twin): {:.2} MB -> {:.2} MB ({:.2}x, {} rows elided)",
        bench.locality_bytes as f64 / 1e6,
        bench.locality_suppressed_bytes as f64 / 1e6,
        bench.suppression_ratio,
        bench.elided,
    );
    println!(
        "[store-bench] write {:.1} MB/s, read {:.1} MB/s (min over {} reps), \
         round-trips bit-exact: {}",
        bench.write_mb_per_s, bench.read_mb_per_s, args.reps, bench.verified,
    );

    let mut ok = bench.verified;
    for path in [
        fluctrace_bench::artifact_dir().join("BENCH_store.json"),
        repo_root_bench_path("BENCH_store.json"),
    ] {
        match bench.save(&path) {
            Ok(()) => println!("[store-bench] -> {}", path.display()),
            Err(e) => {
                eprintln!("[store-bench] save: {e}");
                ok = false;
            }
        }
    }

    if args.gate {
        let (pass, detail) = bench.gate(args.floor);
        println!("[store-bench] gate: {detail}");
        ok &= pass;
    }

    if let Some(path) = obs_support::obs_path() {
        match std::fs::write(&path, fluctrace_obs::snapshot_json()) {
            Ok(()) => println!("[obs] snapshot -> {}", path.display()),
            Err(e) => eprintln!("[obs] write failed: {e}"),
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
