//! §IV.C.3 — PEBS data volume per reset value.
//!
//! Paper: 270 / 194 / 153 / 125 / 106 MB/s for reset values 8 K…24 K on
//! the ACL core; ×16 cores = 4.3…1.7 GB/s per CPU, under 4% of a
//! Xeon Platinum 8153 socket's 127.8 GB/s memory bandwidth. The
//! absolute MB/s depends on the µop rate of the authors' core; the
//! shape is `a + b/R`, which we verify by fitting.

use fluctrace_analysis::{Figure, Series, Table};
use fluctrace_bench::acl_experiment::{run_acl, AclRunConfig, PAPER_RESETS};
use fluctrace_bench::{emit, Scale};
use fluctrace_core::overhead::{fit_inverse_reset, r_squared_inverse_reset};

const PAPER_MB_S: [f64; 5] = [270.0, 194.0, 153.0, 125.0, 106.0];
const SOCKET_BW_GB_S: f64 = 127.8; // Xeon Platinum 8153, DDR4-2666 x6

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    let per_type = scale.packets_per_type();
    let table3 = scale.table3_params();

    println!("§IV.C.3 — PEBS sample data volume ({per_type} packets/type)\n");
    let mut tbl = Table::new(vec![
        "reset",
        "measured (MB/s/core)",
        "x16 cores (GB/s)",
        "% of socket BW",
        "paper (MB/s/core)",
    ]);
    let mut fig = Figure::new(
        "data_volume",
        "PEBS data volume vs reset value",
        "reset value",
        "MB/s per core",
    );
    let mut measured = Series::new("measured");
    let mut paper = Series::new("paper");
    let mut points = Vec::new();
    for (i, &reset) in PAPER_RESETS.iter().enumerate() {
        let r = run_acl(AclRunConfig::new(Some(reset), per_type, table3));
        let mb_s = r.pebs_mb_per_s();
        let cpu_gb_s = mb_s * 16.0 / 1000.0;
        tbl.row(vec![
            reset.to_string(),
            format!("{mb_s:.0}"),
            format!("{cpu_gb_s:.2}"),
            format!("{:.1}%", cpu_gb_s / SOCKET_BW_GB_S * 100.0),
            format!("{:.0}", PAPER_MB_S[i]),
        ]);
        measured.push(reset as f64, mb_s);
        paper.push(reset as f64, PAPER_MB_S[i]);
        points.push((reset, mb_s));
    }
    println!("{tbl}");

    let (a, b) = fit_inverse_reset(&points);
    let r2 = r_squared_inverse_reset(&points, a, b);
    println!(
        "volume(R) fits {a:.1} + {b:.3e}/R with R^2 = {r2:.4} (paper's own numbers \
         fit the same 1/R law; absolute level scales with the core's uop rate)"
    );
    fig.add(measured);
    fig.add(paper);
    emit(&fig);
    fluctrace_bench::obs_support::finish();
}
