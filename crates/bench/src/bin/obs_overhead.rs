//! `obs_overhead` — the tracer traces itself.
//!
//! Times the Fig. 4 workload with observability recording enabled and
//! disabled, fits the instrumented-vs-baseline slope with the same
//! through-origin least-squares machinery the paper's overhead model
//! uses ([`fluctrace_core::fit_instrumentation`]), and fails (exit 1)
//! if the fitted overhead exceeds the budget. CI runs this as the obs
//! self-overhead gate.
//!
//! Pairs are interleaved (off, on, off, on, …) so slow drift — turbo
//! state, cache warmth — lands on both sides of the fit instead of
//! biasing one.

use fluctrace_bench::figures::fig4_data;
use fluctrace_bench::Scale;
use fluctrace_core::fit_instrumentation;
use std::time::Instant;

/// Maximum tolerated obs overhead on the fig4 workload (fraction).
const BUDGET: f64 = 0.03;

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    let reps: usize = std::env::var("FLUCTRACE_OVERHEAD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    println!("obs self-overhead gate — fig4 workload, {reps} interleaved pairs\n");

    // Warm caches and the thread pool before any timed run.
    let _ = fig4_data(scale);

    let mut pairs = Vec::with_capacity(reps);
    for rep in 0..reps {
        fluctrace_obs::set_recording(false);
        let t = Instant::now();
        let _ = fig4_data(scale);
        let base_s = t.elapsed().as_secs_f64();

        fluctrace_obs::set_recording(true);
        let t = Instant::now();
        let _ = fig4_data(scale);
        let instrumented_s = t.elapsed().as_secs_f64();

        println!(
            "  pair {rep}: baseline {:.1} ms, instrumented {:.1} ms ({:+.2}%)",
            base_s * 1e3,
            instrumented_s * 1e3,
            (instrumented_s / base_s - 1.0) * 100.0
        );
        pairs.push((base_s, instrumented_s));
    }
    fluctrace_obs::set_recording(true);

    let fit = fit_instrumentation(&pairs);
    println!(
        "\nfitted slope {:.4} -> obs overhead {:.2}% (budget {:.0}%)",
        fit.slope,
        fit.overhead_fraction * 100.0,
        BUDGET * 100.0
    );
    if fit.overhead_fraction > BUDGET {
        eprintln!("FAILED: obs overhead exceeds the budget");
        std::process::exit(1);
    }
    println!("obs overhead within budget");
}
