//! Table II — evaluation environment: the paper's physical testbed vs
//! this reproduction's simulated substrate.

use fluctrace_analysis::Table;

fn main() {
    fluctrace_bench::obs_support::init();
    println!("Table II — evaluation environment\n");
    let mut t = Table::new(vec!["component", "paper", "this reproduction"]);
    t.row(vec![
        "CPU",
        "Intel Skylake (PEBS timestamps need >= Skylake)",
        "simulated 3.0 GHz Skylake-class cores (fluctrace-cpu)",
    ]);
    t.row(vec![
        "PEBS",
        "hardware, ~250 ns/sample, kernel module (simple-pebs)",
        "modelled: 250 ns assist, 1024-record buffer, 4 us handler",
    ]);
    t.row(vec![
        "NICs",
        "2 x 10 Gbps, packets looped through the firewall",
        "simulated ingress/egress schedules (fluctrace-apps::packets)",
    ]);
    t.row(vec![
        "tester",
        "GNET hardware network tester",
        "Tester actor with exact simulated timestamps",
    ]);
    t.row(vec![
        "storage",
        "SSD for PEBS dumps and instrumentation logs",
        "bandwidth-accounted sink (500 MB/s SSD model)",
    ]);
    t.row(vec![
        "DPDK",
        "real DPDK ACL sample app, patched trie limit",
        "fluctrace-acl multi-trie classifier + fluctrace-rt pipeline",
    ]);
    t.row(vec![
        "workloads",
        "SPEC CPU 2006 (astar, bzip2, gcc), NGINX + ab",
        "IPC-profiled kernel analogues; NGINX-like server model",
    ]);
    println!("{t}");
    fluctrace_bench::obs_support::finish();
}
