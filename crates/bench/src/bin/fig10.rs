//! Fig. 10 — overhead of the method vs reset value.
//!
//! Overhead for reset value `R` is `L_R − L*`: the mean packet latency
//! with profiling at `R` minus the mean latency with no profiling,
//! measured by the (simulated) hardware tester. Expected shape:
//! monotonically decreasing in `R`, small relative to the 6–14 µs
//! packet latencies at the paper's "proper" value (16 K).

use fluctrace_analysis::{assert_decreasing, Figure, Series, Table};
use fluctrace_bench::acl_experiment::{run_acl, AclRunConfig, PAPER_RESETS};
use fluctrace_bench::{emit, print_pipeline_throughput, run_sweep, Scale};
use fluctrace_core::OverheadModel;

fn main() {
    let scale = Scale::from_env();
    let per_type = scale.packets_per_type();
    let table3 = scale.table3_params();

    println!("Fig. 10 — latency overhead vs reset value ({per_type} packets/type)\n");
    // Baseline + profiled runs fan out over the worker pool (each run
    // seeds its own simulator); the table below reads results in input
    // order, so the output is identical to the old sequential loop.
    let mut configs = vec![AclRunConfig::new(None, per_type, table3)];
    configs.extend(
        PAPER_RESETS
            .iter()
            .map(|&r| AclRunConfig::new(Some(r), per_type, table3)),
    );
    let mut results = run_sweep(configs, run_acl);
    let baseline = results.remove(0);
    let l_star = baseline.mean_latency_us;

    let mut tbl = Table::new(vec![
        "reset",
        "L_R (us)",
        "overhead L_R - L* (us)",
        "model prediction (us)",
    ]);
    let mut fig = Figure::new(
        "fig10",
        "Overhead (latency increase) vs reset value",
        "reset value",
        "latency increase (us)",
    );
    let mut measured = Series::new("measured");
    let mut predicted = Series::new("model");

    // Analytic prediction from the §V.C model: the ACL thread retires
    // ~1.5 µops/cycle while classifying; overhead ≈ samples-in-packet ×
    // assist.
    let model = OverheadModel::new(1.5 * 3.0e9);
    for (r, &reset) in results.iter().zip(&PAPER_RESETS) {
        let overhead = r.mean_latency_us - l_star;
        let pred = model
            .added_latency(
                reset,
                fluctrace_sim::SimDuration::from_ns_f64(l_star * 1000.0),
            )
            .as_us_f64();
        tbl.row(vec![
            reset.to_string(),
            format!("{:.2}", r.mean_latency_us),
            format!("{overhead:.2}"),
            format!("{pred:.2}"),
        ]);
        measured.push(reset as f64, overhead);
        predicted.push(reset as f64, pred);
    }
    println!("baseline L* = {l_star:.2} us\n{tbl}");

    match assert_decreasing("overhead vs reset", &measured.ys()) {
        Ok(()) => println!("shape: overhead strictly decreases with the reset value ✓"),
        Err(e) => println!("shape: {e}"),
    }
    fig.add(measured);
    fig.add(predicted);
    print_pipeline_throughput(
        &results
            .iter()
            .filter_map(|r| r.pipeline)
            .collect::<Vec<_>>(),
    );
    emit(&fig);
}
