//! Fig. 10 — overhead of the method vs reset value.
//!
//! Overhead for reset value `R` is `L_R − L*`: the mean packet latency
//! with profiling at `R` minus the mean latency with no profiling,
//! measured by the (simulated) hardware tester. Expected shape:
//! monotonically decreasing in `R`, small relative to the 6–14 µs
//! packet latencies at the paper's "proper" value (16 K).
//!
//! Figure assembly lives in [`fluctrace_bench::figures::fig10_data`]
//! (shared with the golden tests); this bin adds the table and the
//! shape check.

use fluctrace_analysis::{assert_decreasing, Table};
use fluctrace_bench::acl_experiment::PAPER_RESETS;
use fluctrace_bench::figures::fig10_data;
use fluctrace_bench::{emit, print_pipeline_throughput, Scale};

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    let per_type = scale.packets_per_type();

    println!("Fig. 10 — latency overhead vs reset value ({per_type} packets/type)\n");
    let data = fig10_data(scale);
    let l_star = data.l_star;

    let mut tbl = Table::new(vec![
        "reset",
        "L_R (us)",
        "overhead L_R - L* (us)",
        "model prediction (us)",
    ]);
    let measured = data
        .figure
        .series("measured")
        .expect("figure has the measured series");
    let predicted = data
        .figure
        .series("model")
        .expect("figure has the model series");
    for (i, (r, &reset)) in data.results.iter().zip(&PAPER_RESETS).enumerate() {
        let overhead = measured.points[i].y;
        let pred = predicted.points[i].y;
        tbl.row(vec![
            reset.to_string(),
            format!("{:.2}", r.mean_latency_us),
            format!("{overhead:.2}"),
            format!("{pred:.2}"),
        ]);
    }
    println!("baseline L* = {l_star:.2} us\n{tbl}");

    match assert_decreasing("overhead vs reset", &measured.ys()) {
        Ok(()) => println!("shape: overhead strictly decreases with the reset value ✓"),
        Err(e) => println!("shape: {e}"),
    }
    print_pipeline_throughput(
        &data
            .results
            .iter()
            .filter_map(|r| r.pipeline)
            .collect::<Vec<_>>(),
    );
    emit(&data.figure);
    fluctrace_bench::obs_support::finish();
}
