//! §I/§II.A background, reproduced: tail latency of a query-serving
//! system under cache-warmth fluctuations.
//!
//! Huang et al. (the paper's motivating citation \[1\]) measured TPC-C on
//! MySQL/Postgres/VoltDB and found "the standard deviation was twice the
//! mean" and "the 99th percentile was an order of magnitude greater than
//! the mean". This harness drives the query-cache app with a realistic
//! mixture — mostly-warm queries plus rare cache-invalidation events —
//! and shows (a) the same headline tail statistics and (b) that the
//! hybrid tracer pins the tail on `f3` (the recompute function).

use fluctrace_analysis::{tail_report, Table};
use fluctrace_apps::QueryApp;
use fluctrace_bench::Scale;
use fluctrace_core::{detect, integrate, EstimateTable, MappingMode};
use fluctrace_cpu::{CoreConfig, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace_sim::{Freq, Rng, SimDuration};

fn main() {
    fluctrace_bench::obs_support::init();
    let n_queries: u64 = match Scale::from_env() {
        Scale::Quick => 3_000,
        Scale::Paper => 50_000,
    };
    let (symtab, funcs) = QueryApp::symtab();
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(8_000));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), symtab);
    let core = machine.core_mut(0);

    let mut app = QueryApp::new(funcs);
    let mut rng = Rng::new(0xDB);
    let mut latencies_us = Vec::with_capacity(n_queries as usize);
    // BTreeMap, not HashMap: this binary writes figure artifacts and
    // every collection on that path must iterate deterministically.
    let mut sizes = std::collections::BTreeMap::new();
    for id in 0..n_queries {
        // Occasional invalidation events (evictions, fragmentation
        // fixes); the cache then re-warms over the following queries.
        if rng.gen_bool(0.02) {
            app.flush_cache();
        }
        // Mostly small queries, occasionally large ones (skewed low).
        let n = 1 + rng.gen_below(10).min(rng.gen_below(10));
        sizes.insert(id, n);
        let t0 = core.now();
        core.mark_item_start(ItemId(id));
        app.process(core, fluctrace_apps::Query { id, n });
        core.mark_item_end(ItemId(id));
        latencies_us.push(core.now().since(t0).as_us_f64());
        core.idle(SimDuration::from_us(5));
    }

    let report = tail_report(&latencies_us).expect("non-empty");
    println!(
        "tail latency of {} queries (cache-warmth fluctuations):\n",
        report.count
    );
    let mut t = Table::new(vec!["metric", "value", "Huang et al. (TPC-C on real DBs)"]);
    t.row(vec![
        "mean".to_string(),
        format!("{:.1} us", report.mean),
        "-".into(),
    ]);
    t.row(vec![
        "std/mean".to_string(),
        format!("{:.2}", report.std_over_mean),
        "\"the standard deviation was twice the mean\"".into(),
    ]);
    t.row(vec![
        "p99/mean".to_string(),
        format!("{:.1}", report.p99_over_mean),
        "\"the 99th percentile was an order of magnitude greater\"".into(),
    ]);
    t.row(vec![
        "p50 / p99 / p999".to_string(),
        format!(
            "{:.1} / {:.1} / {:.1} us",
            report.p50, report.p99, report.p999
        ),
        "-".into(),
    ]);
    println!("{t}");

    // Diagnose: integrate and group by query size.
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let table = EstimateTable::from_integrated(&it);
    let fluct = detect(
        &table,
        |item| sizes.get(&item.0).map(|n| format!("n={n}")),
        4.0,
        SimDuration::from_us(5),
    );
    let f3_outliers = fluct.outliers_for(funcs.f3).count();
    println!(
        "detector: {} outliers flagged, {} of them on f3 (the recompute path) — \
         the tail is cache-warmth, not query size.",
        fluct.outliers.len(),
        f3_outliers
    );
    println!(
        "(direction matches Huang et al.; their magnitudes are larger because real \
         DB engines stack many fluctuation sources — locks, I/O, GC — on top of \
         cache warmth, while this app has exactly one.)"
    );
    fluctrace_bench::obs_support::finish();
}
