//! Fig. 8 — per-data-item elapsed time of each function of the sample
//! query application, obtained by the hybrid approach.
//!
//! Setup per the paper: event `UOPS_RETIRED.ALL`, reset value 8000,
//! the Fig. 7 two-thread app. Expected shape: the 1st and 5th queries
//! take much longer than other queries with the same `n`, and the extra
//! time is in `f3` (the transform-and-cache function) — information
//! service-level logging cannot give.

use fluctrace_analysis::{Figure, Series, Table};
use fluctrace_apps::{Query, QueryApp};
use fluctrace_bench::emit;
use fluctrace_core::{detect, integrate, EstimateTable, MappingMode};
use fluctrace_cpu::{CoreConfig, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace_sim::{Freq, SimDuration, SimTime};

fn main() {
    fluctrace_bench::obs_support::init();
    let (symtab, funcs) = QueryApp::symtab();
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(8_000));
    let mut machine = Machine::new(MachineConfig::new(2, core_cfg), symtab);
    let queries = QueryApp::fig8_queries();
    QueryApp::run(
        &mut machine,
        funcs,
        &queries,
        SimTime::from_us(5),
        SimDuration::from_us(200),
    );
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let table = EstimateTable::from_integrated(&it);

    println!("Fig. 8 — per-query elapsed time broken down by function (R = 8000)\n");
    let mut tbl = Table::new(vec![
        "query",
        "n",
        "f1 (us)",
        "f2 (us)",
        "f3 (us)",
        "total-marks (us)",
    ]);
    let mut fig = Figure::new(
        "fig8",
        "Per-data-item elapsed time of each function (query app)",
        "query index",
        "elapsed time (us)",
    );
    let mut s1 = Series::new("f1");
    let mut s2 = Series::new("f2");
    let mut s3 = Series::new("f3");
    let mut stot = Series::new("total");
    let fmt = |v: Option<f64>| {
        v.map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "<2 samples".into())
    };
    for q in &queries {
        let ie = table.item(ItemId(q.id));
        let of = |f| {
            ie.and_then(|ie| ie.func(f))
                .filter(|fe| fe.is_estimable())
                .map(|fe| fe.elapsed.as_us_f64())
        };
        let (e1, e2, e3) = (of(funcs.f1), of(funcs.f2), of(funcs.f3));
        let total = ie.and_then(|ie| ie.marked_total).map(|d| d.as_us_f64());
        tbl.row(vec![
            format!("#{}", q.id),
            q.n.to_string(),
            fmt(e1),
            fmt(e2),
            fmt(e3),
            fmt(total),
        ]);
        let x = q.id as f64;
        s1.push(x, e1.unwrap_or(0.0));
        s2.push(x, e2.unwrap_or(0.0));
        s3.push(x, e3.unwrap_or(0.0));
        stot.push(x, total.unwrap_or(0.0));
    }
    println!("{tbl}");

    // The stacked-bar view of the same data (the paper's actual figure).
    let mut chart =
        fluctrace_analysis::StackedBars::new(60, vec![("f1", '.'), ("f2", 'o'), ("f3", '#')]);
    for q in &queries {
        let ie = table.item(ItemId(q.id));
        let val = |f| {
            ie.and_then(|ie| ie.func(f))
                .map(|fe| fe.elapsed.as_us_f64())
                .unwrap_or(0.0)
        };
        chart.row(
            format!("#{} (n={})", q.id, q.n),
            vec![val(funcs.f1), val(funcs.f2), val(funcs.f3)],
        );
    }
    println!("{chart}");

    // The paper's reading of the figure.
    let t = |id: u64| {
        table
            .item(ItemId(id))
            .and_then(|ie| ie.marked_total)
            .unwrap()
            .as_us_f64()
    };
    println!(
        "query #1 (n=3): {:.1} us vs warm #2/#4/#8 (n=3): {:.1}/{:.1}/{:.1} us",
        t(1),
        t(2),
        t(4),
        t(8)
    );
    println!(
        "query #5 (n=5): {:.1} us vs warm #7/#9 (n=5): {:.1}/{:.1} us",
        t(5),
        t(7),
        t(9)
    );

    // Run the detector with the content grouping "same n".
    let by_n: std::collections::BTreeMap<u64, u64> =
        queries.iter().map(|q: &Query| (q.id, q.n)).collect();
    let report = detect(
        &table,
        |item| by_n.get(&item.0).map(|n| format!("n={n}")),
        3.0,
        SimDuration::from_us(2),
    );
    println!(
        "\nfluctuation detector: {} outlier(s) flagged:",
        report.outliers.len()
    );
    for o in &report.outliers {
        println!(
            "  query {} in group {} — {} took {:.1} us (group median {:.1} us)",
            o.item,
            o.group,
            machine.symtab().name(o.func),
            o.elapsed.as_us_f64(),
            o.median.as_us_f64()
        );
    }

    fig.add(s1);
    fig.add(s2);
    fig.add(s3);
    fig.add(stot);
    emit(&fig);
    fluctrace_bench::obs_support::finish();
}
