//! `perf-hunt` — run the hot-path regression hunt from the command
//! line.
//!
//! ```text
//! perf-hunt                      # measure, print the report
//! perf-hunt --gate               # exit 1 unless speedup CI >= floor
//! perf-hunt --gate --floor 1.5   # custom floor
//! perf-hunt --gate --mutant-slow # teeth check: MUST exit 1
//! perf-hunt --record [--label L] # append to artifacts/BENCH_hotpath.json
//! perf-hunt --bisect [--baseline PATH] [--slack 0.15]
//! ```
//!
//! `--bisect` compares HEAD's new-path throughput against the latest
//! recorded trajectory entry and exits 1 on a significant regression —
//! wired for `git bisect run perf-hunt --bisect`.
//!
//! Workload size honours `FLUCTRACE_PERF_SAMPLES` / `FLUCTRACE_PERF_REPS`;
//! threads honour `FLUCTRACE_THREADS`.

use fluctrace_bench::obs_support;
use fluctrace_bench::perf_hunt::{
    compare_to_baseline, default_trajectory_path, evaluate_gate, measure_depgraph,
    repo_root_bench_path, run_hunt, HuntConfig, Mutant, Trajectory,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    gate: bool,
    floor: f64,
    record: bool,
    label: String,
    bisect: bool,
    baseline: Option<PathBuf>,
    slack: f64,
    mutant_slow: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        gate: false,
        floor: 2.0,
        record: false,
        label: "HEAD".to_string(),
        bisect: false,
        baseline: None,
        slack: 0.15,
        mutant_slow: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gate" => args.gate = true,
            "--record" => args.record = true,
            "--bisect" => args.bisect = true,
            "--mutant-slow" => args.mutant_slow = true,
            "--floor" => args.floor = num(&mut it, "--floor")?,
            "--slack" => args.slack = num(&mut it, "--slack")?,
            "--label" => args.label = val(&mut it, "--label")?,
            "--baseline" => args.baseline = Some(PathBuf::from(val(&mut it, "--baseline")?)),
            "--obs" => {
                let _ = it.next(); // handled by obs_support::obs_path
            }
            other if other.starts_with("--obs=") => {}
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn val(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn num(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<f64, String> {
    val(it, flag)?.parse().map_err(|e| format!("{flag}: {e}"))
}

fn main() -> ExitCode {
    obs_support::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf-hunt: {e}");
            return ExitCode::from(2);
        }
    };

    let mut cfg = HuntConfig::from_env();
    if args.mutant_slow {
        cfg.mutant = Mutant::SlowNew(8);
        println!("[perf-hunt] MUTANT: new path deliberately slowed ~9x (teeth check)");
    }

    println!(
        "[perf-hunt] {} samples/rep, {} reps, {} thread(s), mode {:?}",
        cfg.approx_samples(),
        cfg.reps,
        cfg.threads,
        cfg.mode,
    );
    let mut report = run_hunt(&cfg);
    report.label = args.label.clone();

    println!(
        "[perf-hunt] old {:>8.3} ms (CI [{:.3}, {:.3}])  {:>7.2} Msamples/s",
        report.old_mean.slope / 1e6,
        report.old_mean.lo / 1e6,
        report.old_mean.hi / 1e6,
        report.old_samples_per_sec() / 1e6,
    );
    println!(
        "[perf-hunt] new {:>8.3} ms (CI [{:.3}, {:.3}])  {:>7.2} Msamples/s",
        report.new_mean.slope / 1e6,
        report.new_mean.lo / 1e6,
        report.new_mean.hi / 1e6,
        report.new_samples_per_sec() / 1e6,
    );
    println!(
        "[perf-hunt] old-path stages: integrate {:.2} Msamples/s, estimate {:.2} Msamples/s",
        report.old_integrate_samples_per_sec() / 1e6,
        report.old_estimate_samples_per_sec() / 1e6,
    );
    println!(
        "[perf-hunt] new-path stages: integrate {:.2} Msamples/s, estimate {:.2} Msamples/s",
        report.new_integrate_samples_per_sec() / 1e6,
        report.new_estimate_samples_per_sec() / 1e6,
    );
    println!(
        "[perf-hunt] speedup {:.2}x (95% CI [{:.2}, {:.2}]), tables byte-identical: {}",
        report.speedup.slope, report.speedup.lo, report.speedup.hi, report.verified,
    );

    let mut ok = true;

    if args.bisect {
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(default_trajectory_path);
        match Trajectory::load(&path).map(|t| t.latest().cloned()) {
            Ok(Some(base)) => {
                let out = compare_to_baseline(&report, &base, args.slack);
                println!("[perf-hunt] bisect: {}", out.detail);
                ok &= out.pass;
            }
            Ok(None) => {
                eprintln!(
                    "[perf-hunt] bisect: no baseline entries in {}",
                    path.display()
                );
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("[perf-hunt] bisect: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if args.gate {
        let out = evaluate_gate(&report, args.floor);
        println!("[perf-hunt] gate: {}", out.detail);
        ok &= out.pass;
    }

    if args.record {
        let path = default_trajectory_path();
        let entry = report.to_entry();
        match Trajectory::load(&path).and_then(|t| t.append_and_save(entry, &path)) {
            Ok(()) => {
                println!("[perf-hunt] recorded -> {}", path.display());
                // Mirror the trajectory to the repo root so the
                // committed BENCH_hotpath.json tracks every recording.
                let mirror = repo_root_bench_path("BENCH_hotpath.json");
                match std::fs::copy(&path, &mirror) {
                    Ok(_) => println!("[perf-hunt] mirrored -> {}", mirror.display()),
                    Err(e) => {
                        eprintln!("[perf-hunt] mirror: {e}");
                        ok = false;
                    }
                }
            }
            Err(e) => {
                eprintln!("[perf-hunt] record: {e}");
                ok = false;
            }
        }

        // Diagnosis-pass overhead rides along with every recording.
        let bench = measure_depgraph(&args.label, 3);
        println!(
            "[perf-hunt] depgraph: {} cases / {} items, DP {:.2} ms, \
             diagnose {:.2} ms ({:.0} ns/item)",
            bench.cases,
            bench.items_total,
            bench.run_ns_min as f64 / 1e6,
            bench.diagnose_ns_min as f64 / 1e6,
            bench.ns_per_item,
        );
        for path in [
            fluctrace_bench::artifact_dir().join("BENCH_depgraph.json"),
            repo_root_bench_path("BENCH_depgraph.json"),
        ] {
            match bench.save(&path) {
                Ok(()) => println!("[perf-hunt] depgraph bench -> {}", path.display()),
                Err(e) => {
                    eprintln!("[perf-hunt] depgraph bench: {e}");
                    ok = false;
                }
            }
        }
    }

    if let Some(path) = obs_support::obs_path() {
        // Snapshot of the pinned catalog incl. the wall-derived
        // bench.hotpath.* gauges perf-hunt just recorded.
        match std::fs::write(&path, fluctrace_obs::snapshot_json()) {
            Ok(()) => println!("[obs] snapshot -> {}", path.display()),
            Err(e) => eprintln!("[obs] write failed: {e}"),
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
