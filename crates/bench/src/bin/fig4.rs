//! Fig. 4 — achieved sample interval vs configured reset value, for
//! PEBS and a perf-like software sampler, on three SPEC-like kernels.
//!
//! Expected shape (paper): PEBS tracks the ideal line down to ~1 µs;
//! the software sampler flattens near 10 µs no matter how small the
//! reset value; kernels with different IPC sit on different lines.
//!
//! Figure assembly lives in [`fluctrace_bench::figures::fig4_data`]
//! (shared with the golden tests); this bin adds the table and the
//! shape notes.

use fluctrace_analysis::{assert_flattens, Table};
use fluctrace_apps::Kernel;
use fluctrace_bench::figures::fig4_data;
use fluctrace_bench::sampling_experiment::{measure_interval_capture, Sampler};
use fluctrace_bench::store_support;
use fluctrace_bench::{emit, Scale};

/// Reset value of the `--store` capture pass (one segment per
/// `(kernel, sampler)` pair — sweeping every reset would spill the
/// same streams at different densities for no extra coverage).
const STORE_CAPTURE_RESET: u64 = 4_096;

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    let store = store_support::store_args();

    if let Some(path) = &store.from_store {
        match store_support::replay(path) {
            Ok(bundle) => println!(
                "replayed fig4 raw trace: {} samples, {} marks",
                bundle.samples.len(),
                bundle.marks.len()
            ),
            Err(e) => {
                eprintln!("fig4 --from-store: {e}");
                std::process::exit(1);
            }
        }
        fluctrace_bench::obs_support::finish();
        return;
    }

    println!("Fig. 4 — sample interval vs reset value (event: UOPS_RETIRED.ALL)\n");
    let data = fig4_data(scale);
    let mut tbl = Table::new(vec![
        "reset",
        "sampler",
        "kernel",
        "interval (us)",
        "ideal (us)",
        "samples",
    ]);
    // Results arrive in (sampler, kernel, reset) flattening order — the
    // same nested order the table prints.
    let mut next = data.results.iter();
    for sampler in [Sampler::Pebs, Sampler::Software] {
        for kernel in Kernel::ALL {
            for &reset in &data.resets {
                let m = next.next().expect("one result per sweep config");
                tbl.row(vec![
                    reset.to_string(),
                    sampler.label().to_string(),
                    kernel.label().to_string(),
                    format!("{:.3}", m.mean_interval_us),
                    format!("{:.3}", m.ideal_us),
                    m.samples.to_string(),
                ]);
            }
        }
    }
    println!("{tbl}");

    // Shape checks mirroring the paper's claims.
    let fig = &data.figure;
    let mut notes = Vec::new();
    for kernel in Kernel::ALL {
        let perf = fig
            .series(&format!("perf/{}", kernel.label()))
            .unwrap()
            .ys();
        // Software sampling floors: going from the smallest reset
        // upward barely changes the interval at the low end.
        let mut low_end: Vec<f64> = perf.iter().take(4).rev().cloned().collect();
        low_end.reverse();
        match assert_flattens("perf floor", &low_end, 0.15) {
            Ok(()) => notes.push(format!(
                "perf/{}: flat ~{:.1} us at high rates (paper: ~10 us)",
                kernel.label(),
                perf[0]
            )),
            Err(e) => notes.push(format!("perf/{}: NOT flat ({e})", kernel.label())),
        }
        let pebs = fig
            .series(&format!("PEBS/{}", kernel.label()))
            .unwrap()
            .ys();
        notes.push(format!(
            "PEBS/{}: {:.2} us at the smallest reset (paper: \"almost 1 us\")",
            kernel.label(),
            pebs[0]
        ));
    }
    println!();
    for n in notes {
        println!("  - {n}");
    }

    if let Some(path) = &store.store {
        let captures: Vec<_> = [Sampler::Pebs, Sampler::Software]
            .into_iter()
            .flat_map(|sampler| {
                Kernel::ALL.into_iter().map(move |kernel| {
                    measure_interval_capture(
                        kernel,
                        sampler,
                        STORE_CAPTURE_RESET,
                        scale.kernel_uops(),
                        7,
                    )
                    .1
                })
            })
            .collect();
        let refs: Vec<_> = captures.iter().collect();
        store_support::spill(path, &refs);
    }

    emit(&data.figure);
    fluctrace_bench::obs_support::finish();
}
