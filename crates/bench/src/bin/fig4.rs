//! Fig. 4 — achieved sample interval vs configured reset value, for
//! PEBS and a perf-like software sampler, on three SPEC-like kernels.
//!
//! Expected shape (paper): PEBS tracks the ideal line down to ~1 µs;
//! the software sampler flattens near 10 µs no matter how small the
//! reset value; kernels with different IPC sit on different lines.

use fluctrace_analysis::{assert_flattens, Figure, Series, Table};
use fluctrace_apps::Kernel;
use fluctrace_bench::sampling_experiment::{fig4_resets, measure_interval, Sampler};
use fluctrace_bench::{emit, run_sweep, Scale};

fn main() {
    let scale = Scale::from_env();
    let uops = scale.kernel_uops();
    let resets = fig4_resets();

    println!("Fig. 4 — sample interval vs reset value (event: UOPS_RETIRED.ALL)\n");
    let mut fig = Figure::new(
        "fig4",
        "Achieved sample interval vs reset value",
        "reset value",
        "sample interval (us)",
    );
    let mut tbl = Table::new(vec![
        "reset",
        "sampler",
        "kernel",
        "interval (us)",
        "ideal (us)",
        "samples",
    ]);
    // Every (sampler, kernel, reset) measurement seeds its own machine,
    // so the whole grid fans out over the worker pool; the assembly
    // loops below consume results in the exact flattening order, keeping
    // the table and artifact byte-identical to the old nested loops.
    let mut configs = Vec::new();
    for sampler in [Sampler::Pebs, Sampler::Software] {
        for kernel in Kernel::ALL {
            for &reset in &resets {
                configs.push((sampler, kernel, reset));
            }
        }
    }
    let results = run_sweep(configs, |(sampler, kernel, reset)| {
        measure_interval(kernel, sampler, reset, uops, 7)
    });
    let mut next = results.iter();
    for sampler in [Sampler::Pebs, Sampler::Software] {
        for kernel in Kernel::ALL {
            let mut series = Series::new(format!("{}/{}", sampler.label(), kernel.label()));
            let mut ideal = Series::new(format!("ideal/{}", kernel.label()));
            for &reset in &resets {
                let m = next.next().expect("one result per sweep config");
                tbl.row(vec![
                    reset.to_string(),
                    sampler.label().to_string(),
                    kernel.label().to_string(),
                    format!("{:.3}", m.mean_interval_us),
                    format!("{:.3}", m.ideal_us),
                    m.samples.to_string(),
                ]);
                series.push(reset as f64, m.mean_interval_us);
                if sampler == Sampler::Pebs {
                    ideal.push(reset as f64, m.ideal_us);
                }
            }
            if sampler == Sampler::Pebs {
                fig.add(ideal);
            }
            fig.add(series);
        }
    }
    println!("{tbl}");

    // Shape checks mirroring the paper's claims.
    let mut notes = Vec::new();
    for kernel in Kernel::ALL {
        let perf = fig
            .series(&format!("perf/{}", kernel.label()))
            .unwrap()
            .ys();
        // Software sampling floors: going from the smallest reset
        // upward barely changes the interval at the low end.
        let mut low_end: Vec<f64> = perf.iter().take(4).rev().cloned().collect();
        low_end.reverse();
        match assert_flattens("perf floor", &low_end, 0.15) {
            Ok(()) => notes.push(format!(
                "perf/{}: flat ~{:.1} us at high rates (paper: ~10 us)",
                kernel.label(),
                perf[0]
            )),
            Err(e) => notes.push(format!("perf/{}: NOT flat ({e})", kernel.label())),
        }
        let pebs = fig
            .series(&format!("PEBS/{}", kernel.label()))
            .unwrap()
            .ys();
        notes.push(format!(
            "PEBS/{}: {:.2} us at the smallest reset (paper: \"almost 1 us\")",
            kernel.label(),
            pebs[0]
        ));
    }
    println!();
    for n in notes {
        println!("  - {n}");
    }
    emit(&fig);
}
