//! Overload robustness of the online tracer (§IV.C.3 under fault
//! injection).
//!
//! Sweeps fault rates (lost Start marks, corrupted End marks, sample
//! bursts) through the online tracer and prints the injected-vs-observed
//! loss ledger — every category must match to the unit. Also runs the
//! slow-consumer stall scenario (exact `try_submit` drop accounting) and
//! the adaptive effective-reset policy under a scripted occupancy wave.
//!
//! Artifacts (`overload.json`, `overload_degrade.json`) contain only
//! content-derived counts, so they are byte-identical across
//! `FLUCTRACE_THREADS` settings — CI diffs them.
//!
//! `overload diagnose` (or `--diagnose`) runs the DepGraph ground-truth
//! recovery sweep instead: every seeded fault scenario is diagnosed by
//! the wait-dependency walker, the per-episode explanations are
//! printed, and `depgraph.json` / `depgraph_report.json` are emitted —
//! both canonical and byte-identical across `FLUCTRACE_THREADS`.
//!
//! Figure assembly lives in
//! [`fluctrace_bench::figures::overload_data`] (shared with the golden
//! tests); this bin adds the ledger, the stall scenario, and the
//! assertions.

use fluctrace_analysis::{accounting_exact, loss_table, LossRow};
use fluctrace_bench::depgraph_experiment::{depgraph_data, explanations};
use fluctrace_bench::figures::{overload_data_with, OVERLOAD_MAX_PENDING};
use fluctrace_bench::overload_experiment::{overload_symtab, run_stall};
use fluctrace_bench::store_support;
use fluctrace_bench::{artifact_dir, emit, Scale};
use fluctrace_core::online::{OnlineConfig, OnlineTracer};
use fluctrace_sim::Freq;

/// Replay a spilled faulted stream through a fresh online tracer: the
/// store round-trip is bit-exact, so the replayed report reproduces the
/// loss ledger of the original run (batch cuts aside).
fn replay_main(path: &std::path::Path) {
    let bundle = match store_support::replay(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("overload --from-store: {e}");
            std::process::exit(1);
        }
    };
    let (symtab, _f) = overload_symtab();
    let mut cfg = OnlineConfig::new(Freq::ghz(3));
    cfg.max_pending = OVERLOAD_MAX_PENDING;
    let tracer = OnlineTracer::spawn(symtab, cfg);
    tracer.submit(bundle).expect("worker alive");
    let report = tracer.finish().expect("no worker panic in replay");
    println!(
        "replayed through the online tracer: {} items, {} samples seen, \
         {} attributed, {} lost",
        report.items_processed,
        report.samples_seen,
        report.samples_attributed,
        report.loss.samples_lost()
    );
    fluctrace_bench::obs_support::finish();
}

fn diagnose_main(scale: Scale) {
    println!("DepGraph wait-dependency diagnosis — ground-truth recovery sweep\n");
    let data = depgraph_data(scale);
    for line in explanations(&data.report) {
        println!("  {line}");
    }
    println!(
        "\n{} cases: all_recovered={} all_exact={}",
        data.report.cases.len(),
        data.all_recovered,
        data.all_exact
    );
    assert!(
        data.all_recovered && data.all_exact,
        "walker must recover every declared root with exact accounting"
    );

    emit(&data.figure);
    let report_path = artifact_dir().join("depgraph_report.json");
    let write = std::fs::create_dir_all(artifact_dir())
        .and_then(|()| std::fs::write(&report_path, data.report.to_canonical_json()));
    match write {
        Ok(()) => println!("[artifact] {}", report_path.display()),
        Err(e) => eprintln!("[artifact] write failed: {e}"),
    }
    fluctrace_bench::obs_support::finish();
}

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    if std::env::args()
        .skip(1)
        .any(|a| a == "diagnose" || a == "--diagnose")
    {
        diagnose_main(scale);
        return;
    }
    let store = store_support::store_args();
    if let Some(path) = &store.from_store {
        replay_main(path);
        return;
    }
    let items = match scale {
        Scale::Quick => 2_000,
        Scale::Paper => 20_000,
    };

    println!("§IV.C.3 under fault injection — online loss accounting ({items} items)\n");
    let data = overload_data_with(scale, store.store.is_some());
    if let Some(path) = &store.store {
        // One segment per fault-rate sweep point.
        let bundles: Vec<_> = data
            .results
            .iter()
            .filter_map(|r| r.bundle.as_ref())
            .collect();
        store_support::spill(path, &bundles);
    }

    // Ledger for the harshest sweep point. The observed side reads the
    // report's unified obs snapshot, so the ledger, the `--obs` export,
    // and the raw report fields are provably one source of truth (the
    // `ObsSection` round-trip test pins snapshot == report).
    let worst = data.results.last().expect("non-empty sweep");
    let obs = &worst.report.obs;
    let rows = vec![
        LossRow::new(
            "items processed",
            worst.expected.items_processed,
            obs.counter("core.online.items_processed"),
        ),
        LossRow::new(
            "samples seen",
            worst.expected.samples_seen,
            obs.counter("core.online.samples_seen"),
        ),
        LossRow::new(
            "marks orphaned",
            worst.expected.marks_orphaned,
            obs.counter("core.online.marks_orphaned"),
        ),
        LossRow::new(
            "marks mismatched",
            worst.expected.marks_mismatched,
            obs.counter("core.online.marks_mismatched"),
        ),
        LossRow::new(
            "samples discarded",
            worst.expected.samples_discarded,
            obs.counter("core.online.samples_discarded"),
        ),
        LossRow::new(
            "samples evicted",
            worst.expected.samples_evicted,
            obs.counter("core.online.samples_evicted"),
        ),
        LossRow::new(
            "boundary samples",
            worst.expected.boundary_samples,
            obs.counter("core.online.boundary_samples"),
        ),
    ];
    println!(
        "loss ledger at {} per-mille faults:",
        data.rates_per_mille.last().expect("non-empty sweep")
    );
    println!("{}", loss_table(&rows));
    assert!(
        accounting_exact(&rows) && data.all_exact,
        "loss accounting must match the injected schedule exactly"
    );

    // Slow-consumer stall: exact drop accounting through try_submit.
    let stall = run_stall(200, 16);
    println!(
        "stall: {} batches offered to a parked worker over a 16-batch channel -> \
         {} dropped (expected {}), {} items processed",
        200, stall.batches_dropped, stall.expected_dropped, stall.items_processed
    );
    assert_eq!(stall.batches_dropped, stall.expected_dropped);

    // Adaptive effective-reset policy under a scripted occupancy wave.
    println!(
        "adaptive-R under a triangle occupancy wave: {} episodes, peak factor {}x, \
         final factor {}x",
        data.degrade.episodes,
        data.degrade.peak_factor_milli as f64 / 1000.0,
        data.degrade.final_factor_milli as f64 / 1000.0
    );

    emit(&data.figure);
    emit(&data.degrade_figure);
    fluctrace_bench::obs_support::finish();
}
