//! Overload robustness of the online tracer (§IV.C.3 under fault
//! injection).
//!
//! Sweeps fault rates (lost Start marks, corrupted End marks, sample
//! bursts) through the online tracer and prints the injected-vs-observed
//! loss ledger — every category must match to the unit. Also runs the
//! slow-consumer stall scenario (exact `try_submit` drop accounting) and
//! the adaptive effective-reset policy under a scripted occupancy wave.
//!
//! Artifacts (`overload.json`, `overload_degrade.json`) contain only
//! content-derived counts, so they are byte-identical across
//! `FLUCTRACE_THREADS` settings — CI diffs them.

use fluctrace_analysis::{accounting_exact, loss_table, Figure, LossRow, Series};
use fluctrace_bench::overload_experiment::{
    run_degradation, run_overload, run_stall, OverloadConfig,
};
use fluctrace_bench::{emit, run_sweep, Scale};
use fluctrace_core::AdaptiveConfig;
use fluctrace_sim::FaultPlan;

const SEED: u64 = 0x0b5e_55ed;
const MAX_PENDING: usize = 64;
const BURST_LEN: u32 = 100; // > MAX_PENDING, so bursts force eviction

fn main() {
    let scale = Scale::from_env();
    let items = match scale {
        Scale::Quick => 2_000,
        Scale::Paper => 20_000,
    };

    println!("§IV.C.3 under fault injection — online loss accounting ({items} items)\n");

    // Sweep total fault rate; split evenly across the three classes.
    let rates_per_mille: Vec<u32> = vec![0, 30, 90, 150, 300];
    let configs: Vec<OverloadConfig> = rates_per_mille
        .iter()
        .map(|&rate| {
            let plan = FaultPlan {
                drop_open_per_mille: rate / 3,
                corrupt_close_per_mille: rate / 3,
                burst_per_mille: rate / 3,
                burst_len: BURST_LEN,
            };
            OverloadConfig {
                items,
                schedule: plan.schedule(items, SEED),
                max_pending: MAX_PENDING,
            }
        })
        .collect();
    let results = run_sweep(configs, |cfg| run_overload(&cfg));

    let mut fig = Figure::new(
        "overload",
        "Online loss accounting vs injected fault rate",
        "fault rate (per mille)",
        "count",
    );
    let mut lost = Series::new("samples_lost");
    let mut faulted_marks = Series::new("marks_faulted");
    let mut boundary = Series::new("boundary_samples");
    let mut processed = Series::new("items_processed");
    let mut all_exact = true;
    for (&rate, r) in rates_per_mille.iter().zip(&results) {
        let x = rate as f64;
        lost.push(x, r.report.loss.samples_lost() as f64);
        faulted_marks.push(
            x,
            (r.report.loss.marks_orphaned + r.report.loss.marks_mismatched) as f64,
        );
        boundary.push(x, r.report.loss.boundary_samples as f64);
        processed.push(x, r.report.items_processed as f64);
        all_exact &= r.accounting_exact();
    }

    // Ledger for the harshest sweep point.
    let worst = results.last().expect("non-empty sweep");
    let rows = vec![
        LossRow::new(
            "items processed",
            worst.expected.items_processed,
            worst.report.items_processed,
        ),
        LossRow::new(
            "samples seen",
            worst.expected.samples_seen,
            worst.report.samples_seen,
        ),
        LossRow::new(
            "marks orphaned",
            worst.expected.marks_orphaned,
            worst.report.loss.marks_orphaned,
        ),
        LossRow::new(
            "marks mismatched",
            worst.expected.marks_mismatched,
            worst.report.loss.marks_mismatched,
        ),
        LossRow::new(
            "samples discarded",
            worst.expected.samples_discarded,
            worst.report.loss.samples_discarded,
        ),
        LossRow::new(
            "samples evicted",
            worst.expected.samples_evicted,
            worst.report.loss.samples_evicted,
        ),
        LossRow::new(
            "boundary samples",
            worst.expected.boundary_samples,
            worst.report.loss.boundary_samples,
        ),
    ];
    println!(
        "loss ledger at {} per-mille faults:",
        rates_per_mille.last().expect("non-empty sweep")
    );
    println!("{}", loss_table(&rows));
    assert!(
        accounting_exact(&rows) && all_exact,
        "loss accounting must match the injected schedule exactly"
    );

    // Slow-consumer stall: exact drop accounting through try_submit.
    let stall = run_stall(200, 16);
    println!(
        "stall: {} batches offered to a parked worker over a 16-batch channel -> \
         {} dropped (expected {}), {} items processed",
        200, stall.batches_dropped, stall.expected_dropped, stall.items_processed
    );
    assert_eq!(stall.batches_dropped, stall.expected_dropped);

    // Adaptive effective-reset policy under a scripted occupancy wave.
    let (trace, degrade) = run_degradation(120, 40, 1.0, AdaptiveConfig::new());
    println!(
        "adaptive-R under a triangle occupancy wave: {} episodes, peak factor {}x, \
         final factor {}x",
        degrade.episodes, degrade.peak_factor, degrade.final_factor
    );
    let mut degrade_fig = Figure::new(
        "overload_degrade",
        "Adaptive effective-reset factor under scripted occupancy",
        "step",
        "thinning factor",
    );
    let mut factor = Series::new("factor");
    for (i, &v) in trace.iter().enumerate() {
        factor.push(i as f64, v as f64);
    }
    degrade_fig.add(factor);

    fig.add(lost);
    fig.add(faulted_marks);
    fig.add(boundary);
    fig.add(processed);
    emit(&fig);
    emit(&degrade_fig);
}
