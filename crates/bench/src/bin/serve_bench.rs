//! `serve-bench` — sustained daemon throughput over ≥ 64 closed
//! windows, recorded to `BENCH_serve.json`.
//!
//! ```text
//! serve-bench                 # measure, print, write BENCH_serve.json
//! serve-bench --gate          # exit 1 unless the run passes the gate
//! serve-bench --gate --floor 5000
//! serve-bench --label <rev>   # entry label (default HEAD)
//! serve-bench --seed <n>      # traffic seed (default 7)
//! ```
//!
//! The artifact lands in both `artifacts/BENCH_serve.json` and the
//! repo-root mirror CI uploads.

use fluctrace_bench::obs_support;
use fluctrace_bench::perf_hunt::repo_root_bench_path;
use fluctrace_bench::serve_experiment::measure_serve;
use std::process::ExitCode;

struct Args {
    gate: bool,
    floor: f64,
    label: String,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        gate: false,
        floor: 5000.0,
        label: "HEAD".to_string(),
        seed: 7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gate" => args.gate = true,
            "--floor" => {
                args.floor = it
                    .next()
                    .ok_or("--floor requires a value")?
                    .parse()
                    .map_err(|e| format!("--floor: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--label" => args.label = it.next().ok_or("--label requires a value")?,
            "--obs" => {
                let _ = it.next(); // handled by obs_support::obs_path
            }
            other if other.starts_with("--obs=") => {}
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    obs_support::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve-bench: {e}");
            return ExitCode::from(2);
        }
    };

    let bench = match measure_serve(&args.label, args.seed) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "[serve-bench] {} shards x {} cores, {}-item windows, ring of {}",
        bench.shards, bench.cores, bench.window_items, bench.max_windows
    );
    println!(
        "[serve-bench] {} items / {} samples in {:.1} ms -> {:.0} items/s, {:.0} samples/s",
        bench.items,
        bench.samples,
        bench.wall_ns as f64 / 1e6,
        bench.items_per_sec,
        bench.samples_per_sec,
    );
    println!(
        "[serve-bench] {} windows closed, {} evicted ({} bytes reclaimed)",
        bench.windows_closed, bench.windows_evicted, bench.evicted_bytes,
    );
    println!(
        "[serve-bench] drain==batch: {}, snapshot stable: {}, lossless: {}",
        bench.drain_matches_batch, bench.snapshot_stable, bench.verified,
    );

    let mut ok = bench.verified && bench.drain_matches_batch && bench.snapshot_stable;
    for path in [
        fluctrace_bench::artifact_dir().join("BENCH_serve.json"),
        repo_root_bench_path("BENCH_serve.json"),
    ] {
        match bench.save(&path) {
            Ok(()) => println!("[serve-bench] -> {}", path.display()),
            Err(e) => {
                eprintln!("[serve-bench] save: {e}");
                ok = false;
            }
        }
    }

    if args.gate {
        let (pass, detail) = bench.gate(args.floor);
        println!("[serve-bench] gate: {detail}");
        ok &= pass;
    }

    if let Some(path) = obs_support::obs_path() {
        match std::fs::write(&path, fluctrace_obs::snapshot_json()) {
            Ok(()) => println!("[obs] snapshot -> {}", path.display()),
            Err(e) => eprintln!("[obs] write failed: {e}"),
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
