//! Fig. 2 — per-request elapsed time of each function of NGINX.
//!
//! Paper methodology: NGINX serves the 612-byte default index page,
//! 300 K requests, one worker on one core; the run takes 44.8 s, i.e.
//! 149 µs per request. perf measures cycles per function and the
//! per-request elapsed time of function `f` is `149 µs × c_f / c_a`.
//! The punchline: **many functions take less than 4 µs per request**,
//! so instrumenting every function is far too heavy.
//!
//! We reproduce exactly that computation on the web-server model: a
//! PEBS profile gives per-function cycle shares, scaled by the measured
//! mean request time.

use fluctrace_analysis::{Figure, Series, Table};
use fluctrace_apps::WebServer;
use fluctrace_bench::{emit, Scale};
use fluctrace_core::{integrate, FlatProfile, MappingMode};
use fluctrace_cpu::{CoreConfig, Machine, MachineConfig, PebsConfig};
use fluctrace_sim::{Freq, SimDuration, SimTime};

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    let n_requests = scale.webserver_requests();
    // The paper takes the 149 µs/request figure from the plain
    // benchmark run and the per-function cycle shares from a separate
    // profiled run; we do the same so sampling dilation does not inflate
    // the quoted request time. 1 K simultaneous connections keep the
    // worker saturated, so run-time ÷ requests = mean service time.
    let (symtab, funcs) = WebServer::symtab();
    let mean_request_us = {
        let mut machine = Machine::new(MachineConfig::new(1, CoreConfig::bare()), symtab.clone());
        WebServer::run(
            &mut machine,
            funcs.clone(),
            n_requests,
            SimDuration::from_us(100),
            42,
        );
        machine.horizon().since(SimTime::ZERO).as_us_f64() / n_requests as f64
    };

    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(8_000));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), symtab);
    let out = WebServer::run(
        &mut machine,
        funcs.clone(),
        n_requests,
        SimDuration::from_us(100),
        42,
    );
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let profile = FlatProfile::from_integrated(&it);

    println!(
        "Fig. 2 — per-request elapsed time of web-server functions \
         ({n_requests} requests, mean {mean_request_us:.1} us/request; paper: 149 us)\n"
    );
    let mut tbl = Table::new(vec!["function", "share %", "per-request (us)"]);
    let mut series = Series::new("per_request_us");
    let mut under_4us = 0usize;
    let mut entries: Vec<_> = profile.hottest();
    entries.retain(|e| e.func != funcs.worker_loop);
    for (i, e) in entries.iter().enumerate() {
        // The paper's estimator: mean-request-time × cycle share.
        let per_request_us = mean_request_us * e.share;
        if per_request_us < 4.0 {
            under_4us += 1;
        }
        tbl.row(vec![
            machine.symtab().name(e.func).to_string(),
            format!("{:.2}", e.share * 100.0),
            format!("{per_request_us:.2}"),
        ]);
        series.push(i as f64, per_request_us);
    }
    println!("{tbl}");
    println!(
        "{}/{} functions take less than 4 us per request (paper: \"many functions \
         take less than 4 us\") — instrumenting each one is too heavy.",
        under_4us,
        entries.len()
    );
    println!("{} egress records checked.", out.len());

    let mut fig = Figure::new(
        "fig2",
        "Per-request elapsed time of each function of the web server",
        "function rank (hottest first)",
        "per-request elapsed time (us)",
    );
    fig.add(series);
    emit(&fig);
    fluctrace_bench::obs_support::finish();
}
