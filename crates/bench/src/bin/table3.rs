//! Table III — the installed ACL rule set: structure, count, and the
//! number of tries it builds (vanilla vs patched limit).

use fluctrace_acl::{table3_rules, AclBuildConfig, MultiTrieAcl};
use fluctrace_analysis::Table;
use fluctrace_bench::Scale;

fn main() {
    fluctrace_bench::obs_support::init();
    let (sports, dports, tail) = Scale::from_env().table3_params();
    let rules = table3_rules(sports, dports, tail);
    println!("Table III — installed ACL rules\n");
    let mut t = Table::new(vec![
        "src addr", "dst addr", "src port", "dst port", "action",
    ]);
    t.row(vec!["192.168.10.0/24", "192.168.11.0/24", "1", "1", "Drop"]);
    t.row(vec!["...", "...", "...", "...", "..."]);
    t.row(vec![
        "192.168.10.0/24",
        "192.168.11.0/24",
        &sports.to_string(),
        &dports.to_string(),
        "Drop",
    ]);
    t.row(vec![
        "192.168.10.0/24",
        "192.168.11.0/24",
        &(sports + 1).to_string(),
        &format!("1..{tail}"),
        "Drop",
    ]);
    println!("{t}");
    println!(
        "{sports} x {dports} + {tail} = {} rules (paper claims 50 000; its caption's \
         arithmetic, 666x750+500, is inconsistent — we honour the claimed totals)",
        rules.len()
    );

    let patched = MultiTrieAcl::build(&rules, AclBuildConfig::paper_patched());
    let vanilla = MultiTrieAcl::build(&rules, AclBuildConfig::vanilla());
    let mut t2 = Table::new(vec!["build", "tries", "total trie nodes"]);
    t2.row(vec![
        "patched limit (paper)".to_string(),
        patched.num_tries().to_string(),
        patched.total_nodes().to_string(),
    ]);
    t2.row(vec![
        "vanilla DPDK (max 8)".to_string(),
        vanilla.num_tries().to_string(),
        vanilla.total_nodes().to_string(),
    ]);
    println!("\n{t2}");
    println!("(paper: the 50 000-rule set is stored in 247 trie structures)");
    fluctrace_bench::obs_support::finish();
}
