//! §II.C motivation, quantified: what would it cost to get per-item,
//! per-function times with *instrumentation alone* (gprof/Vampir-style
//! marks at every function boundary), compared to the hybrid approach?
//!
//! The paper's argument: functions take single microseconds and hot
//! functions are invoked many times per item (rte_acl_classify walks
//! 247 tries), so marking every call is "too heavy", while selecting
//! which functions to instrument cannot be done before the fluctuation
//! is understood. Here both tracers run on the same ACL workload.

use fluctrace_analysis::Table;
use fluctrace_apps::{AclCostModel, Firewall, Tester};
use fluctrace_bench::Scale;
use fluctrace_cpu::{CoreConfig, Machine, MachineConfig, PebsConfig};
use fluctrace_sim::{SimDuration, SimTime};

fn run(core_cfg: CoreConfig, per_type: usize, table3: (u16, u16, u16)) -> (f64, u64) {
    let (symtab, funcs) = Firewall::symtab();
    let mut machine = Machine::new(MachineConfig::new(3, core_cfg), symtab);
    let rules = fluctrace_acl::table3_rules(table3.0, table3.1, table3.2);
    let fw = Firewall::new(
        &rules,
        fluctrace_acl::AclBuildConfig::paper_patched(),
        AclCostModel::default(),
        funcs,
    );
    let (tester, ingress) =
        Tester::send_round_robin(SimTime::from_us(10), SimDuration::from_us(60), per_type);
    let fwrun = fw.run(&mut machine, ingress);
    let report = tester.receive(&fwrun.egress);
    let (_, reports) = machine.collect();
    (report.overall_mean_us(), reports[1].func_instr_events)
}

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    let per_type = scale.packets_per_type().min(2_000);
    let table3 = scale.table3_params();

    println!("§II.C — cost of per-function instrumentation vs the hybrid approach\n");
    let (baseline, _) = run(CoreConfig::bare(), per_type, table3);
    let (hybrid, _) = run(
        CoreConfig::bare().with_pebs(PebsConfig::new(16_000)),
        per_type,
        table3,
    );
    // A cheap, memory-buffered marking call: 100 ns. rte_acl_classify
    // represents one call per trie, so a packet pays ~2x247 marks in the
    // classifier alone.
    let (full, events) = run(
        CoreConfig::bare().with_func_instrumentation(SimDuration::from_ns(100)),
        per_type,
        table3,
    );

    let mut t = Table::new(vec![
        "tracer",
        "mean latency (us)",
        "overhead (us)",
        "overhead %",
    ]);
    let mut row = |name: &str, lat: f64| {
        t.row(vec![
            name.to_string(),
            format!("{lat:.2}"),
            format!("{:.2}", lat - baseline),
            format!("{:.0}%", (lat / baseline - 1.0) * 100.0),
        ]);
    };
    row("none (baseline)", baseline);
    row("hybrid (2 marks/item + PEBS R=16K)", hybrid);
    row("full instrumentation (100 ns/boundary)", full);
    println!("{t}");
    println!(
        "full instrumentation paid {events} marking calls on the ACL core alone; \
         the hybrid tracer pays exactly 2 marks per packet and gets the same \
         per-item per-function visibility from sampling."
    );
    fluctrace_bench::obs_support::finish();
}
