//! Fig. 9 — estimated per-packet elapsed time of `rte_acl_classify`
//! vs reset value, compared against the instrumented baseline.
//!
//! Expected shape (paper): type A ≈ 12–14 µs, type C ≈ 6 µs (a >100%
//! fluctuation); hybrid estimates track the baseline, degrading (fewer
//! samples per packet → underestimation + growing error bars) as the
//! reset value rises.
//!
//! Figure assembly lives in [`fluctrace_bench::figures::fig9_data`]
//! (shared with the golden tests); this bin adds the table, the dot
//! plot, and the shape summary.

use fluctrace_analysis::Table;
use fluctrace_apps::PacketType;
use fluctrace_bench::acl_experiment::PAPER_RESETS;
use fluctrace_bench::figures::fig9_data_with;
use fluctrace_bench::store_support;
use fluctrace_bench::{emit, print_pipeline_throughput, Scale};

fn main() {
    fluctrace_bench::obs_support::init();
    let scale = Scale::from_env();
    let per_type = scale.packets_per_type();
    let store = store_support::store_args();

    if let Some(path) = &store.from_store {
        // Replay a previously spilled run instead of re-simulating.
        match store_support::replay(path) {
            Ok(bundle) => println!(
                "replayed fig9 raw trace: {} samples, {} marks",
                bundle.samples.len(),
                bundle.marks.len()
            ),
            Err(e) => {
                eprintln!("fig9 --from-store: {e}");
                std::process::exit(1);
            }
        }
        fluctrace_bench::obs_support::finish();
        return;
    }

    println!(
        "Fig. 9 — per-packet rte_acl_classify elapsed time ({} packets/type)\n",
        per_type
    );
    let data = fig9_data_with(scale, store.store.is_some());
    if let Some(path) = &store.store {
        // One segment per run: baseline first, then the reset sweep.
        let mut bundles = Vec::new();
        bundles.extend(data.baseline.bundle.as_ref());
        bundles.extend(data.results.iter().filter_map(|r| r.bundle.as_ref()));
        store_support::spill(path, &bundles);
    }
    let (baseline, results, fig) = (&data.baseline, &data.results, &data.figure);
    println!(
        "rule set: {} rules in {} tries",
        baseline.rules, baseline.tries
    );
    let mut tbl = Table::new(vec![
        "reset",
        "type",
        "mean (us)",
        "std (us)",
        "estimable/total",
    ]);
    for t in PacketType::ALL {
        let s = baseline.for_type(t);
        tbl.row(vec![
            "baseline".to_string(),
            t.label().to_string(),
            format!("{:.2}", s.classify_us.mean()),
            format!("{:.2}", s.classify_us.std_dev()),
            format!("{}/{}", s.estimable, per_type),
        ]);
    }
    for (r, &reset) in results.iter().zip(&PAPER_RESETS) {
        for t in PacketType::ALL {
            let s = r.for_type(t);
            tbl.row(vec![
                reset.to_string(),
                t.label().to_string(),
                format!("{:.2}", s.classify_us.mean()),
                format!("{:.2}", s.classify_us.std_dev()),
                format!("{}/{}", s.estimable, per_type),
            ]);
        }
    }
    println!("{tbl}");

    // Dot-plot view: estimates per type across reset values, with the
    // baseline at the left-most label row.
    let mut chart = fluctrace_analysis::DotRows::new(
        60,
        vec![("type A", 'A'), ("type B", 'B'), ("type C", 'C')],
    );
    let series_y = |name: &str, x: f64| fig.series(name).and_then(|s| s.y_at(x)).unwrap_or(0.0);
    {
        let b = &fig.series("baseline").unwrap().points;
        chart.row("baseline", vec![b[0].y, b[1].y, b[2].y]);
    }
    for &reset in &PAPER_RESETS {
        chart.row(
            format!("R={reset}"),
            vec![
                series_y("type A", reset as f64),
                series_y("type B", reset as f64),
                series_y("type C", reset as f64),
            ],
        );
    }
    println!("{chart}");

    // Shape summary.
    let a = baseline.for_type(PacketType::A).classify_us.mean();
    let c = baseline.for_type(PacketType::C).classify_us.mean();
    println!(
        "baseline fluctuation: type A {:.1} us vs type C {:.1} us — {:.0}% \
         (paper: ~12-14 us vs ~6 us, \"more than 100%\")",
        a,
        c,
        (a / c - 1.0) * 100.0
    );
    print_pipeline_throughput(
        &results
            .iter()
            .filter_map(|r| r.pipeline)
            .collect::<Vec<_>>(),
    );
    emit(&data.figure);
    fluctrace_bench::obs_support::finish();
}
