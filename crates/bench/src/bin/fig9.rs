//! Fig. 9 — estimated per-packet elapsed time of `rte_acl_classify`
//! vs reset value, compared against the instrumented baseline.
//!
//! Expected shape (paper): type A ≈ 12–14 µs, type C ≈ 6 µs (a >100%
//! fluctuation); hybrid estimates track the baseline, degrading (fewer
//! samples per packet → underestimation + growing error bars) as the
//! reset value rises.

use fluctrace_analysis::{Figure, Series, Table};
use fluctrace_apps::PacketType;
use fluctrace_bench::acl_experiment::{run_acl, AclRunConfig, PAPER_RESETS};
use fluctrace_bench::{emit, print_pipeline_throughput, run_sweep, Scale};

fn main() {
    let scale = Scale::from_env();
    let per_type = scale.packets_per_type();
    let table3 = scale.table3_params();

    println!(
        "Fig. 9 — per-packet rte_acl_classify elapsed time ({} packets/type)\n",
        per_type
    );
    let mut fig = Figure::new(
        "fig9",
        "Estimated per-packet elapsed time of rte_acl_classify",
        "reset value (baseline = instrumented)",
        "elapsed time (us)",
    );
    let mut tbl = Table::new(vec![
        "reset",
        "type",
        "mean (us)",
        "std (us)",
        "estimable/total",
    ]);

    // All six runs (instrumented baseline + five reset values) are
    // independent — each owns a freshly seeded simulator — so they fan
    // out over the worker pool. Assembly below consumes the results in
    // input order, keeping table and artifact byte-identical to the old
    // sequential loop.
    let mut configs = vec![AclRunConfig::new(None, per_type, table3)];
    configs.extend(
        PAPER_RESETS
            .iter()
            .map(|&r| AclRunConfig::new(Some(r), per_type, table3)),
    );
    let mut results = run_sweep(configs, run_acl);
    let baseline = results.remove(0);
    println!(
        "rule set: {} rules in {} tries",
        baseline.rules, baseline.tries
    );
    let mut baseline_series = Series::new("baseline");
    for t in PacketType::ALL {
        let s = baseline.for_type(t);
        tbl.row(vec![
            "baseline".to_string(),
            t.label().to_string(),
            format!("{:.2}", s.classify_us.mean()),
            format!("{:.2}", s.classify_us.std_dev()),
            format!("{}/{}", s.estimable, per_type),
        ]);
        baseline_series.push_err(0.0, s.classify_us.mean(), s.classify_us.std_dev());
    }
    fig.add(baseline_series);

    for (r, &reset) in results.iter().zip(&PAPER_RESETS) {
        for t in PacketType::ALL {
            let s = r.for_type(t);
            tbl.row(vec![
                reset.to_string(),
                t.label().to_string(),
                format!("{:.2}", s.classify_us.mean()),
                format!("{:.2}", s.classify_us.std_dev()),
                format!("{}/{}", s.estimable, per_type),
            ]);
            let name = format!("type {}", t.label());
            if fig.series(&name).is_none() {
                fig.add(Series::new(name.clone()));
            }
            let series = fig.series.iter_mut().find(|s| s.name == name).unwrap();
            series.push_err(reset as f64, s.classify_us.mean(), s.classify_us.std_dev());
        }
    }
    println!("{tbl}");

    // Dot-plot view: estimates per type across reset values, with the
    // baseline at the left-most label row.
    let mut chart = fluctrace_analysis::DotRows::new(
        60,
        vec![("type A", 'A'), ("type B", 'B'), ("type C", 'C')],
    );
    let series_y = |name: &str, x: f64| fig.series(name).and_then(|s| s.y_at(x)).unwrap_or(0.0);
    {
        let b = &fig.series("baseline").unwrap().points;
        chart.row("baseline", vec![b[0].y, b[1].y, b[2].y]);
    }
    for &reset in &PAPER_RESETS {
        chart.row(
            format!("R={reset}"),
            vec![
                series_y("type A", reset as f64),
                series_y("type B", reset as f64),
                series_y("type C", reset as f64),
            ],
        );
    }
    println!("{chart}");

    // Shape summary.
    let a = baseline.for_type(PacketType::A).classify_us.mean();
    let c = baseline.for_type(PacketType::C).classify_us.mean();
    println!(
        "baseline fluctuation: type A {:.1} us vs type C {:.1} us — {:.0}% \
         (paper: ~12-14 us vs ~6 us, \"more than 100%\")",
        a,
        c,
        (a / c - 1.0) * 100.0
    );
    print_pipeline_throughput(
        &results
            .iter()
            .filter_map(|r| r.pipeline)
            .collect::<Vec<_>>(),
    );
    emit(&fig);
}
