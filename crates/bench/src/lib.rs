//! # fluctrace-bench
//!
//! The reproduction harness. One binary per paper table/figure
//! (`cargo run -p fluctrace-bench --release --bin fig9`), built on the
//! shared experiment runners in this library, plus Criterion benchmarks
//! of the real components (`cargo bench`).
//!
//! Scale: the paper averages Fig. 9 over 10 000 packets per type and
//! sends 300 K requests at NGINX; the binaries default to a scale that
//! finishes in seconds and accept `FLUCTRACE_SCALE=paper` for the full
//! workload. Every binary prints its table *and* writes a JSON artifact
//! under `artifacts/` (override with `FLUCTRACE_ARTIFACTS`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acl_experiment;
pub mod depgraph_experiment;
pub mod figures;
pub mod obs_support;
pub mod overload_experiment;
pub mod perf_hunt;
pub mod sampling_experiment;
pub mod serve_experiment;
pub mod store_experiment;
pub mod store_support;

use std::path::PathBuf;

/// Where figure artifacts are written.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("FLUCTRACE_ARTIFACTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("artifacts"))
}

/// Experiment scale selected via `FLUCTRACE_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast default: seconds per figure.
    Quick,
    /// The paper's workload sizes (minutes).
    Paper,
}

impl Scale {
    /// Read the scale from the environment (`FLUCTRACE_SCALE=paper`).
    pub fn from_env() -> Scale {
        match std::env::var("FLUCTRACE_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Packets per type for the ACL experiments (paper: 10 000).
    pub fn packets_per_type(self) -> usize {
        match self {
            Scale::Quick => 500,
            Scale::Paper => 10_000,
        }
    }

    /// Rule-set parameters `(sports, dports, tail)` for Table III.
    ///
    /// The paper's caption says "666 × 750 + 500 = 50 000 rules", which
    /// is arithmetically inconsistent (666·750+500 = 500 000); we honour
    /// the *claimed totals* — 50 000 rules stored in 247 tries — by
    /// keeping the 666(+1) distinct source ports and using 75
    /// destination ports: 666 × 75 + 50 = 50 000. See EXPERIMENTS.md.
    pub fn table3_params(self) -> (u16, u16, u16) {
        // The 50 000-rule build takes < 0.5 s, so both scales use the
        // full 247-trie set; scales differ only in packet/request counts.
        let _ = self;
        (666, 75, 50)
    }

    /// Requests for the web-server profile (paper: 300 000).
    pub fn webserver_requests(self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Paper => 300_000,
        }
    }

    /// µops per kernel run for the sampling experiment.
    pub fn kernel_uops(self) -> u64 {
        match self {
            Scale::Quick => 20_000_000,
            Scale::Paper => 400_000_000,
        }
    }
}

/// Run a sweep of independent experiment configurations over the shared
/// worker pool and return the results **in input order**.
///
/// Each figure sweep (reset values × samplers × kernels, …) seeds its
/// own simulator, so configurations share no state and fan out freely.
/// Results are collected by index, making the output — and therefore
/// every table and JSON artifact downstream — bit-identical to running
/// the same loop sequentially. Pool size comes from `FLUCTRACE_THREADS`
/// (default: available parallelism; `1` = the old sequential behaviour).
pub fn run_sweep<T, R, F>(configs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if fluctrace_obs::recording() {
        fluctrace_obs::counter!("bench.sweep.runs").inc();
        fluctrace_obs::counter!("bench.sweep.configs").add(configs.len() as u64);
    }
    fluctrace_core::run_indexed(configs, fluctrace_core::configured_threads(), |_, c| f(c))
}

/// Print aggregate analysis-pipeline throughput for a set of runs.
///
/// Stdout only, deliberately: wall-time numbers vary run to run, so they
/// must never enter figure artifacts, which are guaranteed byte-identical
/// across `FLUCTRACE_THREADS` settings.
pub fn print_pipeline_throughput(stats: &[fluctrace_core::PipelineStats]) {
    let samples: u64 = stats.iter().map(|p| p.samples).sum();
    let integrate_ns: u64 = stats.iter().map(|p| p.integrate_ns()).sum();
    let estimate_ns: u64 = stats.iter().map(|p| p.estimate_ns).sum();
    let threads = stats.iter().map(|p| p.threads).max().unwrap_or(1);
    if samples == 0 || integrate_ns == 0 {
        return;
    }
    let per_sec = |ns: u64| {
        if ns == 0 {
            f64::INFINITY
        } else {
            samples as f64 / (ns as f64 / 1e9) / 1e6
        }
    };
    println!(
        "[pipeline] {} samples integrated on {} thread(s): \
         integrate {:.1} Msamples/s, estimate {:.1} Msamples/s",
        samples,
        threads,
        per_sec(integrate_ns),
        per_sec(estimate_ns),
    );
}

/// Print a figure's table header comment and write its artifact,
/// reporting the path (shared tail of every binary).
pub fn emit(figure: &fluctrace_analysis::Figure) {
    match figure.write_artifact(&artifact_dir()) {
        Ok(path) => println!("\n[artifact] {}", path.display()),
        Err(e) => eprintln!("\n[artifact] write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters_are_sane() {
        assert!(Scale::Quick.packets_per_type() < Scale::Paper.packets_per_type());
        let (s, d, t) = Scale::Paper.table3_params();
        let _ = Scale::Quick.table3_params();
        assert_eq!(s as u64 * d as u64 + t as u64, 50_000);
        assert_eq!(50_000usize.div_ceil(203), 247, "rules land in 247 tries");
        assert_eq!(Scale::Paper.webserver_requests(), 300_000);
    }

    #[test]
    fn default_scale_is_quick() {
        // Unless the env var is set in this test environment.
        if std::env::var("FLUCTRACE_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }
}
