//! `--store` / `--from-store` plumbing shared by the figure bins.
//!
//! Any bin that produces raw trace bundles can spill them to the
//! columnar on-disk store (`--store <path>`, one segment per run) and
//! later replay a store instead of re-running the experiment
//! (`--from-store <path>`). The store layer is transparent by
//! construction — the conformance suite pins write→read bit-exact — so
//! a replayed bundle feeds the same pipeline the live run would.
//!
//! Knobs: `FLUCTRACE_STORE_CHUNK` re-chunks files (decoded rows are
//! pinned unchanged by the metamorphic suite) and
//! `FLUCTRACE_STORE_SUPPRESS=<tolerance>` turns on redundancy
//! suppression with the given TSC tolerance.

use fluctrace_cpu::TraceBundle;
use fluctrace_store::{StoreConfig, TraceReader, TraceWriter, WriteStats};
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// Environment knob enabling redundancy suppression in bin spills.
pub const SUPPRESS_ENV: &str = "FLUCTRACE_STORE_SUPPRESS";

/// Store-related CLI arguments of a figure bin.
#[derive(Debug, Clone, Default)]
pub struct StoreArgs {
    /// `--store <path>`: spill the run's raw bundles.
    pub store: Option<PathBuf>,
    /// `--from-store <path>`: replay a store instead of running.
    pub from_store: Option<PathBuf>,
}

/// Parse `--store` / `--from-store` from `std::env::args`.
pub fn store_args() -> StoreArgs {
    let mut out = StoreArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--store" => out.store = args.next().map(PathBuf::from),
            "--from-store" => out.from_store = args.next().map(PathBuf::from),
            _ => {}
        }
    }
    out
}

/// The spill configuration: chunking from `FLUCTRACE_STORE_CHUNK`,
/// suppression from [`SUPPRESS_ENV`].
pub fn spill_config() -> StoreConfig {
    let mut cfg = StoreConfig::from_env();
    if let Some(tol) = std::env::var(SUPPRESS_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        cfg.suppress = true;
        cfg.tolerance = tol;
    }
    cfg
}

/// Write `bundles` to `path`, one segment per bundle, and print a
/// summary line. Errors are reported, not fatal — spilling is a side
/// channel of the figure run.
pub fn spill(path: &Path, bundles: &[&TraceBundle]) {
    match write_segments(path, bundles, spill_config()) {
        Ok(stats) => println!(
            "[store] {}: {} segment(s), {} samples (+{} elided), {} marks, {} bytes",
            path.display(),
            bundles.len(),
            stats.samples,
            stats.elided,
            stats.marks,
            stats.bytes
        ),
        Err(e) => eprintln!("[store] write {} failed: {e}", path.display()),
    }
}

/// Write `bundles` to `path` as consecutive segments under `config`,
/// returning the summed stats.
pub fn write_segments(
    path: &Path,
    bundles: &[&TraceBundle],
    config: StoreConfig,
) -> Result<WriteStats, String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut sink = BufWriter::new(file);
    let mut total = WriteStats::default();
    for bundle in bundles {
        let mut w = TraceWriter::new(&mut sink, config).map_err(|e| e.to_string())?;
        w.append(bundle).map_err(|e| e.to_string())?;
        let (_, stats) = w.finish().map_err(|e| e.to_string())?;
        total.samples += stats.samples;
        total.marks += stats.marks;
        total.elided += stats.elided;
        total.chunks += stats.chunks;
        total.bytes += stats.bytes;
    }
    use std::io::Write as _;
    sink.flush().map_err(|e| format!("flush: {e}"))?;
    Ok(total)
}

/// Open `path` and read everything back: the per-segment table, the
/// merged totals, and the elision ledger. Returns the merged bundle so
/// bins can feed it back into their pipeline.
pub fn replay(path: &Path) -> Result<TraceBundle, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut reader = TraceReader::open(file).map_err(|e| e.to_string())?;
    println!(
        "[store] {}: {} segment(s)",
        path.display(),
        reader.segments()
    );
    for (i, seg) in reader.segment_meta().iter().enumerate() {
        let f = &seg.footer;
        let (samples, marks) = f.logical_rows();
        println!(
            "  segment {i}: {} samples, {} marks, {} chunk(s), suppress={}",
            samples,
            marks,
            f.chunks.len(),
            f.suppress
        );
    }
    let (samples, marks) = reader.logical_rows();
    if let Some((lo, hi)) = reader.sample_tsc_bounds() {
        println!("  tsc span: [{lo}, {hi}]");
    }
    let (_, elision) = reader.read_retained().map_err(|e| e.to_string())?;
    let bundle = reader.read_bundle().map_err(|e| e.to_string())?;
    println!(
        "  replayed {} samples ({} reconstructed from ledgers) + {} marks",
        samples, elision.elided, marks
    );
    debug_assert_eq!(bundle.samples.len() as u64, samples);
    debug_assert_eq!(bundle.marks.len() as u64, marks);
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluctrace_cpu::{CoreId, HwEvent, ItemId, MarkKind, MarkRecord, PebsRecord, VirtAddr};

    fn bundle(seed: u64) -> TraceBundle {
        let mut b = TraceBundle::default();
        for i in 0..200u64 {
            b.samples.push(PebsRecord {
                core: CoreId((i % 2) as u32),
                tsc: seed + i * 50,
                ip: VirtAddr(4096 + (i % 7) * 16),
                r13: i / 3,
                event: HwEvent::UopsRetired,
            });
            if i % 20 == 0 {
                b.marks.push(MarkRecord {
                    core: CoreId(0),
                    tsc: seed + i * 50,
                    item: ItemId(i),
                    kind: MarkKind::Start,
                });
            }
        }
        b
    }

    #[test]
    fn spill_and_replay_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("fluctrace-store-{}", std::process::id()));
        let path = dir.join("spill.flt");
        let (a, b) = (bundle(1_000), bundle(900_000));
        let stats = write_segments(&path, &[&a, &b], StoreConfig::default()).unwrap();
        assert_eq!(stats.samples, 400);
        let replayed = replay(&path).unwrap();
        let mut expect = a;
        expect.merge(b);
        assert_eq!(replayed.samples, expect.samples);
        assert_eq!(replayed.marks, expect.marks);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
