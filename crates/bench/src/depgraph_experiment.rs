//! Ground-truth recovery sweep for the DepGraph diagnosis pass.
//!
//! Every case injects a *declared* root cause into an otherwise-clean
//! bounded pipeline via [`DepPlan`] — a degraded stage or an arrival
//! burst, with the anomaly window shifted by the seed — runs the exact
//! bounded-ring DP ([`run_bounded`]) and the walker
//! ([`fluctrace_core::depgraph::diagnose`]), and checks that the walker
//! names the declared cause back, the way the overload experiment
//! proves `LossStats` exact against injected fault counts.
//!
//! Recovery is strict: a case counts as recovered only if the run
//! produced at least one anomaly episode, *every* episode's root
//! matches the declared `(stage, cause)`, and the per-cause wait
//! accounting sums exactly to the observed wait
//! ([`Diagnosis::accounting_exact`]).
//!
//! Everything here is a pure function of the case list, so the emitted
//! figure and canonical report are byte-identical across
//! `FLUCTRACE_THREADS` settings — CI diffs the report across thread
//! counts.

use crate::{run_sweep, Scale};
use fluctrace_analysis::{Figure, Series};
use fluctrace_core::depgraph::{diagnose, DepgraphConfig, Diagnosis};
use fluctrace_rt::bounded::{run_bounded, BoundedRun, BoundedSpec, BoundedStage};
use fluctrace_sim::{DeclaredRootCause, DepPlan, DepScenario, DepSchedule};
use serde::Serialize;

/// Schema tag of the exported recovery report.
pub const REPORT_SCHEMA: &str = "fluctrace.depgraph_report.v1";

/// One labeled sweep case.
#[derive(Debug, Clone)]
pub struct DepCase {
    /// Stable label used in the figure and report.
    pub label: String,
    /// The scenario to inject.
    pub plan: DepPlan,
    /// Window-shift seed.
    pub seed: u64,
}

/// Outcome of one case.
#[derive(Debug, Clone, Serialize)]
pub struct CaseResult {
    /// Case label.
    pub label: String,
    /// Declared root stage.
    pub declared_stage: u32,
    /// Declared root cause label.
    pub declared_cause: String,
    /// Anomaly episodes the walker found.
    pub episodes: u64,
    /// True when every episode recovered the declared root.
    pub recovered: bool,
    /// True when per-cause wait cycles summed exactly to observed wait.
    pub accounting_exact: bool,
    /// The full diagnosis.
    pub diagnosis: Diagnosis,
}

/// The canonical machine-checkable report of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DepgraphReport {
    /// Schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Per-case outcomes, in case order.
    pub cases: Vec<CaseResult>,
}

impl DepgraphReport {
    /// Canonical JSON (declaration-ordered fields, `BTreeMap` maps).
    pub fn to_canonical_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).unwrap_or_default();
        out.push('\n');
        out
    }
}

/// Everything the `overload --diagnose` mode emits.
#[derive(Debug, Clone)]
pub struct DepgraphData {
    /// Recovery figure (one point per case).
    pub figure: Figure,
    /// Canonical per-case report.
    pub report: DepgraphReport,
    /// Every case recovered its declared root.
    pub all_recovered: bool,
    /// Every case's accounting was exact.
    pub all_exact: bool,
}

/// Build the bounded-pipeline spec a schedule describes (stage `s`
/// runs on core `s`).
pub fn spec_of(schedule: &DepSchedule, ring_capacity: usize) -> BoundedSpec {
    BoundedSpec {
        ring_capacity,
        arrivals: schedule.arrivals.clone(),
        stages: schedule
            .services
            .iter()
            .enumerate()
            .map(|(s, service)| BoundedStage {
                core: s as u32,
                service: service.clone(),
            })
            .collect(),
    }
}

/// Materialize, run and diagnose one case.
pub fn run_case(case: &DepCase) -> (BoundedRun, Diagnosis) {
    let schedule = case.plan.schedule(case.seed);
    let run = run_bounded(&spec_of(&schedule, case.plan.ring_capacity));
    let diagnosis = diagnose(&run, &DepgraphConfig::new());
    (run, diagnosis)
}

/// True when the diagnosis names the declared root back: at least one
/// episode, and every episode's `(root_stage, root_cause)` matches.
pub fn recovered(diagnosis: &Diagnosis, declared: &DeclaredRootCause) -> bool {
    !diagnosis.episodes.is_empty()
        && diagnosis
            .episodes
            .iter()
            .all(|ep| ep.root_cause == declared.cause.as_str() && ep.root_stage == declared.stage)
}

/// The labeled sweep: degraded stages at several depths and ring
/// capacities (small capacities force the walker through a ring-full
/// backpressure chain) plus arrival bursts, each at a couple of
/// window-shift seeds.
pub fn depgraph_cases(scale: Scale) -> Vec<DepCase> {
    let items = match scale {
        Scale::Quick => 240,
        Scale::Paper => 2_400,
    };
    let win = |from: usize, to: usize| match scale {
        Scale::Quick => (from, to),
        Scale::Paper => (from * 10, to * 10),
    };
    let mut cases = Vec::new();
    let mut push = |label: &str, seed: u64, plan: DepPlan| {
        cases.push(DepCase {
            label: format!("{label}/seed{seed}"),
            plan,
            seed,
        });
    };

    // Degraded source stage: queueing shows up directly at stage 0.
    let (from, to) = win(60, 100);
    for seed in [1, 6] {
        push(
            "degraded-s0-c64",
            seed,
            DepPlan {
                stages: 3,
                items,
                base_service: 100,
                arrival_gap: 150,
                ring_capacity: 64,
                scenario: DepScenario::DegradedStage {
                    stage: 0,
                    factor_milli: 5_000,
                    from,
                    to,
                },
            },
        );
    }

    // Degraded middle stage behind a roomy ring: handoff queueing
    // concentrates at the degraded stage itself.
    let (from, to) = win(80, 130);
    for seed in [2, 5] {
        push(
            "degraded-s1-c64",
            seed,
            DepPlan {
                stages: 3,
                items,
                base_service: 100,
                arrival_gap: 150,
                ring_capacity: 64,
                scenario: DepScenario::DegradedStage {
                    stage: 1,
                    factor_milli: 6_000,
                    from,
                    to,
                },
            },
        );
    }

    // Degraded last stage behind tiny rings: backpressure chains
    // upstream and the walker must hop ring-full links to the root.
    let (from, to) = win(50, 90);
    for seed in [3, 7] {
        push(
            "degraded-s2-c4",
            seed,
            DepPlan {
                stages: 3,
                items,
                base_service: 100,
                arrival_gap: 150,
                ring_capacity: 4,
                scenario: DepScenario::DegradedStage {
                    stage: 2,
                    factor_milli: 6_000,
                    from,
                    to,
                },
            },
        );
    }

    // Deep pipeline, capacity-2 rings, degraded stage 3 of 4.
    let (from, to) = win(70, 110);
    push(
        "degraded-s3-c2",
        4,
        DepPlan {
            stages: 4,
            items,
            base_service: 100,
            arrival_gap: 160,
            ring_capacity: 2,
            scenario: DepScenario::DegradedStage {
                stage: 3,
                factor_milli: 5_000,
                from,
                to,
            },
        },
    );

    // Arrival bursts: equal service, roomy rings — no ring-full edge
    // exists, so the walk must stop at the source stage.
    let (from, to) = win(100, 130);
    for seed in [0, 5] {
        push(
            "burst-c64",
            seed,
            DepPlan {
                stages: 3,
                items,
                base_service: 100,
                arrival_gap: 200,
                ring_capacity: 64,
                scenario: DepScenario::ArrivalBurst { from, to },
            },
        );
    }

    cases
}

/// Run the full sweep (fanned out over the shared pool, results in
/// case order) and assemble figure + canonical report.
pub fn depgraph_data(scale: Scale) -> DepgraphData {
    let cases = depgraph_cases(scale);
    let results: Vec<CaseResult> = run_sweep(cases, |case| {
        let declared = case.plan.declared();
        let (run, diagnosis) = run_case(&case);
        CaseResult {
            label: case.label,
            declared_stage: declared.stage,
            declared_cause: declared.cause.as_str().to_string(),
            episodes: diagnosis.episodes.len() as u64,
            recovered: recovered(&diagnosis, &declared),
            accounting_exact: diagnosis.accounting_exact(&run),
            diagnosis,
        }
    });

    let mut fig = Figure::new(
        "depgraph",
        "DepGraph root-cause recovery over the seeded fault sweep",
        "case index",
        "recovered (1) / episodes",
    );
    let mut rec = Series::new("recovered");
    let mut exact = Series::new("accounting_exact");
    let mut episodes = Series::new("episodes");
    for (i, r) in results.iter().enumerate() {
        rec.push(i as f64, if r.recovered { 1.0 } else { 0.0 });
        exact.push(i as f64, if r.accounting_exact { 1.0 } else { 0.0 });
        episodes.push(i as f64, r.episodes as f64);
    }
    fig.add(rec).add(exact).add(episodes);

    let all_recovered = results.iter().all(|r| r.recovered);
    let all_exact = results.iter().all(|r| r.accounting_exact);
    DepgraphData {
        figure: fig,
        report: DepgraphReport {
            schema: REPORT_SCHEMA.to_string(),
            cases: results,
        },
        all_recovered,
        all_exact,
    }
}

/// One-line summaries for stdout (`overload --diagnose`).
pub fn explanations(report: &DepgraphReport) -> Vec<String> {
    report
        .cases
        .iter()
        .flat_map(|c| {
            c.diagnosis
                .episodes
                .iter()
                .map(move |ep| format!("{}: {}", c.label, ep.explanation))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_recovers_every_declared_root_exactly() {
        let data = depgraph_data(Scale::Quick);
        for case in &data.report.cases {
            assert!(
                case.recovered,
                "{}: declared {} at stage {} not recovered: {:?}",
                case.label,
                case.declared_cause,
                case.declared_stage,
                case.diagnosis
                    .episodes
                    .iter()
                    .map(|e| &e.explanation)
                    .collect::<Vec<_>>()
            );
            assert!(case.accounting_exact, "{}: accounting drift", case.label);
            assert!(case.episodes >= 1);
        }
        assert!(data.all_recovered && data.all_exact);
    }

    #[test]
    fn chain_cases_actually_walk_a_ring_full_chain() {
        let data = depgraph_data(Scale::Quick);
        let chained = data
            .report
            .cases
            .iter()
            .filter(|c| c.label.starts_with("degraded-s2-c4") || c.label.starts_with("degraded-s3"))
            .flat_map(|c| c.diagnosis.episodes.iter())
            .any(|ep| ep.chain.iter().any(|l| l.cause == "ring_full"));
        assert!(chained, "small-ring cases never exercised the chain walk");
    }

    #[test]
    fn report_is_reproducible() {
        let a = depgraph_data(Scale::Quick);
        let b = depgraph_data(Scale::Quick);
        assert_eq!(a.report.to_canonical_json(), b.report.to_canonical_json());
        assert_eq!(a.figure.to_json(), b.figure.to_json());
        assert!(a.report.to_canonical_json().contains(REPORT_SCHEMA));
    }
}
