//! Shared machinery for the sample-interval experiment (Fig. 4):
//! run a kernel under PEBS or the software sampler at a given reset
//! value and measure the achieved mean sample interval.

use fluctrace_apps::{Kernel, KernelFuncs};
use fluctrace_cpu::{CoreConfig, Machine, MachineConfig, PebsConfig, SwSamplerConfig};
use fluctrace_sim::Freq;

/// Which sampling mechanism to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// Hardware PEBS (≈250 ns per sample, buffered).
    Pebs,
    /// perf-style software sampling (≈10 µs interrupt per sample).
    Software,
}

impl Sampler {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Sampler::Pebs => "PEBS",
            Sampler::Software => "perf",
        }
    }
}

/// Result of one (kernel, sampler, reset) measurement.
#[derive(Debug, Clone, Copy)]
pub struct IntervalMeasurement {
    /// Achieved mean sample interval, µs.
    pub mean_interval_us: f64,
    /// Samples taken.
    pub samples: u64,
    /// The ideal interval for this kernel and reset (reset ÷ µop rate), µs.
    pub ideal_us: f64,
}

/// Run `kernel` for `total_uops` under the given sampler and reset
/// value; returns the achieved mean sample interval.
pub fn measure_interval(
    kernel: Kernel,
    sampler: Sampler,
    reset: u64,
    total_uops: u64,
    seed: u64,
) -> IntervalMeasurement {
    measure_interval_capture(kernel, sampler, reset, total_uops, seed).0
}

/// [`measure_interval`], also returning the raw trace bundle (for
/// `--store` spill in the Fig. 4 bin).
pub fn measure_interval_capture(
    kernel: Kernel,
    sampler: Sampler,
    reset: u64,
    total_uops: u64,
    seed: u64,
) -> (IntervalMeasurement, fluctrace_cpu::TraceBundle) {
    let (symtab, funcs) = KernelFuncs::symtab();
    let mut core_cfg = CoreConfig::bare();
    match sampler {
        Sampler::Pebs => core_cfg.pebs = Some(PebsConfig::new(reset)),
        Sampler::Software => core_cfg.swsample = Some(SwSamplerConfig::new(reset)),
    }
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg).with_seed(seed), symtab);
    let mut core = machine.take_core(0);
    kernel.run(&mut core, &funcs, total_uops, seed);
    core.finish();
    let bundle = core.take_bundle();
    let freq = core.freq();
    let samples = bundle.samples.len() as u64;
    let mean_interval_us = if samples >= 2 {
        let first = bundle.samples.first().unwrap().tsc;
        let last = bundle.samples.last().unwrap().tsc;
        freq.cycles_to_dur(last - first).as_us_f64() / (samples - 1) as f64
    } else {
        f64::NAN
    };
    let ideal_us = reset as f64 / kernel.uops_per_sec(Freq::ghz(3).as_hz()) * 1e6;
    let m = IntervalMeasurement {
        mean_interval_us,
        samples,
        ideal_us,
    };
    (m, bundle)
}

/// The reset-value sweep of Fig. 4 (powers of two, 2⁹..2¹⁶).
pub fn fig4_resets() -> Vec<u64> {
    (9..=16).map(|p| 1u64 << p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pebs_tracks_the_ideal_interval() {
        for kernel in Kernel::ALL {
            let m = measure_interval(kernel, Sampler::Pebs, 16_384, 10_000_000, 1);
            // PEBS achieved ≈ ideal + 250ns assist.
            assert!(
                (m.mean_interval_us - m.ideal_us - 0.25).abs() < 0.4,
                "{}: achieved {} vs ideal {}",
                kernel.label(),
                m.mean_interval_us,
                m.ideal_us
            );
        }
    }

    #[test]
    fn software_floors_near_10us() {
        // Even at an aggressive rate the software sampler cannot beat
        // its handler cost (the Fig. 4 flat line).
        for reset in [512u64, 1024, 4096] {
            let m = measure_interval(Kernel::Bzip2, Sampler::Software, reset, 5_000_000, 2);
            assert!(
                m.mean_interval_us >= 9.5,
                "reset {reset}: interval {} µs",
                m.mean_interval_us
            );
        }
    }

    #[test]
    fn pebs_reaches_sub_2us_intervals() {
        let m = measure_interval(Kernel::Bzip2, Sampler::Pebs, 1_024, 5_000_000, 3);
        assert!(m.mean_interval_us < 1.0, "{}", m.mean_interval_us);
        assert!(m.samples > 1000);
    }

    #[test]
    fn kernels_differ_at_the_same_reset() {
        let astar = measure_interval(Kernel::Astar, Sampler::Pebs, 8_192, 10_000_000, 4);
        let bzip2 = measure_interval(Kernel::Bzip2, Sampler::Pebs, 8_192, 10_000_000, 4);
        assert!(astar.mean_interval_us > bzip2.mean_interval_us * 1.3);
    }
}
