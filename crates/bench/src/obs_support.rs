//! Shared `--obs` plumbing for the figure binaries.
//!
//! Every bin calls [`init`] first (installs the wall clock so the span
//! journal carries real nanoseconds) and [`finish`] last; when
//! `--obs <path>` is on the command line, `finish` runs the
//! deterministic [`obs_probe`] and writes the canonical JSON snapshot
//! of the process-wide registry to that path.
//!
//! The snapshot is byte-identical across runs and `FLUCTRACE_THREADS`
//! settings: the registry records only deterministic quantities (event
//! counts, sim-TSC cycle widths, sizes — never wall-clock durations),
//! and the probe drives every subsystem with fixed seeds. The
//! `obs_snapshot` integration test and the conformance golden pin this.

use crate::acl_experiment::{run_acl, AclRunConfig};
use crate::overload_experiment::{run_degradation, run_overload, OverloadConfig};
use fluctrace_core::AdaptiveConfig;
use fluctrace_sim::FaultPlan;
use std::path::{Path, PathBuf};

/// Seed for the probe's fault schedule.
const PROBE_SEED: u64 = 0x0b5e_0b5e;

/// Install the wall clock for the span journal. Call first in `main`;
/// library and test code must never call this (ticks stay sim-domain
/// there so flight-recorder output is reproducible).
pub fn init() {
    fluctrace_obs::install_wall_clock();
}

/// Parse `--obs <path>` / `--obs=<path>` from the command line.
pub fn obs_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--obs" {
            let p = args.next().expect("--obs requires a path argument");
            return Some(PathBuf::from(p));
        }
        if let Some(p) = a.strip_prefix("--obs=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Exercise every instrumented subsystem with fixed inputs so an
/// `--obs` snapshot has a nonzero, reproducible value for each catalog
/// section regardless of which figure the host bin computes.
pub fn obs_probe() {
    // ACL pipeline: integrate / estimate / parallel plus rt stages and
    // Pipeline::run, all in the sim-clock domain.
    let _ = run_acl(AclRunConfig::new(Some(8_000), 40, (200, 100, 0)));

    // Online tracer over a faulted replay: the whole loss ledger. The
    // single worker drains batches in submission order (blocking
    // submit), so its report — and the bulk-added totals — are exact.
    let plan = FaultPlan {
        drop_open_per_mille: 100,
        corrupt_close_per_mille: 100,
        burst_per_mille: 100,
        burst_len: 40,
    };
    let cfg = OverloadConfig {
        items: 200,
        schedule: plan.schedule(200, PROBE_SEED),
        max_pending: 16,
        keep_bundle: false,
    };
    let r = run_overload(&cfg);
    assert!(r.accounting_exact(), "probe replay must account exactly");

    // Adaptive effective-reset policy over a scripted occupancy wave.
    let _ = run_degradation(60, 20, 1.0, AdaptiveConfig::new());

    // A batched stage (the firewall path in `run_acl` uses per-item
    // stages only): a backlog of 6 items bursts through in groups of 4.
    let mut b = fluctrace_cpu::SymbolTableBuilder::new();
    let poll = b.add("probe_poll", 512);
    let work = b.add("probe_work", 2048);
    let mut core = fluctrace_cpu::Core::new(
        fluctrace_cpu::CoreId(0),
        fluctrace_cpu::CoreConfig::bare(),
        b.build().into_shared(),
        fluctrace_sim::Rng::new(PROBE_SEED),
    );
    let input = fluctrace_rt::timed::arrival_schedule(
        fluctrace_sim::SimTime::ZERO,
        fluctrace_sim::SimDuration::ZERO,
        6,
        |i| i as u64,
    );
    let out = fluctrace_rt::stage::run_stage_batched(
        &mut core,
        input,
        fluctrace_rt::StageOpts::new(poll),
        4,
        |core, batch| {
            core.exec(fluctrace_cpu::Exec::new(work, 1_000 * batch.len() as u64));
            batch
        },
    );
    assert_eq!(out.len(), 6);

    // The lock-free ring, single-threaded so stall counts are exact:
    // the 9th push stalls on the full ring, the final pop observes it
    // empty. The stall run and the empty pop each open a typed wait
    // edge that the handle Drop closes, so `rt.wait.*` is nonzero.
    let (mut tx, mut rx) = fluctrace_rt::spsc_ring::<u64>(8);
    for i in 0..9 {
        let _ = tx.push(i);
    }
    while rx.pop().is_some() {}
    drop((tx, rx));

    // A bounded three-stage pipeline with a slow middle stage: the DP
    // offers deterministic stage-handoff / ring-full / ring-empty wait
    // edges (the DepGraph diagnosis substrate).
    let run = fluctrace_rt::run_bounded(&fluctrace_rt::BoundedSpec {
        ring_capacity: 2,
        arrivals: (0..12).map(|i| i * 40).collect(),
        stages: (0..3)
            .map(|s| fluctrace_rt::BoundedStage {
                core: s,
                service: vec![if s == 1 { 90 } else { 30 }; 12],
            })
            .collect(),
    });
    assert_eq!(run.items(), 12);
}

/// Write the registry snapshot as canonical JSON, creating parent
/// directories as needed.
pub fn write_snapshot(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, fluctrace_obs::snapshot_json())
}

/// Bin tail: when `--obs` was requested, run the probe and write the
/// snapshot, reporting the path like `emit` does for figure artifacts.
pub fn finish() {
    if let Some(path) = obs_path() {
        obs_probe();
        match write_snapshot(&path) {
            Ok(()) => println!("\n[obs] {}", path.display()),
            Err(e) => eprintln!("\n[obs] write failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_path_accepts_both_flag_forms() {
        // No --obs on the test binary's own command line.
        assert_eq!(obs_path(), None);
    }
}
