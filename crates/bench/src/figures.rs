//! Figure construction shared between the CLI bins and the conformance
//! golden tests.
//!
//! Each function here runs the experiment sweep and assembles the exact
//! `Figure` the corresponding bin emits to `artifacts/<id>.json` — the
//! bins only add stdout reporting (tables, shape notes, throughput) on
//! top of the returned data. Keeping assembly here means the golden
//! suite in `crates/conformance` snapshots the same bytes the bins
//! write, without shelling out to them.
//!
//! All figures are content-derived (no wall-clock, no host state), so
//! for a fixed [`Scale`] they are byte-identical across
//! `FLUCTRACE_THREADS` settings and across runs.

use crate::acl_experiment::{run_acl, AclRunConfig, AclRunResult, PAPER_RESETS};
use crate::overload_experiment::{run_degradation, run_overload, OverloadConfig, OverloadResult};
use crate::sampling_experiment::{fig4_resets, measure_interval, IntervalMeasurement, Sampler};
use crate::{run_sweep, Scale};
use fluctrace_analysis::{Figure, Series};
use fluctrace_apps::{Kernel, PacketType};
use fluctrace_core::{AdaptiveConfig, DegradeStats, OverheadModel};
use fluctrace_sim::FaultPlan;

/// Fig. 4 sweep output: the figure plus the raw grid of measurements in
/// `(sampler, kernel, reset)` flattening order for table rendering.
pub struct Fig4Data {
    /// Reset values swept (ascending powers of two).
    pub resets: Vec<u64>,
    /// One measurement per `(sampler, kernel, reset)` grid point, in
    /// the same nested order the table prints.
    pub results: Vec<IntervalMeasurement>,
    /// The `fig4` artifact.
    pub figure: Figure,
}

/// Build Fig. 4 — achieved sample interval vs configured reset value,
/// PEBS vs a perf-like software sampler, across the kernels.
pub fn fig4_data(scale: Scale) -> Fig4Data {
    let uops = scale.kernel_uops();
    let resets = fig4_resets();
    let mut fig = Figure::new(
        "fig4",
        "Achieved sample interval vs reset value",
        "reset value",
        "sample interval (us)",
    );
    // Every (sampler, kernel, reset) measurement seeds its own machine,
    // so the whole grid fans out over the worker pool; assembly consumes
    // results in the exact flattening order, keeping the artifact
    // byte-identical to the old nested loops.
    let mut configs = Vec::new();
    for sampler in [Sampler::Pebs, Sampler::Software] {
        for kernel in Kernel::ALL {
            for &reset in &resets {
                configs.push((sampler, kernel, reset));
            }
        }
    }
    let results = run_sweep(configs, |(sampler, kernel, reset)| {
        measure_interval(kernel, sampler, reset, uops, 7)
    });
    let mut next = results.iter();
    for sampler in [Sampler::Pebs, Sampler::Software] {
        for kernel in Kernel::ALL {
            let mut series = Series::new(format!("{}/{}", sampler.label(), kernel.label()));
            let mut ideal = Series::new(format!("ideal/{}", kernel.label()));
            for &reset in &resets {
                let m = next.next().expect("one result per sweep config");
                series.push(reset as f64, m.mean_interval_us);
                if sampler == Sampler::Pebs {
                    ideal.push(reset as f64, m.ideal_us);
                }
            }
            if sampler == Sampler::Pebs {
                fig.add(ideal);
            }
            fig.add(series);
        }
    }
    Fig4Data {
        resets,
        results,
        figure: fig,
    }
}

/// Fig. 9 sweep output: the figure plus the baseline and per-reset runs
/// for table and dot-plot rendering.
pub struct Fig9Data {
    /// The instrumented (no-profiling-reset) baseline run.
    pub baseline: AclRunResult,
    /// One run per [`PAPER_RESETS`] entry, in order.
    pub results: Vec<AclRunResult>,
    /// The `fig9` artifact.
    pub figure: Figure,
}

/// Build Fig. 9 — estimated per-packet elapsed time of
/// `rte_acl_classify` vs reset value, against the instrumented
/// baseline.
pub fn fig9_data(scale: Scale) -> Fig9Data {
    fig9_data_with(scale, false)
}

/// [`fig9_data`] with optional raw-bundle capture on every run (for
/// `--store` spill). `keep_bundles` does not enter any computation, so
/// the emitted figure stays byte-identical either way.
pub fn fig9_data_with(scale: Scale, keep_bundles: bool) -> Fig9Data {
    let per_type = scale.packets_per_type();
    let table3 = scale.table3_params();
    let mut fig = Figure::new(
        "fig9",
        "Estimated per-packet elapsed time of rte_acl_classify",
        "reset value (baseline = instrumented)",
        "elapsed time (us)",
    );
    // All six runs (instrumented baseline + five reset values) are
    // independent — each owns a freshly seeded simulator — so they fan
    // out over the worker pool; assembly consumes results in input
    // order, keeping the artifact byte-identical to a sequential loop.
    let mut configs = vec![AclRunConfig::new(None, per_type, table3)];
    configs.extend(
        PAPER_RESETS
            .iter()
            .map(|&r| AclRunConfig::new(Some(r), per_type, table3)),
    );
    for c in &mut configs {
        c.keep_bundle = keep_bundles;
    }
    let mut results = run_sweep(configs, run_acl);
    let baseline = results.remove(0);
    let mut baseline_series = Series::new("baseline");
    for t in PacketType::ALL {
        let s = baseline.for_type(t);
        baseline_series.push_err(0.0, s.classify_us.mean(), s.classify_us.std_dev());
    }
    fig.add(baseline_series);
    for (r, &reset) in results.iter().zip(&PAPER_RESETS) {
        for t in PacketType::ALL {
            let s = r.for_type(t);
            let name = format!("type {}", t.label());
            if fig.series(&name).is_none() {
                fig.add(Series::new(name.clone()));
            }
            let series = fig
                .series
                .iter_mut()
                .find(|s| s.name == name)
                .expect("series added above");
            series.push_err(reset as f64, s.classify_us.mean(), s.classify_us.std_dev());
        }
    }
    Fig9Data {
        baseline,
        results,
        figure: fig,
    }
}

/// Fig. 10 sweep output: the figure plus the baseline latency and
/// per-reset runs for table rendering.
pub struct Fig10Data {
    /// Mean packet latency with no profiling, µs (`L*`).
    pub l_star: f64,
    /// One run per [`PAPER_RESETS`] entry, in order.
    pub results: Vec<AclRunResult>,
    /// The `fig10` artifact ("measured" and "model" series).
    pub figure: Figure,
}

/// Build Fig. 10 — latency overhead `L_R − L*` vs reset value, with
/// the §V.C analytic model prediction alongside.
pub fn fig10_data(scale: Scale) -> Fig10Data {
    let per_type = scale.packets_per_type();
    let table3 = scale.table3_params();
    let mut configs = vec![AclRunConfig::new(None, per_type, table3)];
    configs.extend(
        PAPER_RESETS
            .iter()
            .map(|&r| AclRunConfig::new(Some(r), per_type, table3)),
    );
    let mut results = run_sweep(configs, run_acl);
    let baseline = results.remove(0);
    let l_star = baseline.mean_latency_us;
    let mut fig = Figure::new(
        "fig10",
        "Overhead (latency increase) vs reset value",
        "reset value",
        "latency increase (us)",
    );
    let mut measured = Series::new("measured");
    let mut predicted = Series::new("model");
    // Analytic prediction from the §V.C model: the ACL thread retires
    // ~1.5 µops/cycle while classifying; overhead ≈ samples-in-packet ×
    // assist.
    let model = OverheadModel::new(1.5 * 3.0e9);
    for (r, &reset) in results.iter().zip(&PAPER_RESETS) {
        let overhead = r.mean_latency_us - l_star;
        let pred = model
            .added_latency(
                reset,
                fluctrace_sim::SimDuration::from_ns_f64(l_star * 1000.0),
            )
            .as_us_f64();
        measured.push(reset as f64, overhead);
        predicted.push(reset as f64, pred);
    }
    fig.add(measured);
    fig.add(predicted);
    Fig10Data {
        l_star,
        results,
        figure: fig,
    }
}

/// Seed for the overload fault schedules (shared with the bin).
pub const OVERLOAD_SEED: u64 = 0x0b5e_55ed;
/// Pending-sample cap of the overload sweep.
pub const OVERLOAD_MAX_PENDING: usize = 64;
/// Burst length of the overload sweep — > `OVERLOAD_MAX_PENDING`, so
/// bursts force eviction.
pub const OVERLOAD_BURST_LEN: u32 = 100;

/// Overload sweep output: both figures plus the raw sweep results and
/// the degradation stats for ledger rendering and assertions.
pub struct OverloadData {
    /// Total fault rates swept, per mille.
    pub rates_per_mille: Vec<u32>,
    /// One tracer run per rate, in order.
    pub results: Vec<OverloadResult>,
    /// Whether every sweep point matched its injected schedule exactly.
    pub all_exact: bool,
    /// The `overload` artifact.
    pub figure: Figure,
    /// Factor trace of the adaptive effective-reset policy.
    pub degrade_trace: Vec<u32>,
    /// Episode stats of that trace.
    pub degrade: DegradeStats,
    /// The `overload_degrade` artifact.
    pub degrade_figure: Figure,
}

/// Build the overload figures — online loss accounting vs injected
/// fault rate, and the adaptive effective-reset factor trace under a
/// scripted occupancy wave.
pub fn overload_data(scale: Scale) -> OverloadData {
    overload_data_with(scale, false)
}

/// [`overload_data`] with optional raw-bundle capture on every sweep
/// point (for `--store` spill). `keep_bundles` does not enter any
/// computation, so the emitted figures stay byte-identical either way.
pub fn overload_data_with(scale: Scale, keep_bundles: bool) -> OverloadData {
    let items = match scale {
        Scale::Quick => 2_000,
        Scale::Paper => 20_000,
    };
    // Sweep total fault rate; split evenly across the three classes.
    let rates_per_mille: Vec<u32> = vec![0, 30, 90, 150, 300];
    let configs: Vec<OverloadConfig> = rates_per_mille
        .iter()
        .map(|&rate| {
            let plan = FaultPlan {
                drop_open_per_mille: rate / 3,
                corrupt_close_per_mille: rate / 3,
                burst_per_mille: rate / 3,
                burst_len: OVERLOAD_BURST_LEN,
            };
            OverloadConfig {
                items,
                schedule: plan.schedule(items, OVERLOAD_SEED),
                max_pending: OVERLOAD_MAX_PENDING,
                keep_bundle: keep_bundles,
            }
        })
        .collect();
    let results = run_sweep(configs, |cfg| run_overload(&cfg));

    let mut fig = Figure::new(
        "overload",
        "Online loss accounting vs injected fault rate",
        "fault rate (per mille)",
        "count",
    );
    let mut lost = Series::new("samples_lost");
    let mut faulted_marks = Series::new("marks_faulted");
    let mut boundary = Series::new("boundary_samples");
    let mut processed = Series::new("items_processed");
    let mut all_exact = true;
    for (&rate, r) in rates_per_mille.iter().zip(&results) {
        let x = rate as f64;
        lost.push(x, r.report.loss.samples_lost() as f64);
        faulted_marks.push(
            x,
            (r.report.loss.marks_orphaned + r.report.loss.marks_mismatched) as f64,
        );
        boundary.push(x, r.report.loss.boundary_samples as f64);
        processed.push(x, r.report.items_processed as f64);
        all_exact &= r.accounting_exact();
    }
    fig.add(lost);
    fig.add(faulted_marks);
    fig.add(boundary);
    fig.add(processed);

    let (degrade_trace, degrade) = run_degradation(120, 40, 1.0, AdaptiveConfig::new());
    let mut degrade_fig = Figure::new(
        "overload_degrade",
        "Adaptive effective-reset factor under scripted occupancy",
        "step",
        "thinning factor",
    );
    let mut factor = Series::new("factor");
    for (i, &v) in degrade_trace.iter().enumerate() {
        factor.push(i as f64, v as f64);
    }
    degrade_fig.add(factor);

    OverloadData {
        rates_per_mille,
        results,
        all_exact,
        figure: fig,
        degrade_trace,
        degrade,
        degrade_figure: degrade_fig,
    }
}
