//! serve-bench — sustained throughput of the `fluctrace-serve` daemon
//! (`BENCH_serve.json`).
//!
//! The daemon's claim is steady-state: N shard pipelines under
//! continuous traffic, windows closing and evicting indefinitely, with
//! a drained shutdown whose cumulative table is byte-identical to the
//! equivalent one-shot batch run. This harness spins up a real daemon
//! (real socket, real shard threads), drives a bounded run long enough
//! to close ≥ 64 windows at a bounded retention ring, and records:
//!
//! * **items/sec and samples/sec** — wall time from daemon start to the
//!   last shard draining, over the full item stream;
//! * **drain equality** — each shard's `table` response compared
//!   byte-for-byte against `EstimateTable::from_integrated` over an
//!   offline replay of that shard's exact traffic;
//! * **snapshot stability** — the drained `snapshot` document fetched
//!   twice and compared byte-for-byte.
//!
//! Wall-clock readings use `std::time::Instant` directly: this crate
//! sits outside the clock-hygiene fence and the timings feed only
//! `BENCH_*.json` / stdout, never figure artifacts.

use fluctrace_core::{integrate, EstimateTable, MappingMode};
use fluctrace_cpu::TraceBundle;
use fluctrace_serve::{build_symtab, query, Daemon, ServeConfig, TrafficGen};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Schema tag of `BENCH_serve.json`.
pub const SCHEMA: &str = "fluctrace.bench.serve.v1";

/// The persisted `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBench {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Entry label (usually the git rev or "HEAD").
    pub label: String,
    /// Shard pipelines the daemon ran.
    pub shards: u64,
    /// Producer cores per shard.
    pub cores: u64,
    /// Items per integration window.
    pub window_items: u64,
    /// Retained-window ring size (eviction bound).
    pub max_windows: u64,
    /// Traffic batches each producer core submitted.
    pub batches: u64,
    /// Items completed across all shards.
    pub items: u64,
    /// Samples attributed across all shards.
    pub samples: u64,
    /// Windows closed across all shards.
    pub windows_closed: u64,
    /// Windows evicted by the retention rings.
    pub windows_evicted: u64,
    /// Bytes reclaimed by eviction (approximation the ring tracks).
    pub evicted_bytes: u64,
    /// Wall time from daemon start to the last shard draining, ns.
    pub wall_ns: u64,
    /// Items per second of wall time.
    pub items_per_sec: f64,
    /// Samples per second of wall time.
    pub samples_per_sec: f64,
    /// Every shard's drained cumulative table was byte-identical to the
    /// offline batch replay of its traffic.
    pub drain_matches_batch: bool,
    /// The drained snapshot document was byte-stable across two reads.
    pub snapshot_stable: bool,
    /// Every shard conserved samples and shed nothing (lossless mode).
    pub verified: bool,
}

/// The benchmark daemon shape: lossless (blocking submission, adaptive
/// degradation off) so drain equality is a hard invariant, sized so the
/// run closes at least 64 windows against an 8-window retention ring.
pub fn bench_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(seed);
    cfg.shards = 2;
    cfg.cores = 4;
    cfg.window.window_items = 32;
    cfg.window.max_windows = 8;
    cfg.max_batches = Some(128);
    cfg
}

/// Offline replay of one shard's exact traffic through the batch
/// pipeline — the golden its drained `table` response must reproduce.
fn batch_table_json(cfg: &ServeConfig, shard: u32) -> String {
    let symtab = build_symtab(cfg.funcs);
    let mut traffic = TrafficGen::new(cfg, shard, Arc::clone(&symtab));
    let mut all = TraceBundle::default();
    for _ in 0..cfg.max_batches.unwrap_or(0) {
        all.merge(traffic.next_batch());
    }
    all.sort();
    let it = integrate(&all, &symtab, cfg.window.freq, MappingMode::Intervals);
    serde_json::to_string(&EstimateTable::from_integrated(&it)).unwrap_or_default()
}

/// Run the serve benchmark: daemon up, bounded traffic to drain, wall
/// time and equality checks, daemon down.
pub fn measure_serve(label: &str, seed: u64) -> Result<ServeBench, String> {
    let cfg = bench_config(seed);
    let t0 = Instant::now();
    let daemon = Daemon::start(cfg, "127.0.0.1:0")?;
    let addr = daemon.addr().to_string();
    daemon.wait_drained();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let tables = query(&addr, "table")?;
    let mut drain_matches_batch = true;
    for shard in 0..cfg.shards as u32 {
        if !tables.contains(&batch_table_json(&cfg, shard)) {
            drain_matches_batch = false;
        }
    }
    let snapshot_stable = query(&addr, "snapshot")? == query(&addr, "snapshot")?;

    let mut items = 0u64;
    let mut samples = 0u64;
    let mut windows_closed = 0u64;
    let mut windows_evicted = 0u64;
    let mut evicted_bytes = 0u64;
    let mut verified = true;
    for view in daemon.shards() {
        let report = view.integrator.lock().report();
        items += report.items_processed;
        samples += report.samples_attributed;
        windows_closed += report.windows_closed;
        windows_evicted += report.windows_evicted;
        evicted_bytes += report.evicted_bytes;
        verified &= report.conserves_samples()
            && report.loss.batches_dropped == 0
            && report.loss.samples_dropped == 0
            && report.loss.samples_thinned == 0;
    }
    daemon.quiesce();
    daemon.join();

    let per_sec = |n: u64| {
        if wall_ns == 0 {
            f64::INFINITY
        } else {
            n as f64 / (wall_ns as f64 / 1e9)
        }
    };
    let report = ServeBench {
        schema: SCHEMA.to_string(),
        label: label.to_string(),
        shards: cfg.shards as u64,
        cores: u64::from(cfg.cores),
        window_items: cfg.window.window_items,
        max_windows: cfg.window.max_windows as u64,
        batches: cfg.max_batches.unwrap_or(0),
        items,
        samples,
        windows_closed,
        windows_evicted,
        evicted_bytes,
        wall_ns,
        items_per_sec: per_sec(items),
        samples_per_sec: per_sec(samples),
        drain_matches_batch,
        snapshot_stable,
        verified,
    };
    if fluctrace_obs::recording() {
        fluctrace_obs::gauge!("bench.serve.items_per_sec").record(report.items_per_sec as u64);
    }
    Ok(report)
}

impl ServeBench {
    /// Write pretty JSON to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        let text = serde_json::to_string_pretty(self).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Gate verdict: the run must be lossless, drain-equal, byte-stable,
    /// sustain ≥ 64 closed windows under the bounded ring, and clear the
    /// throughput floor.
    pub fn gate(&self, floor: f64) -> (bool, String) {
        let pass = self.verified
            && self.drain_matches_batch
            && self.snapshot_stable
            && self.windows_closed >= 64
            && self.items_per_sec >= floor;
        let detail = format!(
            "{:.0} items/s (floor {floor:.0}), {} windows closed / {} evicted, \
             drain==batch: {}, snapshot stable: {}, lossless: {} -> {}",
            self.items_per_sec,
            self.windows_closed,
            self.windows_evicted,
            self.drain_matches_batch,
            self.snapshot_stable,
            self.verified,
            if pass { "PASS" } else { "FAIL" }
        );
        (pass, detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_closes_enough_windows_and_drains_equal() {
        let bench = measure_serve("test", 7).expect("daemon runs");
        assert!(bench.windows_closed >= 64, "{}", bench.windows_closed);
        assert!(bench.windows_evicted > 0);
        assert!(bench.drain_matches_batch);
        assert!(bench.snapshot_stable);
        assert!(bench.verified);
    }

    #[test]
    fn gate_fails_on_any_broken_invariant() {
        let mut b = ServeBench {
            schema: SCHEMA.into(),
            label: "t".into(),
            shards: 2,
            cores: 4,
            window_items: 32,
            max_windows: 8,
            batches: 128,
            items: 4096,
            samples: 32768,
            windows_closed: 128,
            windows_evicted: 112,
            evicted_bytes: 1,
            wall_ns: 1_000_000,
            items_per_sec: 1e6,
            samples_per_sec: 8e6,
            drain_matches_batch: true,
            snapshot_stable: true,
            verified: true,
        };
        assert!(b.gate(1000.0).0);
        assert!(!b.gate(1e9).0);
        b.drain_matches_batch = false;
        assert!(!b.gate(1000.0).0);
        b.drain_matches_batch = true;
        b.windows_closed = 63;
        assert!(!b.gate(1000.0).0);
    }
}
