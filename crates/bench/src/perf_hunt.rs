//! perf-hunt — a statistical regression gate around the
//! integrate→estimate hot path.
//!
//! The paper's thesis is that performance fluctuations hide in the
//! tails; the reproduction's own analysis pipeline must therefore not
//! regress silently either. This module runs the **old** AoS pipeline
//! (`integrate_with_threads` → `EstimateTable::from_integrated_timed`)
//! and the **new** SoA pipeline (`integrate_soa_with_threads` →
//! `EstimateTable::from_soa_timed`) over the same synthetic trace in
//! interleaved repetitions, verifies the tables are identical, and fits
//! the paired timings with the through-origin machinery from
//! `fluctrace_core::overhead`:
//!
//! > `old_ns = speedup × new_ns + ε`
//!
//! The fitted slope *is* the speedup and [`SlopeCi::lo`] is the
//! statistically conservative claim. The gate passes only when the
//! whole confidence interval clears the floor, so run-to-run noise
//! cannot produce a flaky pass — a genuinely slowed kernel (see
//! [`Mutant`]) shifts every pair and fails deterministically.
//!
//! Results persist as `artifacts/BENCH_hotpath.json` (schema
//! [`SCHEMA`]), a trajectory of entries that doubles as the baseline
//! store for `perf-hunt --bisect` (designed for `git bisect run`).
//!
//! Wall-clock readings use `std::time::Instant` directly: this crate is
//! outside the clock-hygiene fence, and wall time here feeds only
//! `BENCH_*.json` / stdout, never figure artifacts. The two
//! `bench.hotpath.*` gauges are the one sanctioned wall-derived metric
//! carve-out (see the catalog in `fluctrace-obs`).

use fluctrace_core::{
    fit_instrumentation_ci, integrate_soa_with_threads, integrate_with_threads, EstimateTable,
    MappingMode, SlopeCi,
};
use fluctrace_cpu::{
    CoreId, HwEvent, ItemId, MarkKind, MarkRecord, PebsRecord, SymbolTable, SymbolTableBuilder,
    TraceBundle, VirtAddr,
};
use fluctrace_sim::{Freq, Rng};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Schema tag of `BENCH_hotpath.json`.
pub const SCHEMA: &str = "fluctrace.bench.hotpath.v1";

/// Deliberate defect injected into the *new* path, for proving the gate
/// has teeth: CI runs the mutant and must see the gate fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// Honest measurement.
    None,
    /// Re-run the new kernels `k` extra times inside the timed region,
    /// inflating its cost ≈ `(k + 1)×` — far past any floor the honest
    /// path clears, so the failure is robust, not borderline.
    SlowNew(u32),
}

/// One hunt's knobs.
#[derive(Debug, Clone)]
pub struct HuntConfig {
    /// Interleaved old/new repetitions (after one warm-up pair).
    pub reps: usize,
    /// Cores in the synthetic trace.
    pub cores: u32,
    /// Data-items per core.
    pub items_per_core: usize,
    /// PEBS samples inside each item's interval.
    pub samples_per_item: usize,
    /// Functions in the symbol table (binary-search depth ≈ log₂ n).
    pub funcs: usize,
    /// Worker threads for both pipelines.
    pub threads: usize,
    /// Sample→item mapping mode under test.
    pub mode: MappingMode,
    /// Injected defect (CI teeth check).
    pub mutant: Mutant,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HuntConfig {
    /// The default workload is ~1 M samples — deliberately far past
    /// last-level cache. Production traces stream millions of PEBS
    /// records (the paper's case study writes hundreds of MB/s), and the
    /// columnar layout's bandwidth advantage only shows at that volume;
    /// a cache-resident workload understates it badly. Smoke-level runs
    /// can shrink via `FLUCTRACE_PERF_SAMPLES`.
    fn default() -> Self {
        HuntConfig {
            reps: 10,
            cores: 4,
            items_per_core: 10_000,
            samples_per_item: 24,
            funcs: 384,
            threads: fluctrace_core::configured_threads(),
            mode: MappingMode::Intervals,
            mutant: Mutant::None,
            seed: 0x0507_14A7,
        }
    }
}

impl HuntConfig {
    /// Default config with env overrides: `FLUCTRACE_PERF_REPS` and
    /// `FLUCTRACE_PERF_SAMPLES` (approximate total sample count; the
    /// per-core item count is derived from it).
    pub fn from_env() -> Self {
        let mut cfg = HuntConfig::default();
        if let Some(reps) = env_usize("FLUCTRACE_PERF_REPS") {
            cfg.reps = reps.max(2);
        }
        if let Some(total) = env_usize("FLUCTRACE_PERF_SAMPLES") {
            let per_core = total / cfg.cores as usize;
            cfg.items_per_core = (per_core / cfg.samples_per_item).max(1);
        }
        cfg
    }

    /// Approximate samples per repetition.
    pub fn approx_samples(&self) -> u64 {
        self.cores as u64 * self.items_per_core as u64 * (self.samples_per_item as u64 + 1)
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Build a synthetic multi-core trace shaped like the paper's workloads:
/// per-core streams of bracketed items, strong temporal IP locality
/// (tight classify loops), occasional unresolvable IPs and stray
/// samples between items (exercising the unknown-function and
/// missing-span paths).
pub fn synth_workload(cfg: &HuntConfig) -> (TraceBundle, SymbolTable) {
    let mut b = SymbolTableBuilder::new();
    let mut ranges = Vec::with_capacity(cfg.funcs);
    for f in 0..cfg.funcs {
        let id = b.add(&format!("fn_{f:04}"), 48 + (f as u64 % 7) * 16);
        ranges.push(id);
    }
    let symtab = b.build();
    let spans: Vec<_> = ranges.iter().map(|&f| symtab.range(f)).collect();

    let mut bundle = TraceBundle::default();
    let mut rng = Rng::new(cfg.seed);
    for core in 0..cfg.cores {
        let mut core_rng = rng.fork();
        let mut tsc: u64 = 1_000 + core as u64 * 13;
        let mut cur_fn = core_rng.gen_below(spans.len() as u64) as usize;
        for i in 0..cfg.items_per_core {
            let item = core as u64 * cfg.items_per_core as u64 + i as u64;
            tsc += core_rng.gen_range(20, 120);
            bundle.marks.push(MarkRecord {
                core: CoreId(core),
                tsc,
                item: ItemId(item),
                kind: MarkKind::Start,
            });
            for s in 0..cfg.samples_per_item {
                tsc += core_rng.gen_range(40, 160);
                // ~1 in 8 samples hops to a new function; the rest stay
                // put (temporal IP locality of a hot loop).
                if core_rng.gen_bool(0.125) {
                    cur_fn = core_rng.gen_below(spans.len() as u64) as usize;
                }
                // ~1 in 64 samples lands outside any known symbol.
                let ip = if core_rng.gen_bool(1.0 / 64.0) {
                    VirtAddr(2)
                } else {
                    let r = &spans[cur_fn];
                    VirtAddr(r.start.as_u64() + core_rng.gen_below(r.size()))
                };
                bundle.samples.push(PebsRecord {
                    core: CoreId(core),
                    tsc,
                    ip,
                    r13: item + 1,
                    event: HwEvent::UopsRetired,
                });
                let _ = s;
            }
            tsc += core_rng.gen_range(20, 120);
            bundle.marks.push(MarkRecord {
                core: CoreId(core),
                tsc,
                item: ItemId(item),
                kind: MarkKind::End,
            });
            // One stray sample in the gap after every 16th item: no
            // interval contains it (missing-span path), no tag either.
            if i % 16 == 5 {
                tsc += core_rng.gen_range(10, 40);
                bundle.samples.push(PebsRecord {
                    core: CoreId(core),
                    tsc,
                    ip: VirtAddr(spans[cur_fn].start.as_u64()),
                    r13: fluctrace_cpu::NO_TAG,
                    event: HwEvent::UopsRetired,
                });
            }
        }
    }
    bundle.sort();
    (bundle, symtab)
}

/// Per-repetition stage timings, nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepTiming {
    /// Old path: integrate (AoS).
    pub old_integrate_ns: u64,
    /// Old path: estimate (AoS scan).
    pub old_estimate_ns: u64,
    /// New path: integrate (SoA columns).
    pub new_integrate_ns: u64,
    /// New path: estimate (columnar scan).
    pub new_estimate_ns: u64,
}

impl RepTiming {
    /// Old-path total.
    pub fn old_ns(&self) -> u64 {
        self.old_integrate_ns + self.old_estimate_ns
    }

    /// New-path total.
    pub fn new_ns(&self) -> u64 {
        self.new_integrate_ns + self.new_estimate_ns
    }
}

/// The outcome of one hunt.
#[derive(Debug, Clone)]
pub struct HuntReport {
    /// Label stored in the trajectory (e.g. a commit id).
    pub label: String,
    /// Samples per repetition.
    pub samples: u64,
    /// Repetitions measured (excluding warm-up).
    pub reps: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Per-rep timings.
    pub timings: Vec<RepTiming>,
    /// Through-origin fit of `old = speedup × new`.
    pub speedup: SlopeCi,
    /// Mean old-path total with 95% CI, ns.
    pub old_mean: SlopeCi,
    /// Mean new-path total with 95% CI, ns.
    pub new_mean: SlopeCi,
    /// Tables compared equal on the verification repetition.
    pub verified: bool,
}

impl HuntReport {
    /// Median new-path throughput, samples/s, for the given stage
    /// extractor.
    fn median_per_sec(&self, f: impl Fn(&RepTiming) -> u64) -> f64 {
        let mut ns: Vec<u64> = self.timings.iter().map(f).collect();
        ns.sort_unstable();
        match ns.get(ns.len() / 2) {
            Some(&m) if m > 0 => self.samples as f64 / (m as f64 / 1e9),
            _ => 0.0,
        }
    }

    /// Median new-path end-to-end throughput, samples/s.
    pub fn new_samples_per_sec(&self) -> f64 {
        self.median_per_sec(RepTiming::new_ns)
    }

    /// Median old-path end-to-end throughput, samples/s.
    pub fn old_samples_per_sec(&self) -> f64 {
        self.median_per_sec(RepTiming::old_ns)
    }

    /// Median new-path integrate throughput, samples/s.
    pub fn new_integrate_samples_per_sec(&self) -> f64 {
        self.median_per_sec(|t| t.new_integrate_ns)
    }

    /// Median new-path estimate throughput, samples/s.
    pub fn new_estimate_samples_per_sec(&self) -> f64 {
        self.median_per_sec(|t| t.new_estimate_ns)
    }

    /// Median old-path integrate throughput, samples/s.
    pub fn old_integrate_samples_per_sec(&self) -> f64 {
        self.median_per_sec(|t| t.old_integrate_ns)
    }

    /// Median old-path estimate throughput, samples/s.
    pub fn old_estimate_samples_per_sec(&self) -> f64 {
        self.median_per_sec(|t| t.old_estimate_ns)
    }

    /// The trajectory entry this report condenses to.
    pub fn to_entry(&self) -> TrajectoryEntry {
        TrajectoryEntry {
            label: self.label.clone(),
            samples: self.samples,
            reps: self.reps as u64,
            threads: self.threads as u64,
            old_ns_mean: self.old_mean.slope,
            new_ns_mean: self.new_mean.slope,
            old_samples_per_sec: self.old_samples_per_sec(),
            new_samples_per_sec: self.new_samples_per_sec(),
            speedup: self.speedup.slope,
            speedup_lo: self.speedup.lo,
            speedup_hi: self.speedup.hi,
        }
    }
}

/// Mean of `xs` with a 95% CI, via the through-origin fitter: the slope
/// of `(1, x)` pairs is exactly the sample mean, and its interval is
/// the classic `t · s/√n`.
pub fn mean_ci(xs: &[f64]) -> SlopeCi {
    let pairs: Vec<(f64, f64)> = xs.iter().map(|&x| (1.0, x)).collect();
    fit_instrumentation_ci(&pairs)
}

/// Run one hunt: warm-up pair, then `cfg.reps` interleaved repetitions
/// alternating which path goes first, verifying table equality on the
/// warm-up.
///
/// Obs recording is suspended inside the timed region: the hunt compares
/// kernel against kernel, while instrumentation cost is owned and
/// budgeted by the obs overhead harness — leaving it on would add a
/// near-constant term to both paths that compresses the measured ratio
/// and inflates its variance. Recording is restored afterwards for the
/// `bench.hotpath.*` gauge writes.
pub fn run_hunt(cfg: &HuntConfig) -> HuntReport {
    let (bundle, symtab) = synth_workload(cfg);
    let freq = Freq::ghz(3);
    let was_recording = fluctrace_obs::recording();
    fluctrace_obs::set_recording(false);

    // Warm-up + correctness anchor: the two pipelines must agree to the
    // byte before any timing is believed.
    let it = integrate_with_threads(&bundle, &symtab, freq, cfg.mode, cfg.threads);
    let (old_table, _) = EstimateTable::from_integrated_timed(&it);
    let soa = integrate_soa_with_threads(&bundle, &symtab, freq, cfg.mode, cfg.threads);
    let (new_table, _) = EstimateTable::from_soa_timed(&soa);
    let verified = old_table == new_table;
    assert!(verified, "fast path diverged from reference estimates");
    drop((it, soa, old_table, new_table));

    let extra_new_runs = match cfg.mutant {
        Mutant::None => 0,
        Mutant::SlowNew(k) => k,
    };
    // Each per-rep stage time is the minimum over `INNER` back-to-back
    // runs: timer noise on a shared machine (interrupts, scheduling,
    // frequency excursions) is strictly additive, so the minimum is a
    // robust estimator of the kernel's cost and keeps the gate's CI
    // from being widened by one unlucky run.
    const INNER: usize = 3;
    let mut timings = Vec::with_capacity(cfg.reps);
    for rep in 0..cfg.reps {
        let mut t = RepTiming::default();
        let old = |t: &mut RepTiming| {
            let t0 = Instant::now();
            let it = integrate_with_threads(&bundle, &symtab, freq, cfg.mode, cfg.threads);
            let mut best = t0.elapsed().as_nanos() as u64;
            for _ in 1..INNER {
                let t0 = Instant::now();
                std::hint::black_box(integrate_with_threads(
                    &bundle,
                    &symtab,
                    freq,
                    cfg.mode,
                    cfg.threads,
                ));
                best = best.min(t0.elapsed().as_nanos() as u64);
            }
            t.old_integrate_ns = best;
            let t1 = Instant::now();
            let (table, _) = EstimateTable::from_integrated_timed(&it);
            let mut best = t1.elapsed().as_nanos() as u64;
            for _ in 1..INNER {
                let t1 = Instant::now();
                std::hint::black_box(EstimateTable::from_integrated_timed(&it));
                best = best.min(t1.elapsed().as_nanos() as u64);
            }
            t.old_estimate_ns = best;
            std::hint::black_box(table);
        };
        let new = |t: &mut RepTiming| {
            let time_integrate = || {
                let t0 = Instant::now();
                let soa = integrate_soa_with_threads(&bundle, &symtab, freq, cfg.mode, cfg.threads);
                for _ in 0..extra_new_runs {
                    std::hint::black_box(integrate_soa_with_threads(
                        &bundle,
                        &symtab,
                        freq,
                        cfg.mode,
                        cfg.threads,
                    ));
                }
                (t0.elapsed().as_nanos() as u64, soa)
            };
            let (mut best, soa) = time_integrate();
            for _ in 1..INNER {
                let (ns, again) = time_integrate();
                std::hint::black_box(again);
                best = best.min(ns);
            }
            t.new_integrate_ns = best;
            let time_estimate = || {
                let t1 = Instant::now();
                let (table, _) = EstimateTable::from_soa_timed(&soa);
                for _ in 0..extra_new_runs {
                    std::hint::black_box(EstimateTable::from_soa_timed(&soa));
                }
                (t1.elapsed().as_nanos() as u64, table)
            };
            let (mut best, table) = time_estimate();
            for _ in 1..INNER {
                let (ns, again) = time_estimate();
                std::hint::black_box(again);
                best = best.min(ns);
            }
            t.new_estimate_ns = best;
            std::hint::black_box(table);
        };
        // Alternate order so cache-warming bias cancels across pairs.
        if rep % 2 == 0 {
            old(&mut t);
            new(&mut t);
        } else {
            new(&mut t);
            old(&mut t);
        }
        timings.push(t);
    }

    fluctrace_obs::set_recording(was_recording);

    let report = report_from_timings(
        "HEAD".to_string(),
        cfg.approx_samples(),
        cfg.threads,
        timings,
        verified,
    );
    if fluctrace_obs::recording() {
        fluctrace_obs::gauge!("bench.hotpath.integrate_samples_per_sec")
            .record(report.new_integrate_samples_per_sec() as u64);
        fluctrace_obs::gauge!("bench.hotpath.estimate_samples_per_sec")
            .record(report.new_estimate_samples_per_sec() as u64);
    }
    report
}

/// Condense raw per-rep timings into a report (separated from
/// [`run_hunt`] so the gate's statistics are testable on synthetic,
/// deterministic timings).
pub fn report_from_timings(
    label: String,
    samples: u64,
    threads: usize,
    timings: Vec<RepTiming>,
    verified: bool,
) -> HuntReport {
    let pairs: Vec<(f64, f64)> = timings
        .iter()
        .map(|t| (t.new_ns() as f64, t.old_ns() as f64))
        .collect();
    let speedup = fit_instrumentation_ci(&pairs);
    let old_mean = mean_ci(
        &timings
            .iter()
            .map(|t| t.old_ns() as f64)
            .collect::<Vec<_>>(),
    );
    let new_mean = mean_ci(
        &timings
            .iter()
            .map(|t| t.new_ns() as f64)
            .collect::<Vec<_>>(),
    );
    HuntReport {
        label,
        samples,
        reps: timings.len(),
        threads,
        timings,
        speedup,
        old_mean,
        new_mean,
        verified,
    }
}

/// A gate decision with its evidence.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Whether the gate passed.
    pub pass: bool,
    /// Human-readable verdict.
    pub detail: String,
}

/// The CI gate: pass iff the *entire* 95% CI of the speedup clears
/// `floor` (i.e. the new path is significantly ≥ `floor`× faster).
pub fn evaluate_gate(report: &HuntReport, floor: f64) -> GateOutcome {
    let ci = report.speedup;
    let pass = ci.lo >= floor;
    let detail = format!(
        "speedup {:.2}x (95% CI [{:.2}, {:.2}]) vs floor {:.2}x -> {}",
        ci.slope,
        ci.lo,
        ci.hi,
        floor,
        if pass { "PASS" } else { "FAIL" }
    );
    GateOutcome { pass, detail }
}

/// Bisect-mode comparison against a recorded baseline entry: regression
/// iff the current new-path throughput CI sits *entirely* below
/// `(1 − slack)` of the baseline's recorded throughput.
pub fn compare_to_baseline(report: &HuntReport, base: &TrajectoryEntry, slack: f64) -> GateOutcome {
    let per_rep: Vec<f64> = report
        .timings
        .iter()
        .map(|t| {
            let ns = t.new_ns().max(1);
            report.samples as f64 / (ns as f64 / 1e9)
        })
        .collect();
    let ci = mean_ci(&per_rep);
    let bar = base.new_samples_per_sec * (1.0 - slack);
    let pass = ci.hi >= bar;
    let detail = format!(
        "new-path {:.2} Msamples/s (95% CI [{:.2}, {:.2}]) vs baseline '{}' {:.2} (-{:.0}% bar {:.2}) -> {}",
        ci.slope / 1e6,
        ci.lo / 1e6,
        ci.hi / 1e6,
        base.label,
        base.new_samples_per_sec / 1e6,
        slack * 100.0,
        bar / 1e6,
        if pass { "OK" } else { "REGRESSION" }
    );
    GateOutcome { pass, detail }
}

/// One recorded point of the hot-path trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryEntry {
    /// Free-form label (commit id, PR number, "seed", …).
    pub label: String,
    /// Samples per repetition at recording time.
    pub samples: u64,
    /// Repetitions measured.
    pub reps: u64,
    /// Worker threads.
    pub threads: u64,
    /// Mean old-path total, ns.
    pub old_ns_mean: f64,
    /// Mean new-path total, ns.
    pub new_ns_mean: f64,
    /// Median old-path throughput, samples/s.
    pub old_samples_per_sec: f64,
    /// Median new-path throughput, samples/s.
    pub new_samples_per_sec: f64,
    /// Fitted speedup (old/new).
    pub speedup: f64,
    /// 95% CI lower bound of the speedup.
    pub speedup_lo: f64,
    /// 95% CI upper bound of the speedup.
    pub speedup_hi: f64,
}

/// The persisted `BENCH_hotpath.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trajectory {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Recorded entries, oldest first.
    pub entries: Vec<TrajectoryEntry>,
}

impl Trajectory {
    /// Empty trajectory with the current schema tag.
    pub fn new() -> Self {
        Trajectory {
            schema: SCHEMA.to_string(),
            entries: Vec::new(),
        }
    }

    /// Load from `path`; a missing file is an empty trajectory.
    pub fn load(path: &Path) -> Result<Trajectory, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Trajectory::new()),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let t: Trajectory =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        if t.schema != SCHEMA {
            return Err(format!(
                "{}: schema {} (expected {SCHEMA})",
                path.display(),
                t.schema
            ));
        }
        Ok(t)
    }

    /// Append `entry` and write back to `path` (pretty JSON).
    pub fn append_and_save(mut self, entry: TrajectoryEntry, path: &Path) -> Result<(), String> {
        self.entries.push(entry);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
        let text = serde_json::to_string_pretty(&self).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// The most recent entry, if any.
    pub fn latest(&self) -> Option<&TrajectoryEntry> {
        self.entries.last()
    }
}

impl Default for Trajectory {
    fn default() -> Self {
        Trajectory::new()
    }
}

/// Default on-disk location of the trajectory.
pub fn default_trajectory_path() -> std::path::PathBuf {
    crate::artifact_dir().join("BENCH_hotpath.json")
}

/// Repo-root mirror of a bench document. CI runs the bins from the
/// workspace root, so the bare file name lands next to `Cargo.toml` —
/// keeping the repo-root `BENCH_*.json` trajectory (the one reviewers
/// and `git log` see) in lockstep with the `artifacts/` copy.
pub fn repo_root_bench_path(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(name)
}

/// Schema tag of `BENCH_depgraph.json`.
pub const DEPGRAPH_SCHEMA: &str = "fluctrace.bench.depgraph.v1";

/// Wall-clock cost of the DepGraph diagnosis pass over the ground-truth
/// sweep (`BENCH_depgraph.json`). All timings are min-of-`reps` —
/// the usual noise floor estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepgraphBench {
    /// Schema tag ([`DEPGRAPH_SCHEMA`]).
    pub schema: String,
    /// Entry label (usually the git rev or "HEAD").
    pub label: String,
    /// Repetitions measured.
    pub reps: u64,
    /// Sweep cases diagnosed per repetition.
    pub cases: u64,
    /// Items across all cases (denominator of `ns_per_item`).
    pub items_total: u64,
    /// Min wall time to materialize + run the bounded DPs, ns.
    pub run_ns_min: u64,
    /// Min wall time for the diagnosis walk over every run, ns.
    pub diagnose_ns_min: u64,
    /// `diagnose_ns_min / items_total` — the per-item overhead of the
    /// diagnosis pass itself.
    pub ns_per_item: f64,
}

/// Measure the diagnosis-pass overhead over the quick ground-truth
/// sweep: how long the bounded DPs take to run, and how long the walker
/// takes on top. Pure wall-clock measurement — results go to
/// `BENCH_depgraph.json`, never into figure artifacts.
pub fn measure_depgraph(label: &str, reps: u64) -> DepgraphBench {
    use crate::depgraph_experiment::{depgraph_cases, run_case, spec_of};
    use fluctrace_core::depgraph::{diagnose, DepgraphConfig};
    use fluctrace_rt::run_bounded;

    let cases = depgraph_cases(crate::Scale::Quick);
    let reps = reps.max(1);

    // Materialize once so the timed loops see identical inputs.
    let schedules: Vec<_> = cases
        .iter()
        .map(|c| (c.plan.schedule(c.seed), c.plan.ring_capacity))
        .collect();
    let items_total: u64 = schedules.iter().map(|(s, _)| s.arrivals.len() as u64).sum();

    let mut run_ns_min = u64::MAX;
    let mut diagnose_ns_min = u64::MAX;
    let mut runs = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        runs = schedules
            .iter()
            .map(|(s, cap)| run_bounded(&spec_of(s, *cap)))
            .collect();
        run_ns_min = run_ns_min.min(t0.elapsed().as_nanos() as u64);

        let t1 = Instant::now();
        let diagnoses: Vec<_> = runs
            .iter()
            .map(|r| diagnose(r, &DepgraphConfig::new()))
            .collect();
        diagnose_ns_min = diagnose_ns_min.min(t1.elapsed().as_nanos() as u64);
        assert_eq!(diagnoses.len(), cases.len());
    }
    // Keep the last runs alive through both timed loops (no dead-code
    // elision of the DP) and sanity-check the walker agrees with the
    // sweep's own recovery test.
    if let Some(case) = cases.first() {
        let _ = run_case(case);
    }
    drop(runs);

    DepgraphBench {
        schema: DEPGRAPH_SCHEMA.to_string(),
        label: label.to_string(),
        reps,
        cases: cases.len() as u64,
        items_total,
        run_ns_min,
        diagnose_ns_min,
        ns_per_item: diagnose_ns_min as f64 / items_total.max(1) as f64,
    }
}

impl DepgraphBench {
    /// Write pretty JSON to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        let text = serde_json::to_string_pretty(self).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> HuntConfig {
        HuntConfig {
            reps: 4,
            cores: 2,
            items_per_core: 120,
            samples_per_item: 12,
            funcs: 64,
            threads: 1,
            ..HuntConfig::default()
        }
    }

    fn synthetic_timings(old_ns: &[u64], new_ns: &[u64]) -> Vec<RepTiming> {
        old_ns
            .iter()
            .zip(new_ns)
            .map(|(&o, &n)| RepTiming {
                old_integrate_ns: o / 2,
                old_estimate_ns: o - o / 2,
                new_integrate_ns: n / 2,
                new_estimate_ns: n - n / 2,
            })
            .collect()
    }

    #[test]
    fn gate_passes_fast_and_fails_slow_deterministically() {
        // Clean 2.5x speedup with small jitter: the CI is tight around
        // 2.5 and clears a 2.0 floor.
        let old = [1000, 1010, 990, 1005, 995, 1000];
        let fast: Vec<u64> = old.iter().map(|&o| o * 2 / 5).collect();
        let fast_report =
            report_from_timings("t".into(), 1_000, 1, synthetic_timings(&old, &fast), true);
        assert!(evaluate_gate(&fast_report, 2.0).pass, "honest run passes");

        // A mutant that halves the advantage (1.25x) must fail the same
        // floor, and fail it *significantly* (whole CI below 2.0).
        let slow: Vec<u64> = old.iter().map(|&o| o * 4 / 5).collect();
        let slow_report =
            report_from_timings("t".into(), 1_000, 1, synthetic_timings(&old, &slow), true);
        let out = evaluate_gate(&slow_report, 2.0);
        assert!(!out.pass, "mutant fails: {}", out.detail);
        assert!(slow_report.speedup.significantly_below(2.0));
    }

    #[test]
    fn mutant_slows_a_real_hunt_past_the_gate() {
        // An 8-extra-runs mutant makes the "new" path ~9x its honest
        // cost; even a wildly optimistic honest speedup cannot keep the
        // gate green, so this cannot flake.
        let mut cfg = quick_cfg();
        cfg.mutant = Mutant::SlowNew(8);
        let report = run_hunt(&cfg);
        assert!(report.verified, "mutant must not corrupt results");
        let out = evaluate_gate(&report, 2.0);
        assert!(!out.pass, "mutant escaped the gate: {}", out.detail);
    }

    #[test]
    fn hunt_verifies_and_reports_consistent_statistics() {
        let report = run_hunt(&quick_cfg());
        assert!(report.verified);
        assert_eq!(report.reps, 4);
        assert!(report.speedup.lo <= report.speedup.slope);
        assert!(report.speedup.slope <= report.speedup.hi);
        assert!(report.new_samples_per_sec() > 0.0);
        assert!(report.new_integrate_samples_per_sec() > 0.0);
        assert!(report.new_estimate_samples_per_sec() > 0.0);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let cfg = quick_cfg();
        let (a, _) = synth_workload(&cfg);
        let (b, _) = synth_workload(&cfg);
        assert_eq!(a.samples.len(), b.samples.len());
        assert_eq!(a.marks.len(), b.marks.len());
        assert!(a
            .samples
            .iter()
            .zip(&b.samples)
            .all(|(x, y)| x.tsc == y.tsc && x.ip == y.ip && x.core == y.core));
    }

    #[test]
    fn mean_ci_matches_hand_computation() {
        // xs = [10, 12, 14]: mean 12, s = 2, t(df=2) = 4.303,
        // half-width = 4.303 * 2/sqrt(3) ≈ 4.969.
        let ci = mean_ci(&[10.0, 12.0, 14.0]);
        assert!((ci.slope - 12.0).abs() < 1e-9);
        assert!((ci.hi - ci.slope - 4.969).abs() < 0.01, "hi {}", ci.hi);
    }

    #[test]
    fn trajectory_roundtrips_and_rejects_wrong_schema() {
        let dir = std::env::temp_dir().join(format!("fluctrace-hunt-{}", std::process::id()));
        let path = dir.join("BENCH_hotpath.json");
        let _ = std::fs::remove_file(&path);

        // Missing file loads as empty.
        let t = Trajectory::load(&path).unwrap();
        assert!(t.entries.is_empty());

        let entry = TrajectoryEntry {
            label: "seed".into(),
            samples: 1_000,
            reps: 8,
            threads: 4,
            old_ns_mean: 2e6,
            new_ns_mean: 0.8e6,
            old_samples_per_sec: 5e8,
            new_samples_per_sec: 1.25e9,
            speedup: 2.5,
            speedup_lo: 2.3,
            speedup_hi: 2.7,
        };
        t.append_and_save(entry, &path).unwrap();
        let t2 = Trajectory::load(&path).unwrap();
        assert_eq!(t2.entries.len(), 1);
        let e = t2.latest().unwrap();
        assert_eq!(e.label, "seed");
        assert!((e.speedup - 2.5).abs() < 1e-12);

        std::fs::write(&path, "{\"schema\": \"bogus.v9\", \"entries\": []}").unwrap();
        assert!(Trajectory::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_comparison_flags_large_regressions_only() {
        let base = TrajectoryEntry {
            label: "base".into(),
            samples: 1_000,
            reps: 6,
            threads: 1,
            old_ns_mean: 0.0,
            new_ns_mean: 0.0,
            old_samples_per_sec: 0.0,
            new_samples_per_sec: 1e9, // 1000 samples / 1000 ns
            speedup: 2.0,
            speedup_lo: 1.9,
            speedup_hi: 2.1,
        };
        let old = [2000u64; 6];
        // Matching throughput: ~1e9 samples/s -> OK.
        let same = report_from_timings(
            "h".into(),
            1_000,
            1,
            synthetic_timings(&old, &[1000, 1001, 999, 1000, 1002, 998]),
            true,
        );
        assert!(compare_to_baseline(&same, &base, 0.15).pass);
        // Halved throughput: far below the -15% bar -> regression.
        let halved = report_from_timings(
            "h".into(),
            1_000,
            1,
            synthetic_timings(&old, &[2000, 2004, 1996, 2000, 2008, 1992]),
            true,
        );
        assert!(!compare_to_baseline(&halved, &base, 0.15).pass);
    }
}
