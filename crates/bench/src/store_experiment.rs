//! store-bench — compression ratio and throughput of the columnar
//! on-disk trace store (`BENCH_store.json`).
//!
//! The paper's case study writes hundreds of MB/s of raw PEBS data
//! (§IV.C); the store's job is to make persisting that stream cheap.
//! This harness quantifies the claim on the ~1 M-sample perf-hunt
//! workload:
//!
//! * **compression ratio** — columnar store bytes vs the
//!   `export::anomaly_trace` JSON document of a flag-everything online
//!   run over the same trace (the dump format the online tracer would
//!   otherwise emit per divergence);
//! * **redundancy suppression** — the Arafa-style elision pass on a
//!   locality-quantized twin of the workload (every sample IP snapped
//!   to its function entry, the hot-loop shape suppression targets),
//!   with the exactness ledger replayed and verified;
//! * **throughput** — min-over-reps wall time of full write and full
//!   read, in MB/s of *stored* bytes.
//!
//! Every run re-verifies bit-exact round-trips before any number is
//! recorded. Wall-clock readings use `std::time::Instant` directly:
//! this crate sits outside the clock-hygiene fence and the timings feed
//! only `BENCH_*.json` / stdout, never figure artifacts.

use crate::perf_hunt::{synth_workload, HuntConfig};
use fluctrace_core::anomaly_trace;
use fluctrace_core::online::{OnlineConfig, OnlineTracer};
use fluctrace_cpu::{SymbolTable, TraceBundle};
use fluctrace_sim::Freq;
use fluctrace_store::{StoreConfig, TraceReader, TraceWriter};
use serde::{Deserialize, Serialize};
use std::io::Cursor;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Schema tag of `BENCH_store.json`.
pub const SCHEMA: &str = "fluctrace.bench.store.v1";

/// The persisted `BENCH_store.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreBench {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Entry label (usually the git rev or "HEAD").
    pub label: String,
    /// Sample rows in the workload.
    pub samples: u64,
    /// Mark rows in the workload.
    pub marks: u64,
    /// Bytes of the `anomaly_trace` JSON baseline.
    pub json_bytes: u64,
    /// Bytes of the unsuppressed columnar store.
    pub store_bytes: u64,
    /// `json_bytes / store_bytes` — the headline compression ratio.
    pub ratio_json_over_store: f64,
    /// Unsuppressed store bytes of the locality-quantized twin.
    pub locality_bytes: u64,
    /// Suppressed store bytes of the same twin.
    pub locality_suppressed_bytes: u64,
    /// Sample rows elided by suppression on the twin.
    pub elided: u64,
    /// `locality_bytes / locality_suppressed_bytes`.
    pub suppression_ratio: f64,
    /// Min wall time of a full unsuppressed write, ns.
    pub write_ns_min: u64,
    /// Min wall time of a full read of that store, ns.
    pub read_ns_min: u64,
    /// Stored MB per second of write wall time.
    pub write_mb_per_s: f64,
    /// Stored MB per second of read wall time.
    pub read_mb_per_s: f64,
    /// All round-trips (plain and ledger-replayed) compared bit-exact.
    pub verified: bool,
}

/// Snap every sample IP to its function's entry address — the shape a
/// tight instrumented loop produces, and the redundancy the
/// suppression pass exists to elide.
pub fn quantize_ips(bundle: &TraceBundle, symtab: &SymbolTable) -> TraceBundle {
    let mut out = bundle.clone();
    for s in &mut out.samples {
        if let Some(f) = symtab.resolve(s.ip) {
            s.ip = symtab.range(f).start;
        }
    }
    out
}

fn write_to_vec(bundle: &TraceBundle, config: StoreConfig) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), config).expect("vec write cannot fail");
    w.append(bundle).expect("vec write cannot fail");
    let (bytes, _) = w.finish().expect("vec write cannot fail");
    bytes
}

fn read_back(bytes: &[u8]) -> TraceBundle {
    TraceReader::open(Cursor::new(bytes))
        .and_then(|mut r| r.read_bundle())
        .expect("just-written store must read back")
}

/// JSON-baseline bytes: the `anomaly_trace` document of a
/// flag-everything online run (divergence factor 0, no warmup), i.e.
/// every item dumps its raw samples — the volume the store replaces.
pub fn json_baseline_bytes(bundle: &TraceBundle, symtab: &Arc<SymbolTable>, freq: Freq) -> u64 {
    let mut cfg = OnlineConfig::new(freq);
    cfg.divergence_factor = 0.0;
    cfg.warmup = 0;
    let tracer = OnlineTracer::spawn(Arc::clone(symtab), cfg);
    tracer.submit(bundle.clone()).expect("worker alive");
    let report = tracer.finish().expect("no worker panic");
    let doc = anomaly_trace(&report, symtab, freq);
    let text = serde_json::to_string(&doc).expect("json serialization");
    text.len() as u64
}

/// Run the store benchmark on the (env-scaled) perf-hunt workload.
pub fn measure_store(label: &str, reps: u64) -> StoreBench {
    let hunt = HuntConfig::from_env();
    let (bundle, symtab) = synth_workload(&hunt);
    let symtab = Arc::new(symtab);
    let freq = Freq::ghz(3);
    let reps = reps.max(1);

    let json_bytes = json_baseline_bytes(&bundle, &symtab, freq);

    // Timed write/read of the unsuppressed store.
    let config = StoreConfig::from_env();
    let mut write_ns_min = u64::MAX;
    let mut read_ns_min = u64::MAX;
    let mut bytes = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        bytes = write_to_vec(&bundle, config);
        write_ns_min = write_ns_min.min(t0.elapsed().as_nanos() as u64);
        let t1 = Instant::now();
        let back = read_back(&bytes);
        read_ns_min = read_ns_min.min(t1.elapsed().as_nanos() as u64);
        std::hint::black_box(&back);
    }
    let store_bytes = bytes.len() as u64;
    let mut verified =
        read_back(&bytes).samples == bundle.samples && read_back(&bytes).marks == bundle.marks;

    // Suppression on the locality-quantized twin, ledger verified.
    let twin = quantize_ips(&bundle, &symtab);
    let locality_bytes = write_to_vec(&twin, config).len() as u64;
    let mut sup = StoreConfig::suppressed(1 << 20);
    sup.chunk_rows = config.chunk_rows;
    let mut w = TraceWriter::new(Vec::new(), sup).expect("vec write cannot fail");
    w.append(&twin).expect("vec write cannot fail");
    let (sup_bytes, stats) = w.finish().expect("vec write cannot fail");
    let elided = stats.elided;
    verified &= read_back(&sup_bytes).samples == twin.samples;

    let mb = |b: u64, ns: u64| {
        if ns == 0 {
            f64::INFINITY
        } else {
            b as f64 / 1e6 / (ns as f64 / 1e9)
        }
    };
    let report = StoreBench {
        schema: SCHEMA.to_string(),
        label: label.to_string(),
        samples: bundle.samples.len() as u64,
        marks: bundle.marks.len() as u64,
        json_bytes,
        store_bytes,
        ratio_json_over_store: json_bytes as f64 / store_bytes.max(1) as f64,
        locality_bytes,
        locality_suppressed_bytes: sup_bytes.len() as u64,
        elided,
        suppression_ratio: locality_bytes as f64 / sup_bytes.len().max(1) as f64,
        write_ns_min,
        read_ns_min,
        write_mb_per_s: mb(store_bytes, write_ns_min),
        read_mb_per_s: mb(store_bytes, read_ns_min),
        verified,
    };
    if fluctrace_obs::recording() {
        fluctrace_obs::gauge!("bench.store.write_mb_per_s").record(report.write_mb_per_s as u64);
        fluctrace_obs::gauge!("bench.store.read_mb_per_s").record(report.read_mb_per_s as u64);
    }
    report
}

impl StoreBench {
    /// Write pretty JSON to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        let text = serde_json::to_string_pretty(self).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Gate verdict: the whole point of the store is beating the JSON
    /// dump format by a wide margin; fail below `floor`.
    pub fn gate(&self, floor: f64) -> (bool, String) {
        let pass = self.verified && self.ratio_json_over_store >= floor;
        let detail = format!(
            "compression {:.1}x vs JSON (floor {floor:.1}x), suppression {:.2}x \
             ({} rows elided), verified={} -> {}",
            self.ratio_json_over_store,
            self.suppression_ratio,
            self.elided,
            self.verified,
            if pass { "PASS" } else { "FAIL" }
        );
        (pass, detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HuntConfig {
        HuntConfig {
            cores: 2,
            items_per_core: 60,
            samples_per_item: 12,
            funcs: 32,
            threads: 1,
            ..HuntConfig::default()
        }
    }

    #[test]
    fn quantized_twin_is_heavily_suppressible() {
        let (bundle, symtab) = synth_workload(&tiny());
        let twin = quantize_ips(&bundle, &symtab);
        let mut w = TraceWriter::new(Vec::new(), StoreConfig::suppressed(1 << 20)).unwrap();
        w.append(&twin).unwrap();
        let (bytes, stats) = w.finish().unwrap();
        assert!(
            stats.elided as f64 > twin.samples.len() as f64 * 0.5,
            "only {} of {} elided",
            stats.elided,
            twin.samples.len()
        );
        // Ledger replay still reconstructs every row bit-exact.
        let back = read_back(&bytes);
        assert_eq!(back.samples, twin.samples);
    }

    #[test]
    fn store_beats_json_baseline_on_a_small_workload() {
        let (bundle, symtab) = synth_workload(&tiny());
        let symtab = Arc::new(symtab);
        let json = json_baseline_bytes(&bundle, &symtab, Freq::ghz(3));
        let store = write_to_vec(&bundle, StoreConfig::default()).len() as u64;
        assert!(
            json as f64 / store as f64 >= 3.0,
            "json {json} vs store {store}"
        );
    }

    #[test]
    fn gate_fails_below_floor_and_on_unverified_runs() {
        let mut b = StoreBench {
            schema: SCHEMA.into(),
            label: "t".into(),
            samples: 1,
            marks: 0,
            json_bytes: 100,
            store_bytes: 10,
            ratio_json_over_store: 10.0,
            locality_bytes: 10,
            locality_suppressed_bytes: 5,
            elided: 1,
            suppression_ratio: 2.0,
            write_ns_min: 1,
            read_ns_min: 1,
            write_mb_per_s: 1.0,
            read_mb_per_s: 1.0,
            verified: true,
        };
        assert!(b.gate(3.0).0);
        assert!(!b.gate(20.0).0);
        b.verified = false;
        assert!(!b.gate(3.0).0);
    }
}
