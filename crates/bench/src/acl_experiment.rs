//! Shared machinery for the ACL case study (§IV.C): one run of the
//! firewall pipeline under a given tracing configuration, reduced to
//! the quantities Figs. 9/10 and the data-volume table report.

use fluctrace_apps::{AclCostModel, Firewall, PacketType, Tester};
use fluctrace_core::{integrate_soa, EstimateTable, MappingMode, PipelineStats};
use fluctrace_cpu::{CoreConfig, DrainMode, ItemId, Machine, MachineConfig, PebsConfig, SinkKind};
use fluctrace_sim::{Freq, RunningStats, SimDuration, SimTime};

/// Tracing configuration of one run.
#[derive(Debug, Clone, Copy)]
pub struct AclRunConfig {
    /// PEBS reset value; `None` = no profiling (the `L*` baseline run of
    /// Fig. 10) — ground truth is recorded instead.
    pub reset: Option<u64>,
    /// Packets per type.
    pub per_type: usize,
    /// Table III rule-set parameters.
    pub table3: (u16, u16, u16),
    /// PEBS drain mode (ablation: synchronous vs double-buffered).
    pub drain: DrainMode,
    /// RNG seed.
    pub seed: u64,
    /// Keep the raw [`TraceBundle`] on the result (for `--store`
    /// spill). Off by default: bundles are large and the figures only
    /// need the reduced statistics.
    pub keep_bundle: bool,
}

impl AclRunConfig {
    /// Default configuration at the given reset value.
    pub fn new(reset: Option<u64>, per_type: usize, table3: (u16, u16, u16)) -> Self {
        // The paper's prototype drains the PEBS buffer via a helper
        // program: the traced core pays the interrupt, the copy itself
        // proceeds off-core. DoubleBuffered models that; Synchronous
        // (core waits for the SSD) is kept as an ablation and shows
        // ~200 µs stalls landing inside unlucky packets.
        AclRunConfig {
            reset,
            per_type,
            table3,
            drain: DrainMode::DoubleBuffered,
            seed: 0xAC10,
            keep_bundle: false,
        }
    }
}

/// Per-packet-type statistics from one run.
#[derive(Debug, Clone)]
pub struct TypeStats {
    /// The packet type.
    pub ptype: PacketType,
    /// Mean and std of the estimated (or ground-truth) per-packet
    /// `rte_acl_classify` elapsed time, µs.
    pub classify_us: RunningStats,
    /// Mean end-to-end latency, µs.
    pub latency_us: RunningStats,
    /// Packets for which the estimate was possible (≥2 samples).
    pub estimable: usize,
}

/// The reduced result of one firewall run.
#[derive(Debug, Clone)]
pub struct AclRunResult {
    /// Per-type statistics (A, B, C order).
    pub types: Vec<TypeStats>,
    /// Number of tries the rule set built.
    pub tries: usize,
    /// Total rules installed.
    pub rules: usize,
    /// PEBS bytes written by the ACL core.
    pub pebs_bytes: u64,
    /// Wall time of the ACL core (for MB/s).
    pub acl_core_busy: SimDuration,
    /// Mean latency over all packets, µs (for Fig. 10).
    pub mean_latency_us: f64,
    /// Analysis-pipeline wall-time/throughput counters (profiled runs
    /// only; baselines run no integration).
    pub pipeline: Option<PipelineStats>,
    /// The raw trace (only when [`AclRunConfig::keep_bundle`] was set).
    pub bundle: Option<fluctrace_cpu::TraceBundle>,
}

/// Run the firewall once under `config`.
pub fn run_acl(config: AclRunConfig) -> AclRunResult {
    let (symtab, funcs) = Firewall::symtab();
    let mut core_cfg = CoreConfig::bare().with_ground_truth();
    if let Some(reset) = config.reset {
        let mut pebs = PebsConfig::new(reset);
        pebs.drain = config.drain;
        core_cfg.pebs = Some(pebs);
        core_cfg.sink = SinkKind::Ssd {
            bandwidth_bytes_per_s: 500_000_000,
        };
    }
    let mut machine = Machine::new(
        MachineConfig::new(3, core_cfg).with_seed(config.seed),
        symtab,
    );
    let (sports, dports, tail) = config.table3;
    let rules = fluctrace_acl::table3_rules(sports, dports, tail);
    let fw = Firewall::new(
        &rules,
        fluctrace_acl::AclBuildConfig::paper_patched(),
        AclCostModel::default(),
        funcs,
    );
    let (tester, ingress) = Tester::send_round_robin(
        SimTime::from_us(10),
        SimDuration::from_us(60),
        config.per_type,
    );
    let run = fw.run(&mut machine, ingress);
    let latency_report = tester.receive(&run.egress);

    // Ground truth per packet for rte_acl_classify (baseline runs).
    let gt = machine.core_mut(1).take_ground_truth();
    let mut truth: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for g in &gt {
        if g.func == funcs.rte_acl_classify {
            if let Some(item) = g.item {
                *truth.entry(item.0).or_insert(0.0) += g.wall.as_us_f64();
            }
        }
    }

    let (bundle, reports) = machine.collect();
    let pebs_bytes = reports[1].pebs.bytes;
    let acl_core_busy = reports[1].busy_time;

    // Hybrid estimates (profiled runs) via the SoA fast path; the
    // conformance harness pins it byte-identical to the AoS reference.
    let mut pipeline: Option<PipelineStats> = None;
    let estimates: Option<EstimateTable> = config.reset.map(|_| {
        let soa = integrate_soa(
            &bundle,
            machine.symtab(),
            Freq::ghz(3),
            MappingMode::Intervals,
        );
        let (table, estimate_ns) = EstimateTable::from_soa_timed(&soa);
        let mut stats = soa.stats;
        stats.estimate_ns = estimate_ns;
        pipeline = Some(stats);
        table
    });

    let mut types = Vec::new();
    let mut all_latency = RunningStats::new();
    for ptype in PacketType::ALL {
        let mut classify = RunningStats::new();
        let mut latency = RunningStats::new();
        let mut estimable = 0usize;
        for out in &run.egress {
            if out.value.ptype != ptype {
                continue;
            }
            let seq = out.value.seq;
            let sent = tester.sent()[seq as usize].at;
            let l = out.at.since(sent).as_us_f64();
            latency.push(l);
            all_latency.push(l);
            match &estimates {
                Some(table) => {
                    if let Some(fe) = table
                        .item(ItemId(seq))
                        .and_then(|ie| ie.func(funcs.rte_acl_classify))
                    {
                        if fe.is_estimable() {
                            classify.push(fe.elapsed.as_us_f64());
                            estimable += 1;
                        }
                    }
                }
                None => {
                    if let Some(&t) = truth.get(&seq) {
                        classify.push(t);
                        estimable += 1;
                    }
                }
            }
        }
        types.push(TypeStats {
            ptype,
            classify_us: classify,
            latency_us: latency,
            estimable,
        });
    }
    let _ = latency_report;
    AclRunResult {
        types,
        tries: fw.acl().num_tries(),
        rules: rules.len(),
        pebs_bytes,
        acl_core_busy,
        mean_latency_us: all_latency.mean(),
        pipeline,
        bundle: config.keep_bundle.then_some(bundle),
    }
}

impl AclRunResult {
    /// Stats for one type.
    pub fn for_type(&self, t: PacketType) -> &TypeStats {
        self.types.iter().find(|s| s.ptype == t).unwrap()
    }

    /// PEBS volume in MB/s of ACL-core busy time.
    pub fn pebs_mb_per_s(&self) -> f64 {
        if self.acl_core_busy.is_zero() {
            return 0.0;
        }
        self.pebs_bytes as f64 / 1e6 / self.acl_core_busy.as_secs_f64()
    }
}

/// The reset values of Figs. 9/10.
pub const PAPER_RESETS: [u64; 5] = [8_000, 12_000, 16_000, 20_000, 24_000];

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AclRunConfig {
        // 20 000 rules → 99 tries: type-A classification spans ~22 kµops
        // so R = 8 000 yields 2–3 samples per packet.
        AclRunConfig::new(Some(8_000), 60, (200, 100, 0))
    }

    #[test]
    fn baseline_run_reports_ground_truth() {
        let mut cfg = quick();
        cfg.reset = None;
        let r = run_acl(cfg);
        assert_eq!(r.pebs_bytes, 0);
        assert!(r.pipeline.is_none(), "baseline runs no analysis pipeline");
        let a = r.for_type(PacketType::A);
        let c = r.for_type(PacketType::C);
        assert_eq!(a.estimable, 60, "ground truth covers every packet");
        assert!(a.classify_us.mean() > c.classify_us.mean());
    }

    #[test]
    fn profiled_run_estimates_and_accounts_volume() {
        let r = run_acl(quick());
        assert!(r.pebs_bytes > 0);
        assert!(r.pebs_mb_per_s() > 1.0);
        let p = r.pipeline.expect("profiled runs report pipeline stats");
        assert!(p.samples > 0);
        assert!(p.threads >= 1);
        let a = r.for_type(PacketType::A);
        assert!(a.estimable > 30);
        assert!(a.classify_us.mean() > 3.0);
    }

    #[test]
    fn profiling_increases_latency() {
        let mut base = quick();
        base.reset = None;
        let l0 = run_acl(base).mean_latency_us;
        let l8 = run_acl(quick()).mean_latency_us;
        assert!(l8 > l0, "profiled {l8} vs baseline {l0}");
    }
}
