//! Set-associative LRU cache model.
//!
//! Used for two things:
//!
//! 1. adding data-dependent stall time to execution segments, so that
//!    cache warmth shows up as a *performance fluctuation* exactly like
//!    the paper's motivating examples, and
//! 2. feeding the `CacheMisses` PMU event, which the §V.D extension
//!    samples with PEBS to obtain per-item per-function miss counts.

use serde::{Deserialize, Serialize};

/// Configuration of a cache level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Extra core cycles stalled per miss.
    pub miss_penalty_cycles: u64,
}

impl CacheConfig {
    /// A small L2-like default: 1024 sets × 8 ways × 64 B = 512 KiB,
    /// 40-cycle miss penalty.
    pub fn default_l2() -> Self {
        CacheConfig {
            sets: 1024,
            ways: 8,
            line_bytes: 64,
            miss_penalty_cycles: 40,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
    /// Miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are stored per set in recency order (index 0 = MRU), which makes
/// the model simple, deterministic and fast for the small associativities
/// real caches use.
#[derive(Debug, Clone)]
pub struct CacheModel {
    config: CacheConfig,
    /// `sets[s]` holds up to `ways` tags, most-recently-used first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl CacheModel {
    /// Build a cache from its configuration.
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if
    /// `ways == 0`.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "zero-way cache");
        CacheModel {
            set_mask: config.sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            sets: vec![Vec::with_capacity(config.ways); config.sets],
            stats: CacheStats::default(),
            config,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access one byte address; returns `true` on hit. Misses insert the
    /// line (allocate-on-miss) evicting the LRU way if the set is full.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// Access a contiguous range of `bytes` starting at `addr`; returns
    /// the number of line misses.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr >> self.line_shift;
        let last = (addr + bytes - 1) >> self.line_shift;
        let mut misses = 0;
        for line in first..=last {
            if !self.access(line << self.line_shift) {
                misses += 1;
            }
        }
        misses
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidate all lines (keeps statistics).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// True if the line containing `addr` is currently resident.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        self.sets[set_idx].contains(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheModel {
        // 4 sets × 2 ways × 64 B lines.
        CacheModel::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
            miss_penalty_cycles: 40,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f), "same line");
        assert!(!c.access(0x1040), "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set index = line & 3):
        // lines 0, 4, 8 all map to set 0.
        let a = 0u64;
        let b = 4u64 * 64;
        let d = 8u64 * 64;
        c.access(a);
        c.access(b);
        // Touch a so b becomes LRU.
        c.access(a);
        // Insert d: evicts b.
        c.access(d);
        assert!(c.probe(a));
        assert!(c.probe(d));
        assert!(!c.probe(b), "LRU way evicted");
    }

    #[test]
    fn access_range_counts_line_misses() {
        let mut c = tiny();
        // 200 bytes starting at 0 touches lines 0..=3 → 4 misses.
        assert_eq!(c.access_range(0, 200), 4);
        // Same range again: all hits.
        assert_eq!(c.access_range(0, 200), 0);
        assert_eq!(c.access_range(0, 0), 0);
        // Exactly one line.
        assert_eq!(c.access_range(64 * 100, 64), 1);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x40);
        assert!(c.probe(0x40));
        c.flush();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40), "miss after flush");
    }

    #[test]
    fn capacity_and_miss_ratio() {
        let cfg = CacheConfig::default_l2();
        assert_eq!(cfg.capacity_bytes(), 512 * 1024);
        let mut c = CacheModel::new(cfg);
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny(); // 512 B capacity
                            // Stream 4 KiB twice; second pass should still miss heavily.
        for pass in 0..2 {
            let before = c.stats().misses;
            for addr in (0..4096u64).step_by(64) {
                c.access(addr);
            }
            let misses = c.stats().misses - before;
            assert_eq!(misses, 64, "pass {pass}: every line misses");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_repeat_access_always_hits(addrs in proptest::collection::vec(0u64..1_000_000, 1..100)) {
            let mut c = CacheModel::new(CacheConfig::default_l2());
            for &a in &addrs {
                c.access(a);
                // Working set is far below capacity, so an immediate
                // re-access must hit.
                proptest::prop_assert!(c.access(a));
            }
        }
    }
}
