//! Bandwidth-accounted storage sinks for trace data.
//!
//! The paper's prototype dumps PEBS buffers and instrumentation logs to
//! an SSD and reports the resulting data volume (§IV.C.3: 270 MB/s at a
//! reset value of 8 K, down to 106 MB/s at 24 K). The sink model tracks
//! volume and, for the synchronous-SSD drain mode, the time the writer
//! must stall waiting for bandwidth.

use fluctrace_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The kind of backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SinkKind {
    /// Main-memory staging area: writes complete instantly (volume is
    /// still accounted).
    Memory,
    /// An SSD with finite sequential-write bandwidth.
    Ssd {
        /// Sustained write bandwidth in bytes per second.
        bandwidth_bytes_per_s: u64,
    },
}

/// A storage sink with volume accounting and a busy-until write clock.
///
/// Writes are serialized: a write issued while the device is busy queues
/// behind the previous one, which is exactly how a single dump thread
/// behaves on a real SSD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageSink {
    kind: SinkKind,
    bytes_written: u64,
    writes: u64,
    busy_until: SimTime,
}

impl StorageSink {
    /// A memory sink (infinite bandwidth).
    pub fn memory() -> Self {
        StorageSink {
            kind: SinkKind::Memory,
            bytes_written: 0,
            writes: 0,
            busy_until: SimTime::ZERO,
        }
    }

    /// An SSD sink with the given sequential write bandwidth.
    pub fn ssd(bandwidth_bytes_per_s: u64) -> Self {
        assert!(bandwidth_bytes_per_s > 0, "zero-bandwidth SSD");
        StorageSink {
            kind: SinkKind::Ssd {
                bandwidth_bytes_per_s,
            },
            bytes_written: 0,
            writes: 0,
            busy_until: SimTime::ZERO,
        }
    }

    /// Issue a write of `bytes` at time `now`; returns the completion
    /// time. For a memory sink this is `now`; for an SSD it is the time
    /// the device finishes, accounting for any still-queued prior write.
    pub fn write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.bytes_written += bytes;
        self.writes += 1;
        match self.kind {
            SinkKind::Memory => now,
            SinkKind::Ssd {
                bandwidth_bytes_per_s,
            } => {
                let start = self.busy_until.max(now);
                // duration = bytes / bandwidth, in ps.
                let ps = (bytes as u128 * fluctrace_sim::time::PS_PER_S as u128
                    / bandwidth_bytes_per_s as u128) as u64;
                let done = start + SimDuration::from_ps(ps);
                self.busy_until = done;
                done
            }
        }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of write operations issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Time at which the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// The sink kind.
    pub fn kind(&self) -> SinkKind {
        self.kind
    }

    /// Average write rate in MB/s over an observation window.
    pub fn mb_per_s(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.bytes_written as f64 / 1e6 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_completes_instantly() {
        let mut s = StorageSink::memory();
        let now = SimTime::from_us(5);
        assert_eq!(s.write(now, 1_000_000), now);
        assert_eq!(s.bytes_written(), 1_000_000);
        assert_eq!(s.writes(), 1);
    }

    #[test]
    fn ssd_write_duration_matches_bandwidth() {
        // 500 MB/s: 5 MB takes 10 ms.
        let mut s = StorageSink::ssd(500_000_000);
        let now = SimTime::ZERO;
        let done = s.write(now, 5_000_000);
        assert_eq!(done, SimTime::ZERO + SimDuration::from_ms(10));
    }

    #[test]
    fn ssd_writes_queue_behind_each_other() {
        let mut s = StorageSink::ssd(1_000_000_000); // 1 GB/s
        let d1 = s.write(SimTime::ZERO, 1_000_000); // 1 ms
        assert_eq!(d1, SimTime::ZERO + SimDuration::from_ms(1));
        // Issued at 0.5 ms while still busy: starts at 1 ms, ends at 2 ms.
        let d2 = s.write(SimTime::from_us(500), 1_000_000);
        assert_eq!(d2, SimTime::ZERO + SimDuration::from_ms(2));
        // Issued after idle: starts immediately.
        let d3 = s.write(SimTime::ZERO + SimDuration::from_ms(5), 1_000_000);
        assert_eq!(d3, SimTime::ZERO + SimDuration::from_ms(6));
    }

    #[test]
    fn throughput_accounting() {
        let mut s = StorageSink::memory();
        s.write(SimTime::ZERO, 270_000_000);
        let rate = s.mb_per_s(SimDuration::from_ms(1000));
        assert!((rate - 270.0).abs() < 1e-9);
    }
}
