//! Hardware events countable by the simulated PMU.
//!
//! The paper uses `UOPS_RETIRED.ALL` for its experiments and points out
//! (§V.D) that any PEBS-capable event — cache misses, branch
//! mispredictions, loads — can be substituted to obtain per-item,
//! per-function counts of that metric instead of elapsed time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A PEBS-capable hardware event, mirroring the Intel SDM event list the
/// paper selects from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HwEvent {
    /// `UOPS_RETIRED.ALL` — "counts the number of micro-ops retired".
    /// This is the event used for all elapsed-time experiments.
    UopsRetired,
    /// Last-level cache misses (`MEM_LOAD_RETIRED.L3_MISS`-like).
    CacheMisses,
    /// Retired branch instructions that were mispredicted.
    BranchMispredicts,
    /// Retired load instructions.
    LoadsRetired,
}

impl HwEvent {
    /// All supported events.
    pub const ALL: [HwEvent; 4] = [
        HwEvent::UopsRetired,
        HwEvent::CacheMisses,
        HwEvent::BranchMispredicts,
        HwEvent::LoadsRetired,
    ];

    /// Index into per-event count arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            HwEvent::UopsRetired => 0,
            HwEvent::CacheMisses => 1,
            HwEvent::BranchMispredicts => 2,
            HwEvent::LoadsRetired => 3,
        }
    }

    /// The Intel-SDM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            HwEvent::UopsRetired => "UOPS_RETIRED.ALL",
            HwEvent::CacheMisses => "MEM_LOAD_RETIRED.L3_MISS",
            HwEvent::BranchMispredicts => "BR_MISP_RETIRED.ALL_BRANCHES",
            HwEvent::LoadsRetired => "MEM_INST_RETIRED.ALL_LOADS",
        }
    }
}

impl fmt::Display for HwEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Free-running per-core event counters (the "traditional performance
/// counters" in the paper's terminology, read without sampling).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventCounts {
    counts: [u64; 4],
}

impl EventCounts {
    /// New zeroed counter bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` occurrences of `event`.
    #[inline]
    pub fn add(&mut self, event: HwEvent, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Current count of `event`.
    #[inline]
    pub fn get(&self, event: HwEvent) -> u64 {
        self.counts[event.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_independently() {
        let mut c = EventCounts::new();
        c.add(HwEvent::UopsRetired, 100);
        c.add(HwEvent::CacheMisses, 3);
        c.add(HwEvent::UopsRetired, 50);
        assert_eq!(c.get(HwEvent::UopsRetired), 150);
        assert_eq!(c.get(HwEvent::CacheMisses), 3);
        assert_eq!(c.get(HwEvent::LoadsRetired), 0);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 4];
        for e in HwEvent::ALL {
            assert!(!seen[e.index()]);
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mnemonics() {
        assert_eq!(HwEvent::UopsRetired.to_string(), "UOPS_RETIRED.ALL");
    }
}
