//! The whole machine: a set of cores sharing a symbol table and a
//! configuration, mirroring the paper's evaluation box (Table II): one
//! Skylake socket, per-core PEBS, commodity SSD.

use crate::corerun::{Core, CoreConfig, CoreReport};
use crate::symtab::SymbolTable;
pub use crate::trace::CoreId;
use crate::trace::TraceBundle;
use fluctrace_sim::{Rng, SimTime};
use std::sync::Arc;

/// Machine-wide configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// Per-core configuration (identical across cores, as in the paper's
    /// experiments where PEBS samples "core-related events for every
    /// core simultaneously").
    pub core: CoreConfig,
    /// Master RNG seed; each core forks an independent stream.
    pub seed: u64,
}

impl MachineConfig {
    /// `cores` identical cores with the given per-core config.
    pub fn new(cores: usize, core: CoreConfig) -> Self {
        MachineConfig {
            cores,
            core,
            seed: 0xF1AC_72AC_E5EE_D001,
        }
    }

    /// Override the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A machine: cores plus the shared symbol table.
pub struct Machine {
    config: MachineConfig,
    symtab: Arc<SymbolTable>,
    cores: Vec<Option<Core>>,
}

impl Machine {
    /// Build the machine; all cores start at time zero.
    pub fn new(config: MachineConfig, symtab: SymbolTable) -> Self {
        assert!(config.cores > 0, "machine with zero cores");
        let symtab = symtab.into_shared();
        let mut rng = Rng::new(config.seed);
        let cores = (0..config.cores)
            .map(|i| {
                Some(Core::new(
                    CoreId(i as u32),
                    config.core.clone(),
                    Arc::clone(&symtab),
                    rng.fork(),
                ))
            })
            .collect();
        Machine {
            config,
            symtab,
            cores,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.config.cores
    }

    /// The shared symbol table.
    pub fn symtab(&self) -> &Arc<SymbolTable> {
        &self.symtab
    }

    /// Take ownership of core `i` (so a pipeline worker can drive it).
    /// Panics if the core was already taken.
    pub fn take_core(&mut self, i: usize) -> Core {
        self.cores[i].take().expect("core already taken")
    }

    /// Return a core after the run so the machine can collect its trace.
    pub fn return_core(&mut self, core: Core) {
        let idx = core.id().index();
        assert!(self.cores[idx].is_none(), "returning a core twice");
        self.cores[idx] = Some(core);
    }

    /// Borrow core `i` (must not be taken).
    pub fn core(&self, i: usize) -> &Core {
        self.cores[i].as_ref().expect("core is taken")
    }

    /// Mutably borrow core `i` (must not be taken).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        self.cores[i].as_mut().expect("core is taken")
    }

    /// Finish every core, collect and sort the merged trace bundle, and
    /// gather per-core reports. The machine keeps the cores afterwards.
    pub fn collect(&mut self) -> (TraceBundle, Vec<CoreReport>) {
        let mut bundle = TraceBundle::default();
        let mut reports = Vec::with_capacity(self.cores.len());
        for slot in &mut self.cores {
            let core = slot.as_mut().expect("collect with a core still taken");
            core.finish();
            bundle.merge(core.take_bundle());
            reports.push(core.report());
        }
        bundle.sort();
        (bundle, reports)
    }

    /// The latest local time across all cores (end of the run).
    pub fn horizon(&self) -> SimTime {
        self.cores
            .iter()
            .map(|c| c.as_ref().expect("core is taken").now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corerun::Exec;
    use crate::pebs::PebsConfig;
    use crate::symtab::SymbolTableBuilder;
    use crate::trace::ItemId;

    fn symtab() -> SymbolTable {
        let mut b = SymbolTableBuilder::new();
        b.add("work", 1024);
        b.build()
    }

    #[test]
    fn take_and_return_cores() {
        let cfg = MachineConfig::new(2, CoreConfig::bare());
        let mut m = Machine::new(cfg, symtab());
        let c0 = m.take_core(0);
        assert_eq!(c0.id(), CoreId(0));
        m.return_core(c0);
        // Usable again through borrow.
        assert_eq!(m.core(0).id(), CoreId(0));
    }

    #[test]
    #[should_panic(expected = "core already taken")]
    fn double_take_panics() {
        let cfg = MachineConfig::new(1, CoreConfig::bare());
        let mut m = Machine::new(cfg, symtab());
        let _c = m.take_core(0);
        let _c2 = m.take_core(0);
    }

    #[test]
    fn collect_merges_all_cores() {
        let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(100));
        let cfg = MachineConfig::new(2, core_cfg);
        let mut m = Machine::new(cfg, symtab());
        let f = m.symtab().lookup("work").unwrap();
        for i in 0..2 {
            let c = m.core_mut(i);
            c.mark_item_start(ItemId(i as u64));
            c.exec(Exec::new(f, 1000).ipc_milli(1000));
            c.mark_item_end(ItemId(i as u64));
        }
        let (bundle, reports) = m.collect();
        assert_eq!(bundle.marks.len(), 4);
        assert_eq!(bundle.samples.len(), 20);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].marks, 2);
        // Bundle is sorted per (core, tsc).
        let mut prev = None;
        for s in &bundle.samples {
            if let Some((pc, pt)) = prev {
                assert!((s.core, s.tsc) >= (pc, pt));
            }
            prev = Some((s.core, s.tsc));
        }
    }

    #[test]
    fn per_core_rng_streams_differ() {
        // Two cores sampling the same workload must not produce identical
        // IP jitter sequences.
        let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(100));
        let cfg = MachineConfig::new(2, core_cfg);
        let mut m = Machine::new(cfg, symtab());
        let f = m.symtab().lookup("work").unwrap();
        for i in 0..2 {
            m.core_mut(i).exec(Exec::new(f, 2000).ipc_milli(1000));
        }
        let (bundle, _) = m.collect();
        let ips0: Vec<_> = bundle
            .samples
            .iter()
            .filter(|s| s.core == CoreId(0))
            .map(|s| s.ip)
            .collect();
        let ips1: Vec<_> = bundle
            .samples
            .iter()
            .filter(|s| s.core == CoreId(1))
            .map(|s| s.ip)
            .collect();
        assert_eq!(ips0.len(), ips1.len());
        assert_ne!(ips0, ips1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(64));
            let cfg = MachineConfig::new(1, core_cfg).with_seed(seed);
            let mut m = Machine::new(cfg, symtab());
            let f = m.symtab().lookup("work").unwrap();
            m.core_mut(0).exec(Exec::new(f, 5000).ipc_milli(1000));
            let (bundle, _) = m.collect();
            bundle.samples
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn horizon_is_max_core_time() {
        let cfg = MachineConfig::new(2, CoreConfig::bare());
        let mut m = Machine::new(cfg, symtab());
        m.core_mut(1).advance_to(SimTime::from_us(9));
        assert_eq!(m.horizon(), SimTime::from_us(9));
    }
}
