//! Symbol tables: the mapping between instruction-pointer values and
//! function names that step 2 of the paper's integration procedure uses
//! ("the values of the instruction pointer included in each PEBS sample
//! are compared with the symbol table of the target program").

use crate::addr::{AddrRange, VirtAddr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of a function inside one [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index into per-function arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// One function symbol: a name and the address range of its body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuncSym {
    /// Function name (as it would appear in the ELF symbol table).
    pub name: String,
    /// Address range `[start, end)` of the function body.
    pub range: AddrRange,
}

/// An immutable, lookup-optimised symbol table.
///
/// Function ranges are non-overlapping and sorted, so resolving an IP is
/// a binary search — the same operation a real tracer performs against
/// the target binary's `.symtab`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymbolTable {
    // Sorted by range.start; ranges are pairwise disjoint.
    funcs: Vec<FuncSym>,
    // funcs index sorted identically (identity), kept for clarity.
    by_name: HashMap<String, FuncId>,
}

impl SymbolTable {
    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if the table has no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Resolve an instruction pointer to the containing function.
    pub fn resolve(&self, ip: VirtAddr) -> Option<FuncId> {
        let idx = self.funcs.partition_point(|f| f.range.start <= ip);
        if idx == 0 {
            return None;
        }
        let cand = &self.funcs[idx - 1];
        cand.range.contains(ip).then(|| FuncId((idx - 1) as u32))
    }

    /// Look up a function by name.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// The symbol for `id`.
    pub fn sym(&self, id: FuncId) -> &FuncSym {
        &self.funcs[id.index()]
    }

    /// Function name for `id`.
    pub fn name(&self, id: FuncId) -> &str {
        &self.funcs[id.index()].name
    }

    /// Address range for `id`.
    pub fn range(&self, id: FuncId) -> AddrRange {
        self.funcs[id.index()].range
    }

    /// Iterate `(FuncId, &FuncSym)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &FuncSym)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, s)| (FuncId(i as u32), s))
    }

    /// Wrap in an [`Arc`] for sharing across cores and the tracer.
    pub fn into_shared(self) -> Arc<SymbolTable> {
        Arc::new(self)
    }
}

/// Builder that lays functions out in a contiguous text segment.
///
/// `add("f", 4096)` assigns the next 4 KiB of the text segment to `f`
/// and returns its [`FuncId`]; real binaries have gaps and padding, but
/// the tracer only relies on *disjointness*, which the builder enforces.
pub struct SymbolTableBuilder {
    base: VirtAddr,
    cursor: u64,
    funcs: Vec<FuncSym>,
}

impl SymbolTableBuilder {
    /// Start a text segment at the conventional 0x400000 base.
    pub fn new() -> Self {
        Self::with_base(VirtAddr(0x40_0000))
    }

    /// Start a text segment at `base`.
    pub fn with_base(base: VirtAddr) -> Self {
        SymbolTableBuilder {
            base,
            cursor: 0,
            funcs: Vec::new(),
        }
    }

    /// Append a function of `size` bytes; returns its id.
    ///
    /// Panics if `size == 0` or the name is duplicated.
    pub fn add(&mut self, name: &str, size: u64) -> FuncId {
        assert!(size > 0, "zero-sized function {name:?}");
        assert!(
            !self.funcs.iter().any(|f| f.name == name),
            "duplicate function name {name:?}"
        );
        let start = self.base.offset(self.cursor);
        self.cursor += size;
        // 16-byte alignment padding between functions, like a compiler would.
        self.cursor = (self.cursor + 15) & !15;
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncSym {
            name: name.to_string(),
            range: AddrRange::from_start_size(start, size),
        });
        id
    }

    /// Finish and produce the immutable table.
    pub fn build(self) -> SymbolTable {
        let by_name = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        SymbolTable {
            funcs: self.funcs,
            by_name,
        }
    }
}

impl Default for SymbolTableBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        let mut b = SymbolTableBuilder::new();
        b.add("f1", 100);
        b.add("f2", 256);
        b.add("f3", 64);
        b.build()
    }

    #[test]
    fn builder_lays_out_disjoint_ranges() {
        let t = table();
        assert_eq!(t.len(), 3);
        let ranges: Vec<AddrRange> = t.iter().map(|(_, s)| s.range).collect();
        for i in 0..ranges.len() {
            for j in i + 1..ranges.len() {
                assert!(!ranges[i].overlaps(&ranges[j]));
            }
        }
        // Laid out in increasing address order.
        assert!(ranges.windows(2).all(|w| w[0].end <= w[1].start));
    }

    #[test]
    fn resolve_hits_and_misses() {
        let t = table();
        let f1 = t.lookup("f1").unwrap();
        let f2 = t.lookup("f2").unwrap();
        assert_eq!(t.resolve(t.range(f1).start), Some(f1));
        assert_eq!(t.resolve(t.range(f2).start.offset(255)), Some(f2));
        // Below the text segment.
        assert_eq!(t.resolve(VirtAddr(0x100)), None);
        // In padding between f1 (size 100) and f2 (aligned to 112).
        let pad = t.range(f1).start.offset(105);
        assert_eq!(t.resolve(pad), None);
        // Past the end of the last function.
        let last = t.lookup("f3").unwrap();
        assert_eq!(t.resolve(t.range(last).end), None);
    }

    #[test]
    fn lookup_by_name() {
        let t = table();
        assert!(t.lookup("f2").is_some());
        assert!(t.lookup("nope").is_none());
        assert_eq!(t.name(t.lookup("f3").unwrap()), "f3");
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_panic() {
        let mut b = SymbolTableBuilder::new();
        b.add("f", 10);
        b.add("f", 10);
    }

    #[test]
    #[should_panic(expected = "zero-sized function")]
    fn zero_size_panics() {
        let mut b = SymbolTableBuilder::new();
        b.add("f", 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_every_inner_ip_resolves_to_its_function(
            sizes in proptest::collection::vec(1u64..5000, 1..50),
            frac in 0u64..1000,
        ) {
            let mut b = SymbolTableBuilder::new();
            for (i, &s) in sizes.iter().enumerate() {
                b.add(&format!("fn{i}"), s);
            }
            let t = b.build();
            for (id, sym) in t.iter() {
                let ip = sym.range.at_fraction(frac, 1000);
                proptest::prop_assert_eq!(t.resolve(ip), Some(id));
            }
        }
    }
}
