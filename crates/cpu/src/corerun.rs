//! The simulated CPU core: executes µop segments attributed to
//! functions, drives the PMU/PEBS/software-sampler engines, and emits
//! the instrumentation marks of the hybrid approach.
//!
//! A core is single-threaded and owns a local clock; the pipeline
//! runtime (`fluctrace-rt`) advances cores in causal order. All sampling
//! overhead (PEBS assists, buffer-drain interrupts, software-sampler
//! handlers) *dilates* the core's execution, which is how the method's
//! overhead (Fig. 10) arises naturally instead of being bolted on.

use crate::cache::{CacheConfig, CacheModel, CacheStats};
use crate::pebs::{PebsConfig, PebsEngine, PebsStats};
use crate::pmu::{EventCounts, HwEvent};
use crate::storage::{SinkKind, StorageSink};
use crate::swsample::{SwSampleStats, SwSampler, SwSamplerConfig};
use crate::symtab::{FuncId, SymbolTable};
use crate::trace::{
    encode_tag, CoreId, ItemId, MarkKind, MarkRecord, PebsRecord, TraceBundle, NO_TAG,
};
use fluctrace_sim::{Freq, Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of one core.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Core clock (and TSC) frequency.
    pub freq: Freq,
    /// Cost of one invocation of the marking function (the paper's
    /// prototype prints a log line; a memory-buffered logger costs a few
    /// tens of nanoseconds).
    pub mark_cost: SimDuration,
    /// PEBS configuration, if hardware sampling is enabled.
    pub pebs: Option<PebsConfig>,
    /// Software-sampler configuration, if perf-style sampling is enabled.
    pub swsample: Option<SwSamplerConfig>,
    /// Data-cache model, if cache effects are simulated.
    pub cache: Option<CacheConfig>,
    /// Where PEBS buffers are drained to.
    pub sink: SinkKind,
    /// Record exact per-segment ground truth (the "baseline" of Fig. 9).
    pub record_ground_truth: bool,
    /// Keep the current data-item id in the simulated `r13` register so
    /// that every PEBS sample carries it (§V.A extension).
    pub reg_tagging: bool,
    /// Cost of one *function-boundary* instrumentation call, when
    /// emulating a gprof/Vampir-style tracer that marks **every
    /// function** instead of every data-item (§II.C). `None` disables.
    /// Each executed segment pays `2 × calls × cost` of dilation.
    pub func_instr_cost: Option<SimDuration>,
}

impl CoreConfig {
    /// A 3.0 GHz Skylake-like core with no tracing enabled.
    pub fn bare() -> Self {
        CoreConfig {
            freq: Freq::ghz(3),
            mark_cost: SimDuration::from_ns(30),
            pebs: None,
            swsample: None,
            cache: None,
            sink: SinkKind::Memory,
            record_ground_truth: false,
            reg_tagging: false,
            func_instr_cost: None,
        }
    }

    /// Emulate a tracer that instruments every function boundary at
    /// `cost` per marking call (builder style). This is the comparator
    /// the paper argues against in §II.C.
    pub fn with_func_instrumentation(mut self, cost: SimDuration) -> Self {
        self.func_instr_cost = Some(cost);
        self
    }

    /// Enable PEBS with the given config (builder style).
    pub fn with_pebs(mut self, pebs: PebsConfig) -> Self {
        self.pebs = Some(pebs);
        self
    }

    /// Enable the software sampler (builder style).
    pub fn with_swsample(mut self, sw: SwSamplerConfig) -> Self {
        self.swsample = Some(sw);
        self
    }

    /// Enable the cache model (builder style).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enable ground-truth recording (builder style).
    pub fn with_ground_truth(mut self) -> Self {
        self.record_ground_truth = true;
        self
    }

    /// Enable r13 register tagging (builder style).
    pub fn with_reg_tagging(mut self) -> Self {
        self.reg_tagging = true;
        self
    }
}

/// Memory behaviour of an execution segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccess {
    /// No modelled memory traffic.
    None,
    /// The segment streams over `[addr, addr+bytes)`.
    Range {
        /// Start byte address.
        addr: u64,
        /// Length in bytes.
        bytes: u64,
    },
}

/// One unit of work: `uops` µops of function `func` retired at an
/// average rate of `ipc_milli / 1000` µops per cycle.
#[derive(Debug, Clone, Copy)]
pub struct Exec {
    /// The function the instruction pointer lives in.
    pub func: FuncId,
    /// Number of µops retired by this segment.
    pub uops: u64,
    /// Retired µops per 1000 cycles (e.g. 1500 = IPC 1.5).
    pub ipc_milli: u32,
    /// Memory accesses performed by the segment.
    pub mem: MemAccess,
    /// Branch mispredictions incurred (PMU bookkeeping only).
    pub branch_mispredicts: u64,
    /// Number of function invocations this segment stands for (e.g. a
    /// `classify` segment that internally walks 247 tries represents
    /// 247 calls). Only affects the full-instrumentation comparator's
    /// cost accounting.
    pub calls: u32,
}

impl Exec {
    /// A segment with the default IPC of 1.5 and no memory traffic.
    pub fn new(func: FuncId, uops: u64) -> Self {
        Exec {
            func,
            uops,
            ipc_milli: 1500,
            mem: MemAccess::None,
            branch_mispredicts: 0,
            calls: 1,
        }
    }

    /// Declare how many function invocations this segment represents.
    pub fn calls(mut self, calls: u32) -> Self {
        self.calls = calls;
        self
    }

    /// Set the retirement rate (µops per 1000 cycles).
    pub fn ipc_milli(mut self, ipc_milli: u32) -> Self {
        assert!(ipc_milli > 0, "zero IPC");
        self.ipc_milli = ipc_milli;
        self
    }

    /// Stream over a byte range.
    pub fn mem_range(mut self, addr: u64, bytes: u64) -> Self {
        self.mem = MemAccess::Range { addr, bytes };
        self
    }

    /// Record branch mispredictions.
    pub fn mispredicts(mut self, n: u64) -> Self {
        self.branch_mispredicts = n;
        self
    }
}

/// What one [`Core::exec`] call did.
#[derive(Debug, Clone, Copy)]
pub struct ExecOutcome {
    /// Segment start time.
    pub start: SimTime,
    /// Segment end time (includes sampling dilation).
    pub end: SimTime,
    /// Cache misses charged to the segment.
    pub cache_misses: u64,
    /// PEBS + software samples taken during the segment.
    pub samples: u32,
}

impl ExecOutcome {
    /// Wall-clock duration of the segment.
    pub fn wall(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Exact per-segment timing, recorded when
/// [`CoreConfig::record_ground_truth`] is set. This is the "golden data"
/// the paper compares its estimates against (Fig. 9's baseline).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Item being processed (if any was marked).
    pub item: Option<ItemId>,
    /// Function the segment belongs to.
    pub func: FuncId,
    /// Segment start.
    pub start: SimTime,
    /// Wall duration (includes any sampling dilation).
    pub wall: SimDuration,
}

/// Activity report for one core.
#[derive(Debug, Clone, Default)]
pub struct CoreReport {
    /// PEBS statistics (zeroed if PEBS was off).
    pub pebs: PebsStats,
    /// Software-sampler statistics (zeroed if off).
    pub swsample: SwSampleStats,
    /// Cache statistics (zeroed if no cache model).
    pub cache: CacheStats,
    /// Marking-function invocations.
    pub marks: u64,
    /// Total time spent in the marking function.
    pub mark_time: SimDuration,
    /// Total busy (exec) wall time including dilation.
    pub busy_time: SimDuration,
    /// Bytes written to this core's sink.
    pub sink_bytes: u64,
    /// Function-boundary instrumentation calls paid (full-instrumentation
    /// comparator; 0 when disabled).
    pub func_instr_events: u64,
    /// Total dilation from function-boundary instrumentation.
    pub func_instr_time: SimDuration,
}

/// A simulated CPU core.
pub struct Core {
    id: CoreId,
    freq: Freq,
    config: CoreConfig,
    symtab: Arc<SymbolTable>,
    now: SimTime,
    rng: Rng,
    pebs: Option<PebsEngine>,
    sw: Option<SwSampler>,
    cache: Option<CacheModel>,
    sink: StorageSink,
    counts: EventCounts,
    current_item: Option<ItemId>,
    r13: u64,
    bundle: TraceBundle,
    ground_truth: Vec<GroundTruth>,
    marks: u64,
    mark_time: SimDuration,
    busy_time: SimDuration,
    func_instr_time: SimDuration,
    func_instr_events: u64,
    finished: bool,
}

impl Core {
    /// Create a core with its own RNG stream.
    pub fn new(id: CoreId, config: CoreConfig, symtab: Arc<SymbolTable>, rng: Rng) -> Self {
        let sink = match config.sink {
            SinkKind::Memory => StorageSink::memory(),
            SinkKind::Ssd {
                bandwidth_bytes_per_s,
            } => StorageSink::ssd(bandwidth_bytes_per_s),
        };
        Core {
            id,
            freq: config.freq,
            pebs: config.pebs.map(PebsEngine::new),
            sw: config.swsample.map(SwSampler::new),
            cache: config.cache.map(CacheModel::new),
            sink,
            symtab,
            now: SimTime::ZERO,
            rng,
            counts: EventCounts::new(),
            current_item: None,
            r13: NO_TAG,
            bundle: TraceBundle::default(),
            ground_truth: Vec::new(),
            marks: 0,
            mark_time: SimDuration::ZERO,
            busy_time: SimDuration::ZERO,
            func_instr_time: SimDuration::ZERO,
            func_instr_events: 0,
            config,
            finished: false,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Core/TSC frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// The core's local clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current TSC value.
    pub fn tsc(&self) -> u64 {
        self.freq.tsc_at(self.now)
    }

    /// The symbol table the core executes from.
    pub fn symtab(&self) -> &Arc<SymbolTable> {
        &self.symtab
    }

    /// The item currently marked as being processed.
    pub fn current_item(&self) -> Option<ItemId> {
        self.current_item
    }

    /// Raw PMU counter value for `event`.
    pub fn event_count(&self, event: HwEvent) -> u64 {
        self.counts.get(event)
    }

    /// Move the local clock forward to `t` (no-op if already past);
    /// models waiting on an empty queue without retiring µops.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Burn `dur` of wall time without retiring µops (hardware idle).
    pub fn idle(&mut self, dur: SimDuration) {
        self.now += dur;
    }

    /// Execute one segment of µops; see [`Exec`].
    ///
    /// (The sampling engines are checked with `is_some()` and then
    /// accessed with `unwrap()` inside the loops because the borrow of
    /// `self.rng`/`self.sink` must interleave with the engine borrow; a
    /// combinator chain cannot express that split borrow.)
    #[allow(clippy::unnecessary_unwrap)]
    pub fn exec(&mut self, spec: Exec) -> ExecOutcome {
        assert!(!self.finished, "exec after finish()");
        let start = self.now;
        // --- memory traffic / cache model ------------------------------
        let (misses, lines_touched) = match (self.cache.as_mut(), spec.mem) {
            (Some(cache), MemAccess::Range { addr, bytes }) => {
                let lines = if bytes == 0 {
                    0
                } else {
                    (addr + bytes - 1) / cache.config().line_bytes
                        - addr / cache.config().line_bytes
                        + 1
                };
                (cache.access_range(addr, bytes), lines)
            }
            (None, MemAccess::Range { addr: _, bytes }) => (0, bytes.div_ceil(64)),
            (_, MemAccess::None) => (0, 0),
        };
        // --- PMU counters ----------------------------------------------
        self.counts.add(HwEvent::UopsRetired, spec.uops);
        self.counts.add(HwEvent::CacheMisses, misses);
        self.counts.add(HwEvent::LoadsRetired, lines_touched);
        self.counts
            .add(HwEvent::BranchMispredicts, spec.branch_mispredicts);
        // --- base duration ----------------------------------------------
        let base_cycles = (spec.uops as u128 * 1000).div_ceil(spec.ipc_milli as u128) as u64;
        let stall_cycles = self
            .cache
            .as_ref()
            .map_or(0, |c| misses * c.config().miss_penalty_cycles);
        let d0 = self.freq.cycles_to_dur(base_cycles + stall_cycles);
        // --- sampling -----------------------------------------------------
        let mut overhead = SimDuration::ZERO;
        let mut n_samples = 0u32;
        let range = self.symtab.range(spec.func);
        // PEBS first, then the software sampler; both see the same event
        // stream. Samples are placed at the µop-proportional position
        // within the segment, shifted by the dilation accumulated so far.
        if self.pebs.is_some() {
            let event = self.pebs.as_ref().unwrap().config().event;
            let n_events = match event {
                HwEvent::UopsRetired => spec.uops,
                HwEvent::CacheMisses => misses,
                HwEvent::BranchMispredicts => spec.branch_mispredicts,
                HwEvent::LoadsRetired => lines_touched,
            };
            let offsets = self.pebs.as_mut().unwrap().overflow_offsets(n_events);
            for off in offsets {
                let t = start + d0.mul_frac(off, n_events) + overhead;
                let ip = range.at_fraction(self.rng.gen_below(1024), 1024);
                let rec = PebsRecord {
                    core: self.id,
                    tsc: self.freq.tsc_at(t),
                    ip,
                    r13: self.r13,
                    event,
                };
                overhead += self.pebs.as_mut().unwrap().deposit(rec, t, &mut self.sink);
                n_samples += 1;
            }
        }
        if self.sw.is_some() {
            let event = self.sw.as_ref().unwrap().config().event;
            let n_events = match event {
                HwEvent::UopsRetired => spec.uops,
                HwEvent::CacheMisses => misses,
                HwEvent::BranchMispredicts => spec.branch_mispredicts,
                HwEvent::LoadsRetired => lines_touched,
            };
            let offsets = self.sw.as_mut().unwrap().overflow_offsets(n_events);
            for off in offsets {
                let t = start + d0.mul_frac(off, n_events) + overhead;
                let ip = range.at_fraction(self.rng.gen_below(1024), 1024);
                let rec = PebsRecord {
                    core: self.id,
                    tsc: self.freq.tsc_at(t),
                    ip,
                    r13: self.r13,
                    event,
                };
                overhead += self.sw.as_mut().unwrap().deliver(rec, t);
                n_samples += 1;
            }
        }
        // Full-instrumentation comparator: every function invocation
        // pays an enter+leave marking call.
        if let Some(cost) = self.config.func_instr_cost {
            let instr = cost * (2 * spec.calls as u64);
            overhead += instr;
            self.func_instr_time += instr;
            self.func_instr_events += 2 * spec.calls as u64;
        }
        let end = start + d0 + overhead;
        self.now = end;
        self.busy_time += end.since(start);
        if self.config.record_ground_truth {
            self.ground_truth.push(GroundTruth {
                item: self.current_item,
                func: spec.func,
                start,
                wall: end.since(start),
            });
        }
        ExecOutcome {
            start,
            end,
            cache_misses: misses,
            samples: n_samples,
        }
    }

    /// Record the data-item-switch mark "processing of `item` starts on
    /// this core" and pay the marking-function cost.
    pub fn mark_item_start(&mut self, item: ItemId) {
        assert!(
            self.current_item.is_none(),
            "mark_item_start while {} is still in flight",
            self.current_item.unwrap()
        );
        self.bundle.marks.push(MarkRecord {
            core: self.id,
            tsc: self.tsc(),
            item,
            kind: MarkKind::Start,
        });
        self.current_item = Some(item);
        if self.config.reg_tagging {
            self.r13 = encode_tag(item);
        }
        self.pay_mark_cost();
    }

    /// Record the matching end-of-processing mark.
    pub fn mark_item_end(&mut self, item: ItemId) {
        assert_eq!(
            self.current_item,
            Some(item),
            "mark_item_end for an item that is not in flight"
        );
        self.bundle.marks.push(MarkRecord {
            core: self.id,
            tsc: self.tsc(),
            item,
            kind: MarkKind::End,
        });
        self.current_item = None;
        self.r13 = NO_TAG;
        self.pay_mark_cost();
    }

    /// Directly set the simulated `r13` register (used by the user-level
    /// thread scheduler when it context-switches, §V.A).
    pub fn set_r13(&mut self, value: u64) {
        self.r13 = value;
    }

    /// Current simulated `r13` value.
    pub fn r13(&self) -> u64 {
        self.r13
    }

    /// Set the current item without emitting a mark (used by the
    /// timer-switching scheduler, which tracks items via r13 instead).
    pub fn set_current_item(&mut self, item: Option<ItemId>) {
        self.current_item = item;
    }

    fn pay_mark_cost(&mut self) {
        self.marks += 1;
        self.mark_time += self.config.mark_cost;
        self.now += self.config.mark_cost;
    }

    /// Drain the trace collected so far **without sealing** the core:
    /// moves archived samples and marks out as a batch. This is how an
    /// online collection thread streams data to the integration thread
    /// while the target keeps running (§IV.C.3 online processing).
    pub fn drain_trace(&mut self) -> TraceBundle {
        let mut batch = std::mem::take(&mut self.bundle);
        if let Some(pebs) = self.pebs.as_mut() {
            batch.samples.append(&mut pebs.take_archive());
        }
        if let Some(sw) = self.sw.as_mut() {
            batch.samples.append(&mut sw.take_archive());
        }
        batch.sort();
        batch
    }

    /// Flush sampling buffers and seal the core. Must be called once
    /// before [`Core::take_bundle`].
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(pebs) = self.pebs.as_mut() {
            let stall = pebs.flush(self.now, &mut self.sink);
            self.now += stall;
            self.bundle.samples.append(&mut pebs.take_archive());
        }
        if let Some(sw) = self.sw.as_mut() {
            self.bundle.samples.append(&mut sw.take_archive());
        }
        self.bundle.sort();
    }

    /// Take the trace bundle (marks + samples). Panics if the core was
    /// not [`Core::finish`]ed.
    pub fn take_bundle(&mut self) -> TraceBundle {
        assert!(self.finished, "take_bundle before finish()");
        std::mem::take(&mut self.bundle)
    }

    /// Take the recorded ground truth.
    pub fn take_ground_truth(&mut self) -> Vec<GroundTruth> {
        std::mem::take(&mut self.ground_truth)
    }

    /// Activity report.
    pub fn report(&self) -> CoreReport {
        CoreReport {
            pebs: self.pebs.as_ref().map(|p| p.stats()).unwrap_or_default(),
            swsample: self.sw.as_ref().map(|s| s.stats()).unwrap_or_default(),
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            marks: self.marks,
            mark_time: self.mark_time,
            busy_time: self.busy_time,
            sink_bytes: self.sink.bytes_written(),
            func_instr_events: self.func_instr_events,
            func_instr_time: self.func_instr_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::SymbolTableBuilder;

    fn symtab() -> (Arc<SymbolTable>, FuncId, FuncId) {
        let mut b = SymbolTableBuilder::new();
        let f = b.add("f", 4096);
        let g = b.add("g", 4096);
        (b.build().into_shared(), f, g)
    }

    fn bare_core(config: CoreConfig) -> (Core, FuncId, FuncId) {
        let (t, f, g) = symtab();
        (Core::new(CoreId(0), config, t, Rng::new(1)), f, g)
    }

    #[test]
    fn exec_advances_clock_by_uops_over_ipc() {
        let (mut core, f, _) = bare_core(CoreConfig::bare());
        // 3000 uops at IPC 1.0 on a 3 GHz core = 3000 cycles = 1 µs.
        let out = core.exec(Exec::new(f, 3000).ipc_milli(1000));
        assert_eq!(out.wall(), SimDuration::from_us(1));
        assert_eq!(core.now(), SimTime::from_us(1));
        assert_eq!(core.event_count(HwEvent::UopsRetired), 3000);
    }

    #[test]
    fn higher_ipc_is_faster() {
        let (mut c1, f, _) = bare_core(CoreConfig::bare());
        let (mut c2, f2, _) = bare_core(CoreConfig::bare());
        let w1 = c1.exec(Exec::new(f, 10_000).ipc_milli(1000)).wall();
        let w2 = c2.exec(Exec::new(f2, 10_000).ipc_milli(2000)).wall();
        // Equal up to 1 ps of cycle-conversion truncation.
        let diff = (w1.as_ps() as i128 - (w2 * 2).as_ps() as i128).unsigned_abs();
        assert!(diff <= 1, "w1={w1}, 2*w2={}", w2 * 2);
    }

    #[test]
    fn pebs_samples_at_expected_rate_and_location() {
        let cfg = CoreConfig::bare().with_pebs(PebsConfig::new(1000));
        let (mut core, f, _) = bare_core(cfg);
        let out = core.exec(Exec::new(f, 10_500).ipc_milli(1000));
        assert_eq!(out.samples, 10);
        core.finish();
        let bundle = core.take_bundle();
        assert_eq!(bundle.samples.len(), 10);
        let range = core.symtab().range(f);
        for s in &bundle.samples {
            assert!(range.contains(s.ip), "sample IP inside the function");
            assert_eq!(s.r13, NO_TAG);
        }
        // Timestamps strictly increase and are spaced ~ 1000 cycles/IPC1
        // = 333ns (+250ns assist).
        let tscs: Vec<u64> = bundle.samples.iter().map(|s| s.tsc).collect();
        assert!(tscs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pebs_assist_dilates_execution() {
        let plain = {
            let (mut core, f, _) = bare_core(CoreConfig::bare());
            core.exec(Exec::new(f, 100_000).ipc_milli(1000)).wall()
        };
        let sampled = {
            let cfg = CoreConfig::bare().with_pebs(PebsConfig::new(1000));
            let (mut core, f, _) = bare_core(cfg);
            core.exec(Exec::new(f, 100_000).ipc_milli(1000)).wall()
        };
        // 100 samples × 250 ns = 25 µs of dilation.
        assert_eq!(sampled - plain, SimDuration::from_ns(250) * 100);
    }

    #[test]
    fn marks_bracket_samples() {
        let cfg = CoreConfig::bare().with_pebs(PebsConfig::new(500));
        let (mut core, f, _) = bare_core(cfg);
        core.mark_item_start(ItemId(7));
        core.exec(Exec::new(f, 5_000).ipc_milli(1000));
        core.mark_item_end(ItemId(7));
        core.finish();
        let bundle = core.take_bundle();
        assert_eq!(bundle.marks.len(), 2);
        let start_tsc = bundle.marks[0].tsc;
        let end_tsc = bundle.marks[1].tsc;
        for s in &bundle.samples {
            assert!(start_tsc < s.tsc && s.tsc < end_tsc);
        }
    }

    #[test]
    fn reg_tagging_stamps_samples() {
        let cfg = CoreConfig::bare()
            .with_pebs(PebsConfig::new(500))
            .with_reg_tagging();
        let (mut core, f, _) = bare_core(cfg);
        core.mark_item_start(ItemId(3));
        core.exec(Exec::new(f, 2_000).ipc_milli(1000));
        core.mark_item_end(ItemId(3));
        core.exec(Exec::new(f, 2_000).ipc_milli(1000)); // untagged work
        core.finish();
        let bundle = core.take_bundle();
        let tagged: Vec<_> = bundle
            .samples
            .iter()
            .filter(|s| crate::trace::decode_tag(s.r13) == Some(ItemId(3)))
            .collect();
        let untagged: Vec<_> = bundle.samples.iter().filter(|s| s.r13 == NO_TAG).collect();
        assert_eq!(tagged.len(), 4);
        assert_eq!(untagged.len(), 4);
    }

    #[test]
    fn cache_misses_add_stall_time() {
        let cfg = CoreConfig::bare().with_cache(CacheConfig::default_l2());
        let (mut core, f, _) = bare_core(cfg);
        // Cold pass: every line misses.
        let cold = core.exec(Exec::new(f, 1000).ipc_milli(1000).mem_range(0, 64 * 100));
        // Warm pass: all hits.
        let warm = core.exec(Exec::new(f, 1000).ipc_milli(1000).mem_range(0, 64 * 100));
        assert_eq!(cold.cache_misses, 100);
        assert_eq!(warm.cache_misses, 0);
        let stall = core.freq().cycles_to_dur(100 * 40);
        assert_eq!(cold.wall() - warm.wall(), stall);
        assert_eq!(core.event_count(HwEvent::CacheMisses), 100);
    }

    #[test]
    fn cache_miss_event_sampling() {
        // §V.D: sample on cache misses; one sample per 10 misses.
        let cfg = CoreConfig::bare()
            .with_cache(CacheConfig::default_l2())
            .with_pebs(PebsConfig::for_event(HwEvent::CacheMisses, 10));
        let (mut core, f, _) = bare_core(cfg);
        let out = core.exec(Exec::new(f, 1000).mem_range(0, 64 * 95));
        assert_eq!(out.cache_misses, 95);
        assert_eq!(out.samples, 9);
    }

    #[test]
    fn ground_truth_records_item_and_wall() {
        let cfg = CoreConfig::bare().with_ground_truth();
        let (mut core, f, g) = bare_core(cfg);
        core.mark_item_start(ItemId(1));
        core.exec(Exec::new(f, 3000).ipc_milli(1000));
        core.mark_item_end(ItemId(1));
        core.exec(Exec::new(g, 1000).ipc_milli(1000));
        let gt = core.take_ground_truth();
        assert_eq!(gt.len(), 2);
        assert_eq!(gt[0].item, Some(ItemId(1)));
        assert_eq!(gt[0].func, f);
        assert_eq!(gt[0].wall, SimDuration::from_us(1));
        assert_eq!(gt[1].item, None);
    }

    #[test]
    fn software_sampler_dilation_dominates() {
        // Same workload, sw sampling at a nominally tiny period: the
        // handler cost dominates the achieved interval (Fig. 4's point).
        let cfg = CoreConfig::bare().with_swsample(SwSamplerConfig::new(1000));
        let (mut core, f, _) = bare_core(cfg);
        let out = core.exec(Exec::new(f, 10_000).ipc_milli(1000));
        assert_eq!(out.samples, 10);
        // 10 µs of handler per sample ≫ 333 ns of real interval.
        assert!(out.wall() > SimDuration::from_us(96));
        core.finish();
        let b = core.take_bundle();
        let tscs: Vec<u64> = b.samples.iter().map(|s| s.tsc).collect();
        let min_gap = tscs.windows(2).map(|w| w[1] - w[0]).min().unwrap();
        // Achieved interval >= handler cost (9.6us = 28800 cycles @3GHz).
        assert!(min_gap >= 28_800, "min gap {min_gap} cycles");
    }

    #[test]
    fn advance_to_and_idle() {
        let (mut core, _, _) = bare_core(CoreConfig::bare());
        core.advance_to(SimTime::from_us(5));
        assert_eq!(core.now(), SimTime::from_us(5));
        core.advance_to(SimTime::from_us(3)); // no-op backwards
        assert_eq!(core.now(), SimTime::from_us(5));
        core.idle(SimDuration::from_us(2));
        assert_eq!(core.now(), SimTime::from_us(7));
        // Idle retires nothing, so no samples even with PEBS on.
        assert_eq!(core.event_count(HwEvent::UopsRetired), 0);
    }

    #[test]
    #[should_panic(expected = "mark_item_start while")]
    fn nested_items_panic() {
        let (mut core, _, _) = bare_core(CoreConfig::bare());
        core.mark_item_start(ItemId(1));
        core.mark_item_start(ItemId(2));
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn mismatched_end_panics() {
        let (mut core, _, _) = bare_core(CoreConfig::bare());
        core.mark_item_start(ItemId(1));
        core.mark_item_end(ItemId(2));
    }

    #[test]
    fn report_accounts_marks_and_busy_time() {
        let cfg = CoreConfig::bare();
        let (mut core, f, _) = bare_core(cfg);
        core.mark_item_start(ItemId(0));
        core.exec(Exec::new(f, 3000).ipc_milli(1000));
        core.mark_item_end(ItemId(0));
        let r = core.report();
        assert_eq!(r.marks, 2);
        assert_eq!(r.mark_time, SimDuration::from_ns(60));
        assert_eq!(r.busy_time, SimDuration::from_us(1));
    }
}
