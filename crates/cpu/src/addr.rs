//! Virtual addresses and address ranges for the simulated text segment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual address in the simulated process image.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Null address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Offset this address by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
    /// Raw value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

/// A half-open address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    /// Inclusive start.
    pub start: VirtAddr,
    /// Exclusive end.
    pub end: VirtAddr,
}

impl AddrRange {
    /// Build a range from a start address and a size in bytes.
    pub fn from_start_size(start: VirtAddr, size: u64) -> Self {
        AddrRange {
            start,
            end: start.offset(size),
        }
    }

    /// Size of the range in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True if `addr` lies inside the range.
    #[inline]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// True if the two ranges share at least one address.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Address at a proportional position `num/den` through the range
    /// (used to synthesize instruction pointers for samples taken
    /// partway through a function).
    pub fn at_fraction(&self, num: u64, den: u64) -> VirtAddr {
        assert!(den != 0);
        let off = ((self.size() as u128 * num as u128) / den as u128) as u64;
        // Clamp inside the half-open range.
        VirtAddr(self.start.0 + off.min(self.size().saturating_sub(1)))
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let r = AddrRange::from_start_size(VirtAddr(0x1000), 0x100);
        assert!(r.contains(VirtAddr(0x1000)));
        assert!(r.contains(VirtAddr(0x10ff)));
        assert!(!r.contains(VirtAddr(0x1100)));
        assert!(!r.contains(VirtAddr(0xfff)));
        assert_eq!(r.size(), 0x100);
    }

    #[test]
    fn overlap_detection() {
        let a = AddrRange::from_start_size(VirtAddr(0x1000), 0x100);
        let b = AddrRange::from_start_size(VirtAddr(0x1100), 0x100);
        let c = AddrRange::from_start_size(VirtAddr(0x10ff), 2);
        assert!(!a.overlaps(&b), "adjacent ranges do not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn fraction_positions() {
        let r = AddrRange::from_start_size(VirtAddr(0x1000), 0x100);
        assert_eq!(r.at_fraction(0, 10), VirtAddr(0x1000));
        assert_eq!(r.at_fraction(5, 10), VirtAddr(0x1080));
        // End fraction clamps inside the range.
        assert!(r.contains(r.at_fraction(10, 10)));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", VirtAddr(0x401000)), "0x0000401000");
    }
}
