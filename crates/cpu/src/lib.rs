//! # fluctrace-cpu
//!
//! A deterministic model of the hardware/OS substrate that the paper's
//! hybrid tracer runs on: multi-core CPU with per-core timestamp
//! counters, µop-retirement execution, a PMU with **Precise Event Based
//! Sampling (PEBS)**, a perf-style **software sampler**, a set-associative
//! cache model, and bandwidth-accounted storage sinks.
//!
//! The real system the paper uses is an Intel Skylake CPU. We do not have
//! that hardware here, so this crate reproduces the *mechanics* that the
//! tracer interacts with:
//!
//! * a core executes **segments** of µops attributed to functions that
//!   live in a [`SymbolTable`] address space ([`Core::exec`]);
//! * PEBS counts a hardware event per core, and every `R` occurrences
//!   (the *reset value*) deposits a `(TSC, IP, GP-registers)` record into
//!   the **PEBS buffer** at ≈250 ns of execution dilation per sample;
//!   a full buffer raises an interrupt whose handler drains it to a
//!   [`storage`] sink ([`pebs`]);
//! * the software sampler instead takes an interrupt on **every** counter
//!   overflow, which costs ~10 µs per sample and is why perf cannot
//!   sample faster than ~10 µs/sample no matter the configured rate
//!   ([`swsample`]);
//! * instrumented *data-item switches* record `(TSC, item-id)` marks with
//!   a small software cost ([`Core::mark_item_start`]).
//!
//! Everything is driven by integer picosecond arithmetic from
//! [`fluctrace_sim`], so a run is a pure function of its configuration
//! and seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod cache;
pub mod corerun;
pub mod machine;
pub mod pebs;
pub mod pmu;
pub mod storage;
pub mod swsample;
pub mod symtab;
pub mod trace;

pub use addr::{AddrRange, VirtAddr};
pub use cache::{CacheConfig, CacheModel, CacheStats};
pub use corerun::{Core, CoreConfig, CoreReport, Exec, ExecOutcome, GroundTruth, MemAccess};
pub use machine::{CoreId, Machine, MachineConfig};
pub use pebs::{DrainMode, PebsConfig, PebsEngine, PebsStats};
pub use pmu::HwEvent;
pub use storage::{SinkKind, StorageSink};
pub use swsample::{SwSampleStats, SwSampler, SwSamplerConfig};
pub use symtab::{FuncId, FuncSym, SymbolTable, SymbolTableBuilder};
pub use trace::{
    decode_tag, encode_tag, ItemId, MarkKind, MarkRecord, PebsRecord, TraceBundle, NO_TAG,
    PEBS_RECORD_BYTES,
};
