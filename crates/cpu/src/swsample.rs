//! Software-based sampling model (the "perf with traditional performance
//! counters" comparator of Fig. 4).
//!
//! The traditional counters are hardware, but *sampling program state*
//! with them relies on software: every counter overflow raises an
//! interrupt and the OS saves the program state. That execution switch
//! costs on the order of 10 µs per sample, which is why the achieved
//! sample interval of perf "is as long as 10 us no matter how high the
//! sampling rate is" (paper, Fig. 4 caption). The model charges the
//! handler suspension on every sample and optionally applies perf's
//! throttling (which the paper disables for its experiment).

use crate::pmu::HwEvent;
use crate::trace::PebsRecord;
use fluctrace_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the software sampler.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwSamplerConfig {
    /// Hardware event driving the counter.
    pub event: HwEvent,
    /// Counter period (same role as the PEBS reset value).
    pub period: u64,
    /// Cost of the per-sample interrupt + state-saving handler.
    pub handler: SimDuration,
    /// Maximum samples per second before the kernel throttles sampling
    /// (perf's `kernel.perf_event_max_sample_rate`); `None` disables
    /// throttling, as the paper does.
    pub throttle_max_per_sec: Option<u64>,
}

impl SwSamplerConfig {
    /// perf-like defaults: 9.6 µs handler, throttling disabled.
    pub fn new(period: u64) -> Self {
        SwSamplerConfig {
            event: HwEvent::UopsRetired,
            period,
            handler: SimDuration::from_ns(9_600),
            throttle_max_per_sec: None,
        }
    }
}

/// Counters describing the sampler's activity.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SwSampleStats {
    /// Samples delivered.
    pub samples: u64,
    /// Overflows suppressed by throttling.
    pub throttled: u64,
    /// Total suspension imposed on the target.
    pub handler_time: SimDuration,
}

/// Per-core software sampler state.
#[derive(Debug, Clone)]
pub struct SwSampler {
    config: SwSamplerConfig,
    remaining: u64,
    archive: Vec<PebsRecord>,
    stats: SwSampleStats,
    /// Second in which `count_this_sec` was accumulated (for throttling).
    current_sec: u64,
    count_this_sec: u64,
}

impl SwSampler {
    /// Create a sampler with a freshly armed counter.
    pub fn new(config: SwSamplerConfig) -> Self {
        assert!(config.period > 0, "period must be positive");
        SwSampler {
            remaining: config.period,
            archive: Vec::new(),
            stats: SwSampleStats::default(),
            current_sec: 0,
            count_this_sec: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SwSamplerConfig {
        &self.config
    }

    /// Advance the counter over `n_events` occurrences; returns the
    /// 1-based event offsets at which overflow interrupts fire.
    pub fn overflow_offsets(&mut self, n_events: u64) -> Vec<u64> {
        if n_events == 0 {
            return Vec::new();
        }
        let mut offsets = Vec::new();
        let mut next = self.remaining;
        while next <= n_events {
            offsets.push(next);
            next += self.config.period;
        }
        self.remaining = next - n_events;
        offsets
    }

    /// Deliver one sample taken at `now`; returns the suspension the
    /// target program experiences (zero if the sample was throttled).
    pub fn deliver(&mut self, record: PebsRecord, now: SimTime) -> SimDuration {
        if let Some(max) = self.config.throttle_max_per_sec {
            let sec = now.as_ps() / fluctrace_sim::time::PS_PER_S;
            if sec != self.current_sec {
                self.current_sec = sec;
                self.count_this_sec = 0;
            }
            if self.count_this_sec >= max {
                self.stats.throttled += 1;
                return SimDuration::ZERO;
            }
            self.count_this_sec += 1;
        }
        self.archive.push(record);
        self.stats.samples += 1;
        self.stats.handler_time += self.config.handler;
        self.config.handler
    }

    /// Statistics so far.
    pub fn stats(&self) -> SwSampleStats {
        self.stats
    }

    /// Take the archived samples.
    pub fn take_archive(&mut self) -> Vec<PebsRecord> {
        std::mem::take(&mut self.archive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::trace::{CoreId, NO_TAG};

    fn rec(tsc: u64) -> PebsRecord {
        PebsRecord {
            core: CoreId(0),
            tsc,
            ip: VirtAddr(0x400000),
            r13: NO_TAG,
            event: HwEvent::UopsRetired,
        }
    }

    #[test]
    fn offsets_every_period() {
        let mut s = SwSampler::new(SwSamplerConfig::new(1000));
        assert_eq!(s.overflow_offsets(2500), vec![1000, 2000]);
        assert_eq!(s.overflow_offsets(500), vec![500]);
    }

    #[test]
    fn each_sample_costs_the_handler() {
        let mut s = SwSampler::new(SwSamplerConfig::new(1000));
        let cost = s.deliver(rec(1), SimTime::ZERO);
        assert_eq!(cost, SimDuration::from_ns(9_600));
        assert_eq!(s.stats().samples, 1);
        assert_eq!(s.stats().handler_time, cost);
    }

    #[test]
    fn throttling_caps_rate_per_second() {
        let mut cfg = SwSamplerConfig::new(10);
        cfg.throttle_max_per_sec = Some(2);
        let mut s = SwSampler::new(cfg);
        let t0 = SimTime::from_us(1);
        assert!(s.deliver(rec(1), t0) > SimDuration::ZERO);
        assert!(s.deliver(rec(2), t0) > SimDuration::ZERO);
        // Third in the same second: suppressed, free.
        assert_eq!(s.deliver(rec(3), t0), SimDuration::ZERO);
        assert_eq!(s.stats().throttled, 1);
        // Next second: allowed again.
        let t1 = SimTime::from_us(1_000_001);
        assert!(s.deliver(rec(4), t1) > SimDuration::ZERO);
        assert_eq!(s.stats().samples, 3);
    }

    #[test]
    fn archive_round_trip() {
        let mut s = SwSampler::new(SwSamplerConfig::new(5));
        s.deliver(rec(7), SimTime::ZERO);
        let a = s.take_archive();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].tsc, 7);
    }
}
