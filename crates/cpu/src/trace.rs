//! Trace record types produced by the simulated machine and consumed by
//! the hybrid tracer (`fluctrace-core`).
//!
//! Two independent streams exist, exactly as in the paper's Figure 3:
//!
//! * [`MarkRecord`]s come from the **instrumentation** side: the marking
//!   function invoked at every *data-item switch* records the timestamp
//!   and the data-item id (white circles in Fig. 3).
//! * [`PebsRecord`]s come from the **sampling** side: PEBS periodically
//!   records the timestamp and the instruction pointer (black circles in
//!   Fig. 3), plus the general-purpose registers — including the `r13`
//!   tag slot that the §V.A extension uses.

use crate::addr::VirtAddr;
use crate::pmu::HwEvent;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a CPU core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Index into per-core arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of one data-item (query, packet, request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u64);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The value stored in the simulated `r13` register when no data-item
/// tag is loaded (§V.A requires r13 to be reserved for the tag).
pub const NO_TAG: u64 = 0;

/// Encode a data-item id into the `r13` tag register (§V.A).
///
/// Zero is reserved for "no tag", so ids are stored off-by-one.
#[inline]
pub fn encode_tag(item: ItemId) -> u64 {
    item.0 + 1
}

/// Decode an `r13` register value back into a data-item id, if a tag was
/// loaded.
#[inline]
pub fn decode_tag(r13: u64) -> Option<ItemId> {
    (r13 != NO_TAG).then(|| ItemId(r13 - 1))
}

/// Size of one PEBS record in bytes.
///
/// On Skylake a PEBS record carries the GP registers, IP, TSC, and
/// auxiliary fields; we account 96 bytes per record for the data-volume
/// experiment (§IV.C.3).
pub const PEBS_RECORD_BYTES: u64 = 96;

/// One PEBS sample: what the hardware deposits in the PEBS buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PebsRecord {
    /// Core the sample was taken on.
    pub core: CoreId,
    /// Hardware timestamp (TSC cycles of this core's clock).
    pub tsc: u64,
    /// Instruction pointer at the sampled instruction.
    pub ip: VirtAddr,
    /// Value of the simulated `r13` general-purpose register
    /// ([`NO_TAG`] unless the register-tagging extension is active).
    pub r13: u64,
    /// The hardware event whose overflow triggered this sample.
    pub event: HwEvent,
}

/// Whether a mark denotes the start or the end of processing an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarkKind {
    /// The core started processing the item (item entered the core).
    Start,
    /// The core finished processing the item (item left the core).
    End,
}

/// One instrumentation record emitted by the marking function at a
/// data-item switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkRecord {
    /// Core the mark was recorded on.
    pub core: CoreId,
    /// Timestamp (TSC cycles).
    pub tsc: u64,
    /// The data-item entering/leaving the core.
    pub item: ItemId,
    /// Start or end of processing.
    pub kind: MarkKind,
}

/// Everything one run of the machine produced for the tracer: the two
/// streams of Figure 3 plus bookkeeping needed by the evaluation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceBundle {
    /// PEBS samples from all cores, in per-core chronological order.
    pub samples: Vec<PebsRecord>,
    /// Instrumentation marks from all cores.
    pub marks: Vec<MarkRecord>,
}

impl TraceBundle {
    /// Merge another bundle (e.g. from another core) into this one.
    pub fn merge(&mut self, mut other: TraceBundle) {
        self.samples.append(&mut other.samples);
        self.marks.append(&mut other.marks);
    }

    /// Sort both streams by `(core, tsc)`; integration requires per-core
    /// chronological order.
    pub fn sort(&mut self) {
        self.samples.sort_by_key(|s| (s.core, s.tsc));
        self.marks
            .sort_by_key(|m| (m.core, m.tsc, matches!(m.kind, MarkKind::Start) as u8));
    }

    /// Total bytes of PEBS data, for the data-volume accounting.
    pub fn pebs_bytes(&self) -> u64 {
        self.samples.len() as u64 * PEBS_RECORD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_merge_and_sort() {
        let mut a = TraceBundle::default();
        a.samples.push(PebsRecord {
            core: CoreId(1),
            tsc: 20,
            ip: VirtAddr(1),
            r13: NO_TAG,
            event: HwEvent::UopsRetired,
        });
        let mut b = TraceBundle::default();
        b.samples.push(PebsRecord {
            core: CoreId(0),
            tsc: 10,
            ip: VirtAddr(2),
            r13: NO_TAG,
            event: HwEvent::UopsRetired,
        });
        b.marks.push(MarkRecord {
            core: CoreId(0),
            tsc: 5,
            item: ItemId(7),
            kind: MarkKind::Start,
        });
        a.merge(b);
        a.sort();
        assert_eq!(a.samples[0].core, CoreId(0));
        assert_eq!(a.samples[1].core, CoreId(1));
        assert_eq!(a.marks.len(), 1);
        assert_eq!(a.pebs_bytes(), 2 * PEBS_RECORD_BYTES);
    }

    #[test]
    fn end_mark_sorts_before_start_at_same_tsc() {
        // An End at tsc t and the next Start at the same t must order
        // End-first so that interval reconstruction sees no overlap.
        let mut b = TraceBundle::default();
        b.marks.push(MarkRecord {
            core: CoreId(0),
            tsc: 100,
            item: ItemId(2),
            kind: MarkKind::Start,
        });
        b.marks.push(MarkRecord {
            core: CoreId(0),
            tsc: 100,
            item: ItemId(1),
            kind: MarkKind::End,
        });
        b.sort();
        assert_eq!(b.marks[0].kind, MarkKind::End);
        assert_eq!(b.marks[1].kind, MarkKind::Start);
    }

    #[test]
    fn display_impls() {
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(ItemId(9).to_string(), "#9");
    }
}
