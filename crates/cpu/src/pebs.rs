//! The PEBS (Precise Event Based Sampling) engine model.
//!
//! Mechanics mirror §III.B of the paper:
//!
//! * a per-core counter register is initialised to `-R` (the *reset
//!   value*) for one configured hardware event;
//! * every occurrence of the event decrements the distance to overflow;
//!   on overflow the CPU deposits a record — general-purpose registers,
//!   instruction pointer, hardware timestamp — into the **PEBS buffer**
//!   and re-arms the counter to `-R`;
//! * taking one sample costs ≈250 ns of execution dilation (the
//!   microcode assist measured in the authors' prior work \[6\]);
//! * when (and only when) the buffer becomes full, the CPU raises an
//!   interrupt; the OS handler hands the buffer to a helper that writes
//!   it to storage. The paper's prototype does this synchronously to an
//!   SSD; double buffering (re-arming PEBS immediately) is the
//!   optimisation §III.E leaves for future work — both modes are
//!   implemented here and compared in the ablation bench.

use crate::pmu::HwEvent;
use crate::storage::StorageSink;
use crate::trace::{PebsRecord, PEBS_RECORD_BYTES};
use fluctrace_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What happens when the PEBS buffer fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DrainMode {
    /// The interrupt handler blocks the core until the buffer is safely
    /// on storage, then re-enables PEBS (the paper's prototype).
    Synchronous,
    /// The handler swaps in a second buffer and returns; the write
    /// proceeds in the background (§III.E's suggested optimisation).
    DoubleBuffered,
}

/// PEBS configuration for one core.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PebsConfig {
    /// The hardware event to count.
    pub event: HwEvent,
    /// Reset value `R`: one sample per `R` event occurrences.
    pub reset: u64,
    /// Buffer capacity in records before the overflow interrupt fires.
    pub buffer_records: usize,
    /// Execution dilation per sample (the microcode assist).
    pub assist: SimDuration,
    /// Fixed cost of the buffer-full interrupt handler.
    pub interrupt_handler: SimDuration,
    /// How the full buffer reaches storage.
    pub drain: DrainMode,
}

impl PebsConfig {
    /// Paper-faithful defaults: `UOPS_RETIRED.ALL`, 250 ns assist, 4 µs
    /// kernel handler, synchronous SSD drain, buffer of 1024 records.
    pub fn new(reset: u64) -> Self {
        PebsConfig {
            event: HwEvent::UopsRetired,
            reset,
            buffer_records: 1024,
            assist: SimDuration::from_ns(250),
            interrupt_handler: SimDuration::from_us(4),
            drain: DrainMode::Synchronous,
        }
    }

    /// Same but sampling a different hardware event (§V.D).
    pub fn for_event(event: HwEvent, reset: u64) -> Self {
        PebsConfig {
            event,
            ..PebsConfig::new(reset)
        }
    }
}

/// Counters describing what the engine did.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PebsStats {
    /// Samples deposited.
    pub samples: u64,
    /// Buffer-full interrupts taken.
    pub interrupts: u64,
    /// Total execution dilation from assists.
    pub assist_time: SimDuration,
    /// Total core stall from interrupt handling and synchronous drains.
    pub interrupt_time: SimDuration,
    /// Bytes written to the sink.
    pub bytes: u64,
}

impl PebsStats {
    /// Total overhead the engine imposed on the core.
    pub fn total_overhead(&self) -> SimDuration {
        self.assist_time + self.interrupt_time
    }
}

/// Per-core PEBS engine state.
#[derive(Debug, Clone)]
pub struct PebsEngine {
    config: PebsConfig,
    /// Event occurrences remaining until the next overflow.
    remaining: u64,
    /// Records currently in the hardware buffer (not yet drained).
    buffered: usize,
    /// Archive of every record for the offline integration step.
    archive: Vec<PebsRecord>,
    stats: PebsStats,
    enabled: bool,
}

impl PebsEngine {
    /// Create an engine; the counter starts a full period away, as if
    /// the kernel module had just armed it.
    pub fn new(config: PebsConfig) -> Self {
        assert!(config.reset > 0, "reset value must be positive");
        assert!(config.buffer_records > 0, "empty PEBS buffer");
        PebsEngine {
            remaining: config.reset,
            buffered: 0,
            archive: Vec::new(),
            stats: PebsStats::default(),
            config,
            enabled: true,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PebsConfig {
        &self.config
    }

    /// Enable/disable sampling (the kernel module disables PEBS while
    /// the helper copies the buffer in synchronous mode; we expose the
    /// switch for tests and for modelling un-instrumented phases).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether sampling is currently armed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Advance the counter over `n_events` occurrences of the configured
    /// event and return the 1-based offsets (in event occurrences, within
    /// this batch) at which samples trigger.
    ///
    /// Pure counter arithmetic: the caller (the core) converts offsets to
    /// timestamps and instruction pointers because only it knows the
    /// segment's timing.
    pub fn overflow_offsets(&mut self, n_events: u64) -> Vec<u64> {
        if !self.enabled || n_events == 0 {
            // Events still count against the period even when disabled?
            // Real PEBS keeps counting but does not deposit; we model the
            // disabled window as not counting to keep intervals clean.
            return Vec::new();
        }
        let mut offsets = Vec::new();
        let mut next = self.remaining;
        while next <= n_events {
            offsets.push(next);
            next += self.config.reset;
        }
        self.remaining = next - n_events;
        offsets
    }

    /// Deposit one sample record taken at `now`; returns the execution
    /// dilation the core must absorb (assist, plus interrupt handling and
    /// drain stall when this record filled the buffer).
    pub fn deposit(
        &mut self,
        record: PebsRecord,
        now: SimTime,
        sink: &mut StorageSink,
    ) -> SimDuration {
        self.archive.push(record);
        self.stats.samples += 1;
        self.stats.assist_time += self.config.assist;
        self.buffered += 1;
        let mut cost = self.config.assist;
        if self.buffered >= self.config.buffer_records {
            cost += self.drain(now + cost, sink);
        }
        cost
    }

    /// Force a drain of whatever is buffered (used at run teardown).
    /// Returns the stall imposed on the core.
    pub fn flush(&mut self, now: SimTime, sink: &mut StorageSink) -> SimDuration {
        if self.buffered == 0 {
            return SimDuration::ZERO;
        }
        self.drain(now, sink)
    }

    fn drain(&mut self, now: SimTime, sink: &mut StorageSink) -> SimDuration {
        let bytes = self.buffered as u64 * PEBS_RECORD_BYTES;
        self.buffered = 0;
        self.stats.interrupts += 1;
        self.stats.bytes += bytes;
        let handler_done = now + self.config.interrupt_handler;
        let write_done = sink.write(handler_done, bytes);
        let stall = match self.config.drain {
            DrainMode::Synchronous => write_done.since(now),
            DrainMode::DoubleBuffered => self.config.interrupt_handler,
        };
        self.stats.interrupt_time += stall;
        stall
    }

    /// Statistics so far.
    pub fn stats(&self) -> PebsStats {
        self.stats
    }

    /// Take the archived samples (drains the archive).
    pub fn take_archive(&mut self) -> Vec<PebsRecord> {
        std::mem::take(&mut self.archive)
    }

    /// Records currently waiting in the hardware buffer.
    pub fn buffered(&self) -> usize {
        self.buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::trace::{CoreId, NO_TAG};

    fn rec(tsc: u64) -> PebsRecord {
        PebsRecord {
            core: CoreId(0),
            tsc,
            ip: VirtAddr(0x400000),
            r13: NO_TAG,
            event: HwEvent::UopsRetired,
        }
    }

    #[test]
    fn overflow_offsets_every_reset() {
        let mut e = PebsEngine::new(PebsConfig::new(100));
        assert_eq!(e.overflow_offsets(250), vec![100, 200]);
        // 50 events consumed of the next period.
        assert_eq!(e.overflow_offsets(50), vec![50]);
        assert_eq!(e.overflow_offsets(99), Vec::<u64>::new());
        assert_eq!(e.overflow_offsets(1), vec![1]);
    }

    #[test]
    fn overflow_offsets_exact_boundary() {
        let mut e = PebsEngine::new(PebsConfig::new(100));
        assert_eq!(e.overflow_offsets(100), vec![100]);
        assert_eq!(e.overflow_offsets(100), vec![100]);
    }

    #[test]
    fn disabled_engine_takes_no_samples() {
        let mut e = PebsEngine::new(PebsConfig::new(10));
        e.set_enabled(false);
        assert!(e.overflow_offsets(1000).is_empty());
        e.set_enabled(true);
        assert_eq!(e.overflow_offsets(10), vec![10]);
    }

    #[test]
    fn deposit_costs_one_assist_until_buffer_full() {
        let mut cfg = PebsConfig::new(100);
        cfg.buffer_records = 3;
        cfg.drain = DrainMode::DoubleBuffered;
        let mut e = PebsEngine::new(cfg);
        let mut sink = StorageSink::memory();
        let now = SimTime::ZERO;
        assert_eq!(e.deposit(rec(1), now, &mut sink), cfg.assist);
        assert_eq!(e.deposit(rec(2), now, &mut sink), cfg.assist);
        // Third record fills the buffer: assist + handler.
        let cost = e.deposit(rec(3), now, &mut sink);
        assert_eq!(cost, cfg.assist + cfg.interrupt_handler);
        let s = e.stats();
        assert_eq!(s.samples, 3);
        assert_eq!(s.interrupts, 1);
        assert_eq!(s.bytes, 3 * PEBS_RECORD_BYTES);
        assert_eq!(e.buffered(), 0);
    }

    #[test]
    fn synchronous_drain_waits_for_storage() {
        let mut cfg = PebsConfig::new(100);
        cfg.buffer_records = 1;
        cfg.drain = DrainMode::Synchronous;
        // 96 bytes at 96 MB/s takes exactly 1 µs.
        let mut sink = StorageSink::ssd(96_000_000);
        let mut e = PebsEngine::new(cfg);
        let cost = e.deposit(rec(1), SimTime::ZERO, &mut sink);
        assert_eq!(
            cost,
            cfg.assist + cfg.interrupt_handler + SimDuration::from_us(1)
        );
    }

    #[test]
    fn double_buffered_drain_hides_storage_latency() {
        let mut cfg = PebsConfig::new(100);
        cfg.buffer_records = 1;
        cfg.drain = DrainMode::DoubleBuffered;
        let mut sink = StorageSink::ssd(96_000_000);
        let mut e = PebsEngine::new(cfg);
        let cost = e.deposit(rec(1), SimTime::ZERO, &mut sink);
        assert_eq!(cost, cfg.assist + cfg.interrupt_handler);
        // The write still happened.
        assert_eq!(sink.bytes_written(), PEBS_RECORD_BYTES);
    }

    #[test]
    fn flush_drains_partial_buffer() {
        let mut cfg = PebsConfig::new(100);
        cfg.buffer_records = 10;
        let mut e = PebsEngine::new(cfg);
        let mut sink = StorageSink::memory();
        e.deposit(rec(1), SimTime::ZERO, &mut sink);
        e.deposit(rec(2), SimTime::ZERO, &mut sink);
        assert_eq!(e.buffered(), 2);
        let stall = e.flush(SimTime::ZERO, &mut sink);
        assert!(stall > SimDuration::ZERO);
        assert_eq!(e.buffered(), 0);
        assert_eq!(sink.bytes_written(), 2 * PEBS_RECORD_BYTES);
        // Idempotent.
        assert_eq!(e.flush(SimTime::ZERO, &mut sink), SimDuration::ZERO);
    }

    #[test]
    fn archive_keeps_all_samples() {
        let mut e = PebsEngine::new(PebsConfig::new(100));
        let mut sink = StorageSink::memory();
        for i in 0..5 {
            e.deposit(rec(i), SimTime::ZERO, &mut sink);
        }
        let archive = e.take_archive();
        assert_eq!(archive.len(), 5);
        assert!(e.take_archive().is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_sample_count_matches_event_count(
            reset in 1u64..10_000,
            batches in proptest::collection::vec(0u64..50_000, 1..50),
        ) {
            let mut e = PebsEngine::new(PebsConfig::new(reset));
            let mut total_offsets = 0u64;
            let mut total_events = 0u64;
            for &n in &batches {
                total_offsets += e.overflow_offsets(n).len() as u64;
                total_events += n;
            }
            // Exactly one sample per full reset period of events.
            proptest::prop_assert_eq!(total_offsets, total_events / reset);
        }
    }
}
