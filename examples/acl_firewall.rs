//! The paper's realistic case study (§IV.C): a DPDK-like firewall with
//! the Table III rule set (50 000 rules → 247 tries). Packets of types
//! A/B/C (Table IV) experience different latencies depending on how
//! many key parts the tries must examine; the hybrid tracer estimates
//! `rte_acl_classify` per packet and exposes the fluctuation.
//!
//! ```text
//! cargo run --release --example acl_firewall
//! ```

use fluctrace::acl::{table3_rules, AclBuildConfig};
use fluctrace::apps::{AclCostModel, Firewall, PacketType, Tester};
use fluctrace::core::{integrate, EstimateTable, MappingMode};
use fluctrace::cpu::{CoreConfig, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace::sim::{Freq, RunningStats, SimDuration, SimTime};

fn main() {
    let (symtab, funcs) = Firewall::symtab();
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(8_000));
    let mut machine = Machine::new(MachineConfig::new(3, core_cfg), symtab);

    let rules = table3_rules(666, 75, 50);
    let fw = Firewall::new(
        &rules,
        AclBuildConfig::paper_patched(),
        AclCostModel::default(),
        funcs,
    );
    println!(
        "installed {} rules into {} tries ({} nodes)",
        rules.len(),
        fw.acl().num_tries(),
        fw.acl().total_nodes()
    );

    let (tester, ingress) =
        Tester::send_round_robin(SimTime::from_us(10), SimDuration::from_us(60), 200);
    let run = fw.run(&mut machine, ingress);
    let latency = tester.receive(&run.egress);
    println!(
        "sent {} packets, {} passed, {} dropped",
        latency.sent, latency.received, run.dropped
    );

    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let estimates = EstimateTable::from_integrated(&it);

    println!("\ntype  latency(us)  rte_acl_classify estimate (us)");
    for t in PacketType::ALL {
        let lat = tester.receive(&run.egress);
        let lat = lat.for_type(t).unwrap();
        let mut est = RunningStats::new();
        for out in &run.egress {
            if out.value.ptype == t {
                if let Some(fe) = estimates
                    .item(ItemId(out.value.seq))
                    .and_then(|ie| ie.func(funcs.rte_acl_classify))
                    .filter(|fe| fe.is_estimable())
                {
                    est.push(fe.elapsed.as_us_f64());
                }
            }
        }
        println!(
            "{}     {:>6.2}       {:>6.2} ± {:.2}  ({} packets estimable)",
            t.label(),
            lat.mean,
            est.mean(),
            est.std_dev(),
            est.count()
        );
    }
    println!(
        "\ntype A walks all 3 key parts in every trie, type C only the source \
         address — the >100% latency fluctuation the paper diagnoses."
    );
}
