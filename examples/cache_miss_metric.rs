//! §V.D extension: measuring a metric other than elapsed time.
//!
//! PEBS counts cache misses instead of retired µops: one sample per
//! `R` misses, so the number of samples attributed to `{function,
//! item}` estimates that function's per-item miss count. A workload
//! alternating cache-friendly and cache-hostile items shows `f_scan`'s
//! misses fluctuating per item.
//!
//! ```text
//! cargo run --release --example cache_miss_metric
//! ```

use fluctrace::core::{integrate, metric_counts, MappingMode};
use fluctrace::cpu::{
    CacheConfig, CoreConfig, Exec, HwEvent, ItemId, Machine, MachineConfig, PebsConfig,
    SymbolTableBuilder,
};
use fluctrace::sim::Freq;

fn main() {
    let mut b = SymbolTableBuilder::new();
    let parse = b.add("f_parse", 1024);
    let scan = b.add("f_scan", 4096);
    // Sample every 8 cache misses.
    const RESET: u64 = 8;
    let core_cfg = CoreConfig::bare()
        .with_cache(CacheConfig::default_l2())
        .with_pebs(PebsConfig::for_event(HwEvent::CacheMisses, RESET));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let core = machine.core_mut(0);

    // 8 items. Even items re-scan the same 64 KiB buffer (warm); odd
    // items scan a fresh 64 KiB region (cold: ~1024 line misses).
    for item in 0..8u64 {
        core.mark_item_start(ItemId(item));
        core.exec(Exec::new(parse, 4_000));
        let addr = if item % 2 == 0 {
            0
        } else {
            0x1000_0000 + item * 0x10000
        };
        core.exec(Exec::new(scan, 40_000).mem_range(addr, 64 * 1024));
        core.mark_item_end(ItemId(item));
    }

    let (bundle, reports) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let metrics = metric_counts(&it, RESET);

    println!(
        "per-item cache-miss estimates (PEBS event: {}):\n",
        HwEvent::CacheMisses
    );
    println!("item  kind  f_parse misses  f_scan misses (samples x {RESET})");
    for item in 0..8u64 {
        let kind = if item % 2 == 0 { "warm" } else { "cold" };
        println!(
            "{:>4}  {}  {:>14}  {:>13}",
            item,
            kind,
            metrics.estimated_events(ItemId(item), parse),
            metrics.estimated_events(ItemId(item), scan),
        );
    }
    println!(
        "\ntotal misses (PMU counter): {}; cold items' f_scan misses dwarf warm \
         items' — the fluctuation is in cache behaviour, not instruction count.",
        reports[0].cache.misses
    );
}
