//! Quickstart: trace a tiny two-stage pipeline with the hybrid tracer
//! and print per-item, per-function elapsed times.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fluctrace::core::{integrate, EstimateTable, MappingMode};
use fluctrace::cpu::{
    CoreConfig, Exec, ItemId, Machine, MachineConfig, PebsConfig, SymbolTableBuilder,
};
use fluctrace::rt::pipeline::StageDef;
use fluctrace::rt::stage::StageOpts;
use fluctrace::rt::timed::arrival_schedule;
use fluctrace::rt::Pipeline;
use fluctrace::sim::{Freq, SimDuration, SimTime};

fn main() {
    // 1. Describe the target program: its functions and their sizes in
    //    the text segment (the symbol table the tracer resolves IPs
    //    against).
    let mut symtab = SymbolTableBuilder::new();
    let rx_loop = symtab.add("rx_loop", 512);
    let parse = symtab.add("parse", 2048);
    let work = symtab.add("work", 4096);

    // 2. Build a machine with PEBS enabled: one sample per 2000 retired
    //    µops, everything else default (3 GHz cores, 250 ns assist).
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(2_000));
    let mut machine = Machine::new(MachineConfig::new(2, core_cfg), symtab.build());

    // 3. Run a two-stage pipeline. Only the worker stage is
    //    instrumented — two marks per item, nothing per function.
    let input = arrival_schedule(SimTime::from_us(1), SimDuration::from_us(40), 8, |i| {
        i as u64
    });
    Pipeline::run(
        &mut machine,
        input,
        vec![
            StageDef::new(0, StageOpts::new(rx_loop), |_, v| Some(v)),
            StageDef::new(1, StageOpts::new(rx_loop), move |core, v: u64| {
                core.mark_item_start(ItemId(v));
                core.exec(Exec::new(parse, 6_000));
                // Item 3 hits a slow path: 4x the work.
                let uops = if v == 3 { 48_000 } else { 12_000 };
                core.exec(Exec::new(work, uops));
                core.mark_item_end(ItemId(v));
                Some(v)
            }),
        ],
    );

    // 4. Collect the trace (marks + samples) and integrate.
    let (bundle, _) = machine.collect();
    println!(
        "collected {} samples and {} marks",
        bundle.samples.len(),
        bundle.marks.len()
    );
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let estimates = EstimateTable::from_integrated(&it);

    // 5. Per-item, per-function elapsed times — the paper's output.
    println!("\nitem  function  samples  elapsed");
    for ie in estimates.items() {
        for fe in &ie.funcs {
            println!(
                "{:>4}  {:<8}  {:>7}  {}",
                ie.item,
                machine.symtab().name(fe.func),
                fe.samples,
                fe.elapsed
            );
        }
    }
    println!("\nitem 3's `work` should stand out ~4x above the others.");

    // 6. Export for chrome://tracing / Perfetto.
    let json = fluctrace::core::chrome_trace_string(
        &it,
        &estimates,
        machine.symtab(),
        fluctrace::core::ExportOptions {
            include_samples: true,
        },
    );
    let path = std::env::temp_dir().join("fluctrace_quickstart.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!(
            "trace written to {} (load it in chrome://tracing)",
            path.display()
        ),
        Err(e) => eprintln!("could not write trace: {e}"),
    }
}
