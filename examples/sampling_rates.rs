//! Why PEBS? (Fig. 4.) Compare achieved sample intervals of hardware
//! PEBS vs perf-style software sampling across reset values, on three
//! kernels with different µop throughput.
//!
//! ```text
//! cargo run --release --example sampling_rates
//! ```

use fluctrace::apps::{Kernel, KernelFuncs};
use fluctrace::cpu::{CoreConfig, Machine, MachineConfig, PebsConfig, SwSamplerConfig};

fn measure(kernel: Kernel, pebs: bool, reset: u64) -> (f64, u64) {
    let (symtab, funcs) = KernelFuncs::symtab();
    let mut cfg = CoreConfig::bare();
    if pebs {
        cfg.pebs = Some(PebsConfig::new(reset));
    } else {
        cfg.swsample = Some(SwSamplerConfig::new(reset));
    }
    let mut machine = Machine::new(MachineConfig::new(1, cfg), symtab);
    let mut core = machine.take_core(0);
    kernel.run(&mut core, &funcs, 10_000_000, 7);
    core.finish();
    let bundle = core.take_bundle();
    let n = bundle.samples.len() as u64;
    if n < 2 {
        return (f64::NAN, n);
    }
    let span = bundle.samples.last().unwrap().tsc - bundle.samples[0].tsc;
    let us = core.freq().cycles_to_dur(span).as_us_f64() / (n - 1) as f64;
    (us, n)
}

fn main() {
    println!("achieved sample interval (us) — PEBS vs perf-style software sampling\n");
    println!(
        "{:>8}  {:<7} {:>12} {:>12}",
        "reset", "kernel", "PEBS", "perf"
    );
    for kernel in Kernel::ALL {
        for power in [10u32, 12, 14, 16] {
            let reset = 1u64 << power;
            let (hw, _) = measure(kernel, true, reset);
            let (sw, _) = measure(kernel, false, reset);
            println!("{reset:>8}  {:<7} {hw:>11.2}  {sw:>11.2}", kernel.label());
        }
        println!();
    }
    println!(
        "PEBS tracks the reset value down to ~1 us; software sampling cannot go \
         below its ~10 us per-sample handler no matter the configured rate."
    );
}
