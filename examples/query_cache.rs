//! The paper's proof-of-concept (§IV.B, Figs. 7–8): a two-thread query
//! app whose in-memory cache makes identical queries take different
//! times. The hybrid tracer shows the fluctuation per query and
//! pinpoints `f3` as the function responsible.
//!
//! ```text
//! cargo run --release --example query_cache
//! ```

use fluctrace::apps::{Query, QueryApp};
use fluctrace::core::{detect, integrate, EstimateTable, MappingMode};
use fluctrace::cpu::{CoreConfig, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace::sim::{Freq, SimDuration, SimTime};

fn main() {
    let (symtab, funcs) = QueryApp::symtab();
    // The paper's setting: UOPS_RETIRED.ALL, reset value 8000.
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(8_000));
    let mut machine = Machine::new(MachineConfig::new(2, core_cfg), symtab);

    let queries = QueryApp::fig8_queries();
    QueryApp::run(
        &mut machine,
        funcs,
        &queries,
        SimTime::from_us(5),
        SimDuration::from_us(200),
    );

    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let table = EstimateTable::from_integrated(&it);

    println!("query  n  f1        f2        f3        total(marks)");
    for q in &queries {
        let ie = table.item(ItemId(q.id)).unwrap();
        let cell = |f| {
            ie.func(f)
                .filter(|fe| fe.is_estimable())
                .map(|fe| format!("{:>7.2}us", fe.elapsed.as_us_f64()))
                .unwrap_or_else(|| "      - ".into())
        };
        println!(
            "#{:<4} {}  {}  {}  {}  {:>7.2}us",
            q.id,
            q.n,
            cell(funcs.f1),
            cell(funcs.f2),
            cell(funcs.f3),
            ie.marked_total.unwrap().as_us_f64()
        );
    }

    // Group queries by n (identical content) and let the detector find
    // the cache-warmth fluctuation.
    let by_n: std::collections::HashMap<u64, u64> =
        queries.iter().map(|q: &Query| (q.id, q.n)).collect();
    let report = detect(
        &table,
        |item| by_n.get(&item.0).map(|n| format!("n={n}")),
        3.0,
        SimDuration::from_us(2),
    );
    println!("\ndiagnosis:");
    for o in &report.outliers {
        println!(
            "  {} fluctuates for query {} (group {}): {:.1}us vs median {:.1}us — cold cache",
            machine.symtab().name(o.func),
            o.item,
            o.group,
            o.elapsed.as_us_f64(),
            o.median.as_us_f64()
        );
    }
}
