//! §IV.C.3 online processing: stream sample batches to a real worker
//! thread that estimates per-function times on the fly and keeps raw
//! samples only for items that diverge from their running baseline.
//!
//! ```text
//! cargo run --release --example online_tracing
//! ```

use fluctrace::core::{OnlineConfig, OnlineTracer};
use fluctrace::cpu::{
    CoreConfig, Exec, ItemId, Machine, MachineConfig, PebsConfig, SymbolTableBuilder,
};
use fluctrace::sim::{Freq, Rng};

fn main() {
    let mut b = SymbolTableBuilder::new();
    let handle = b.add("handle_request", 4096);
    let commit = b.add("commit", 2048);
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(1_000));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let symtab = machine.symtab().clone();
    let core = machine.core_mut(0);

    let tracer = OnlineTracer::spawn(symtab, OnlineConfig::new(Freq::ghz(3)));

    // Simulate 5000 requests; a random ~0.5% hit a slow path (cache
    // fragmentation, say) where `commit` takes 10x longer. Batches are
    // drained from the core every 64 items — exactly what a collection
    // daemon does with the PEBS buffer.
    let mut rng = Rng::new(2024);
    let mut slow_items = Vec::new();
    for item in 0..5_000u64 {
        core.mark_item_start(ItemId(item));
        core.exec(Exec::new(handle, 12_000));
        let slow = rng.gen_bool(0.005);
        if slow {
            slow_items.push(item);
        }
        let commit_uops = if slow { 120_000 } else { 12_000 };
        core.exec(Exec::new(commit, commit_uops));
        core.mark_item_end(ItemId(item));
        if item % 64 == 63 {
            tracer
                .submit(core.drain_trace())
                .expect("online worker alive");
        }
    }
    tracer
        .submit(core.drain_trace())
        .expect("online worker alive");

    let report = tracer.finish().expect("online worker exits cleanly");
    println!(
        "processed {} items, {} samples ({} bytes of PEBS data)",
        report.items_processed, report.samples_seen, report.bytes_seen
    );
    println!(
        "loss accounting: {} samples lost, {} marks orphaned/mismatched, \
         {} boundary samples attributed",
        report.loss.samples_lost(),
        report.loss.marks_orphaned + report.loss.marks_mismatched,
        report.loss.boundary_samples
    );
    println!(
        "kept raw samples for {} diverging item(s) — {} bytes, a {:.0}x volume reduction",
        report.anomalies.len(),
        report.bytes_dumped,
        report.reduction_factor()
    );
    println!("\nflagged items (injected slow items: {slow_items:?}):");
    for a in &report.anomalies {
        println!(
            "  item {} — commit took {} (baseline mean {}), {} raw samples retained",
            a.item,
            a.elapsed,
            a.baseline_mean,
            a.raw_samples.len()
        );
    }
}
