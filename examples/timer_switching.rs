//! §V.A extension: tracing a timer-switching architecture with
//! register tagging.
//!
//! A user-level-thread scheduler preempts data-items every 20 µs, so a
//! core interleaves several items and the "two marks per item" interval
//! mapping no longer applies. The scheduler keeps the current item's id
//! in the (reserved) `r13` register; every PEBS sample carries it, and
//! the tracer maps samples to items by tag instead.
//!
//! ```text
//! cargo run --release --example timer_switching
//! ```

use fluctrace::core::{integrate, EstimateTable, MappingMode};
use fluctrace::cpu::{
    CoreConfig, Exec, ItemId, Machine, MachineConfig, PebsConfig, SymbolTableBuilder,
};
use fluctrace::rt::{UltJob, UltScheduler, UltSchedulerConfig};
use fluctrace::sim::{Freq, SimTime};

fn main() {
    let mut b = SymbolTableBuilder::new();
    let sched = b.add("ult_scheduler", 1024);
    let handler = b.add("request_handler", 4096);
    let render = b.add("render_response", 4096);
    let core_cfg = CoreConfig::bare()
        .with_pebs(PebsConfig::new(2_000))
        .with_reg_tagging();
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let mut core = machine.take_core(0);

    // Three requests; request 0 is heavy (120 µs of work), requests 1-2
    // are light (16 µs). Timer switching lets the light ones finish
    // first.
    // Each request runs a handler phase followed by a render phase (two
    // functions interleaving at µs granularity would hit the paper's
    // §V.B.2 "call graph" limitation — first-to-last spans of tightly
    // interleaved functions overlap).
    let job = |item: u64, arrival_us: u64, chunks: usize| {
        let mut work = Vec::new();
        for i in 0..chunks {
            let f = if i < chunks / 2 { handler } else { render };
            work.push(Exec::new(f, 12_000).ipc_milli(1500));
        }
        UltJob::new(ItemId(item), SimTime::from_us(arrival_us), work)
    };
    let scheduler = UltScheduler::new(UltSchedulerConfig::new(sched));
    let completions = scheduler.run(&mut core, vec![job(0, 0, 45), job(1, 5, 6), job(2, 10, 6)]);

    println!("completion order (timer switching lets light items overtake):");
    for c in &completions {
        println!(
            "  item {} arrived {} completed {} (latency {})",
            c.item,
            c.arrival,
            c.completed,
            c.latency()
        );
    }
    assert_ne!(completions[0].item, ItemId(0), "a light job finishes first");

    core.finish();
    machine.return_core(core);
    let (bundle, _) = machine.collect();
    println!(
        "\nno marks were recorded ({} marks) — interval mapping has nothing to work with;",
        bundle.marks.len()
    );

    // Integrate via register tags instead.
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::RegisterTag,
    );
    let table = EstimateTable::from_integrated(&it);
    println!("register-tag mapping still attributes every sample:\n");
    println!("item  function          samples  elapsed");
    for ie in table.items() {
        for fe in &ie.funcs {
            println!(
                "{:>4}  {:<16}  {:>7}  {}",
                ie.item,
                machine.symtab().name(fe.func),
                fe.samples,
                fe.elapsed
            );
        }
    }
    println!(
        "\nitem 0's handler/render dwarf items 1-2, even though all three interleaved on one core."
    );
}
