//! The paper's §I motivating scenario, end to end: a database engine
//! whose performance fluctuates "only when its on-memory cache is
//! fragmented and the fragmentation is fixed after processing few
//! queries" — unreproducible offline, diagnosable online with the
//! hybrid tracer.
//!
//! ```text
//! cargo run --release --example fragmented_cache
//! ```

use fluctrace::apps::{DbQuery, FragDb};
use fluctrace::core::{detect, diagnosis, integrate, item_breakdown, EstimateTable, MappingMode};
use fluctrace::cpu::{CoreConfig, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace::sim::{Freq, Rng, SimDuration};

fn main() {
    let (symtab, funcs) = FragDb::symtab();
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(2_000));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), symtab);
    let core = machine.core_mut(0);

    // A churny workload: inserts, lookups and deletes; deletes fragment
    // the allocator, and every so often one *ordinary-looking insert*
    // pays for compaction.
    let mut db = FragDb::new(funcs, 24);
    let mut rng = Rng::new(404);
    let n_queries = 1_200u64;
    let mut kinds = Vec::new();
    let mut live_keys: Vec<u64> = Vec::new();
    let mut next_key = 0u64;
    for id in 0..n_queries {
        let q = match rng.gen_below(10) {
            0..=4 => {
                next_key += 1;
                live_keys.push(next_key);
                DbQuery::Insert {
                    key: next_key,
                    size: 128 + rng.gen_below(256) as u32,
                }
            }
            5..=7 => DbQuery::Lookup {
                key: if live_keys.is_empty() {
                    0
                } else {
                    *rng.choose(&live_keys)
                },
            },
            _ if !live_keys.is_empty() => {
                let idx = rng.gen_below(live_keys.len() as u64) as usize;
                DbQuery::Delete {
                    key: live_keys.swap_remove(idx),
                }
            }
            _ => DbQuery::Lookup { key: 0 },
        };
        kinds.push(match q {
            DbQuery::Insert { .. } => "insert",
            DbQuery::Lookup { .. } => "lookup",
            DbQuery::Delete { .. } => "delete",
        });
        core.mark_item_start(ItemId(id));
        db.process(core, q);
        core.mark_item_end(ItemId(id));
        core.idle(SimDuration::from_us(3));
    }
    println!(
        "{} queries processed; the allocator compacted {} time(s)",
        n_queries,
        db.compactions()
    );

    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let table = EstimateTable::from_integrated(&it);

    // Group queries by kind — identical-looking inserts should behave
    // identically, but the compaction victims will not.
    let report = detect(
        &table,
        |item| Some(kinds[item.0 as usize].to_string()),
        4.0,
        SimDuration::from_us(5),
    );
    println!("\n{}", diagnosis(&report, machine.symtab()));

    if let Some(victim) = report.total_outliers.first() {
        println!("breakdown of the worst victim:");
        println!("{}", item_breakdown(&table, machine.symtab(), victim.item));
        println!("…and the next query of the same kind (fragmentation already fixed):");
        let kind = kinds[victim.item.0 as usize];
        if let Some(next) = (victim.item.0 + 1..n_queries).find(|&i| kinds[i as usize] == kind) {
            println!("{}", item_breakdown(&table, machine.symtab(), ItemId(next)));
        }
        println!(
            "the single occurrence was caught online — no need to reproduce the \
             exact hole structure offline."
        );
    }
}
