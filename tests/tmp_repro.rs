use fluctrace::sim::FaultPlan;
use fluctrace_bench::overload_experiment::{run_overload, OverloadConfig};

#[test]
fn consecutive_drop_open_eviction_accounting() {
    let plan = FaultPlan {
        drop_open_per_mille: 1000,
        corrupt_close_per_mille: 0,
        burst_per_mille: 0,
        burst_len: 0,
    };
    let items = 10;
    let cfg = OverloadConfig {
        items,
        schedule: plan.schedule(items, 1),
        max_pending: 4,
    };
    let r = run_overload(&cfg);
    assert!(
        r.accounting_exact(),
        "reported {:?} but schedule implies {:?}",
        r.report.loss,
        r.expected
    );
}
