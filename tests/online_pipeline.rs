//! End-to-end online tracing: a simulated core produces batches via
//! `drain_trace`, a real worker thread integrates them incrementally,
//! and only diverging items' raw samples are kept (§IV.C.3).

use fluctrace::core::{OnlineConfig, OnlineTracer};
use fluctrace::cpu::{
    CoreConfig, Exec, ItemId, Machine, MachineConfig, PebsConfig, SymbolTableBuilder,
};
use fluctrace::sim::Freq;

fn run_stream(slow_every: u64, items: u64, batch: u64) -> fluctrace::core::OnlineReport {
    let mut b = SymbolTableBuilder::new();
    let work = b.add("work", 4096);
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(1_000));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let symtab = machine.symtab().clone();
    let core = machine.core_mut(0);
    let tracer = OnlineTracer::spawn(symtab, OnlineConfig::new(Freq::ghz(3)));
    for item in 0..items {
        core.mark_item_start(ItemId(item));
        let uops = if slow_every > 0 && item % slow_every == slow_every - 1 && item > 30 {
            120_000
        } else {
            12_000
        };
        core.exec(Exec::new(work, uops));
        core.mark_item_end(ItemId(item));
        if item % batch == batch - 1 {
            tracer.submit(core.drain_trace()).expect("worker alive");
        }
    }
    tracer.submit(core.drain_trace()).expect("worker alive");
    tracer.finish().expect("worker exits cleanly")
}

#[test]
fn online_flags_exactly_the_slow_items() {
    let report = run_stream(50, 500, 64);
    assert_eq!(report.items_processed, 500);
    // Items 49+50k for k>=1 after warm-up... slow items are at indices
    // 99, 149, ..., 499 minus any within the first 30: that is 9 items
    // (49 is skipped because of the `item > 30` guard? no: 49 > 30, so
    // 49, 99, ..., 499 = 10 items).
    let flagged: Vec<u64> = report.anomalies.iter().map(|a| a.item.0).collect();
    let expected: Vec<u64> = (0..500).filter(|i| i % 50 == 49 && *i > 30).collect();
    assert_eq!(flagged, expected);
    // Volume: only those items' samples were kept.
    assert!(report.bytes_dumped < report.bytes_seen / 5);
    assert!(report.reduction_factor() > 5.0);
}

#[test]
fn online_steady_stream_keeps_nothing() {
    let report = run_stream(0, 300, 32);
    assert_eq!(report.items_processed, 300);
    assert!(report.anomalies.is_empty());
    assert_eq!(report.bytes_dumped, 0);
}

#[test]
fn online_matches_offline_estimates() {
    // The online estimator's per-item elapsed values equal the offline
    // pipeline's for the flagged items.
    let mut b = SymbolTableBuilder::new();
    let work = b.add("work", 4096);
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(1_000));
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let symtab = machine.symtab().clone();
    let core = machine.core_mut(0);
    let tracer = OnlineTracer::spawn(symtab, OnlineConfig::new(Freq::ghz(3)));
    let mut offline_bundle = fluctrace::cpu::TraceBundle::default();
    for item in 0..200u64 {
        core.mark_item_start(ItemId(item));
        let uops = if item == 150 { 120_000 } else { 12_000 };
        core.exec(Exec::new(work, uops));
        core.mark_item_end(ItemId(item));
        if item % 20 == 19 {
            let batch = core.drain_trace();
            offline_bundle.merge(batch.clone());
            tracer.submit(batch).expect("worker alive");
        }
    }
    let report = tracer.finish().expect("worker exits cleanly");
    assert_eq!(report.anomalies.len(), 1);
    let anomaly = &report.anomalies[0];
    assert_eq!(anomaly.item, ItemId(150));

    offline_bundle.sort();
    let it = fluctrace::core::integrate(
        &offline_bundle,
        machine.symtab(),
        Freq::ghz(3),
        fluctrace::core::MappingMode::Intervals,
    );
    let table = fluctrace::core::EstimateTable::from_integrated(&it);
    let offline = table.get(ItemId(150), work).unwrap();
    assert_eq!(offline.elapsed, anomaly.elapsed);
}

#[test]
fn boundary_samples_attribute_identically_online_and_offline() {
    // Regression for the end-boundary loss bug: `ItemInterval::contains`
    // is inclusive at both ends, so a sample whose TSC equals the Start
    // or End mark belongs to the item offline — the online merge must
    // agree, or online and offline estimates drift apart.
    use fluctrace::cpu::{CoreId, HwEvent, MarkKind, MarkRecord, PebsRecord, TraceBundle, NO_TAG};
    let mut b = SymbolTableBuilder::new();
    let work = b.add("work", 4096);
    let symtab = b.build();
    let ip = symtab.range(work).start;
    let mut bundle = TraceBundle::default();
    let mark = |tsc, item, kind| MarkRecord {
        core: CoreId(0),
        tsc,
        item: ItemId(item),
        kind,
    };
    let sample = |tsc| PebsRecord {
        core: CoreId(0),
        tsc,
        ip,
        r13: NO_TAG,
        event: HwEvent::UopsRetired,
    };
    // 39 baseline items: samples exactly at start, middle and end.
    for item in 0..39u64 {
        let base = (item + 1) * 100_000;
        let end = base + 3_000;
        bundle.marks.push(mark(base, item, MarkKind::Start));
        bundle.marks.push(mark(end, item, MarkKind::End));
        for tsc in [base, base + 1_500, end] {
            bundle.samples.push(sample(tsc));
        }
    }
    // One diverging item measured *only* by its two boundary samples.
    let base = 40 * 100_000;
    let end = base + 30_000;
    bundle.marks.push(mark(base, 39, MarkKind::Start));
    bundle.marks.push(mark(end, 39, MarkKind::End));
    bundle.samples.push(sample(base));
    bundle.samples.push(sample(end));
    bundle.sort();

    let it = fluctrace::core::integrate(
        &bundle,
        &symtab,
        Freq::ghz(3),
        fluctrace::core::MappingMode::Intervals,
    );
    let table = fluctrace::core::EstimateTable::from_integrated(&it);
    let offline = table.get(ItemId(39), work).unwrap();

    let tracer = OnlineTracer::spawn(
        symtab.clone().into_shared(),
        OnlineConfig::new(Freq::ghz(3)),
    );
    tracer.submit(bundle).expect("worker alive");
    let report = tracer.finish().expect("worker exits cleanly");
    assert_eq!(report.items_processed, 40);
    assert!(report.loss.samples_lost() == 0, "{:?}", report.loss);
    // 2 boundary samples on every item, all attributed.
    assert_eq!(report.loss.boundary_samples, 2 * 40);
    // The diverging item's estimate — made entirely of boundary samples —
    // matches the offline pipeline exactly.
    assert_eq!(report.anomalies.len(), 1);
    assert_eq!(report.anomalies[0].item, ItemId(39));
    assert_eq!(report.anomalies[0].elapsed, offline.elapsed);
}
