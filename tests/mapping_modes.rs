//! Cross-crate checks of the two sample→item mapping modes:
//!
//! * on a self-switching app, interval mapping and register tagging
//!   must produce identical per-item estimates;
//! * on a timer-switching (ULT) app, interval mapping has nothing to
//!   work with, scheduler-logged marks recover intervals, and register
//!   tagging attributes preempted items correctly.

use fluctrace::core::{integrate, EstimateTable, MappingMode};
use fluctrace::cpu::{
    CoreConfig, Exec, ItemId, Machine, MachineConfig, PebsConfig, SymbolTableBuilder,
};
use fluctrace::rt::{UltJob, UltScheduler, UltSchedulerConfig};
use fluctrace::sim::{Freq, SimDuration, SimTime};

#[test]
fn self_switching_modes_agree() {
    let mut b = SymbolTableBuilder::new();
    let work = b.add("work", 4096);
    let core_cfg = CoreConfig::bare()
        .with_pebs(PebsConfig::new(1_000))
        .with_reg_tagging();
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let core = machine.core_mut(0);
    for item in 0..20u64 {
        core.mark_item_start(ItemId(item));
        core.exec(Exec::new(work, 9_000 + item * 500));
        core.mark_item_end(ItemId(item));
        core.idle(SimDuration::from_us(3));
    }
    let (bundle, _) = machine.collect();
    let symtab = machine.symtab();
    let by_interval = EstimateTable::from_integrated(&integrate(
        &bundle,
        symtab,
        Freq::ghz(3),
        MappingMode::Intervals,
    ));
    let by_tag = EstimateTable::from_integrated(&integrate(
        &bundle,
        symtab,
        Freq::ghz(3),
        MappingMode::RegisterTag,
    ));
    assert_eq!(by_interval.len(), 20);
    for item in 0..20u64 {
        let a = by_interval.get(ItemId(item), work);
        let b = by_tag.get(ItemId(item), work);
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.elapsed, b.elapsed, "item {item}");
                assert_eq!(a.samples, b.samples, "item {item}");
            }
            (None, None) => {}
            other => panic!("item {item}: modes disagree on presence: {other:?}"),
        }
    }
}

fn ult_machine(emit_marks: bool) -> (Machine, fluctrace::cpu::FuncId) {
    let mut b = SymbolTableBuilder::new();
    let sched = b.add("sched", 512);
    let work = b.add("work", 4096);
    let core_cfg = CoreConfig::bare()
        .with_pebs(PebsConfig::new(1_000))
        .with_reg_tagging();
    let mut machine = Machine::new(MachineConfig::new(1, core_cfg), b.build());
    let mut core = machine.take_core(0);
    let mut cfg = UltSchedulerConfig::new(sched);
    cfg.emit_marks = emit_marks;
    let s = UltScheduler::new(cfg);
    let jobs: Vec<UltJob> = (0..4)
        .map(|i| {
            UltJob::new(
                ItemId(i),
                SimTime::from_us(i),
                (0..30)
                    .map(|_| Exec::new(work, 6_000).ipc_milli(1000))
                    .collect(),
            )
        })
        .collect();
    s.run(&mut core, jobs);
    machine.return_core(core);
    (machine, work)
}

#[test]
fn timer_switching_needs_tags_or_scheduler_marks() {
    // Without scheduler marks: interval mapping attributes nothing,
    // register tags attribute everything.
    let (mut machine, work) = ult_machine(false);
    let (bundle, _) = machine.collect();
    assert!(bundle.marks.is_empty());
    let symtab = machine.symtab();
    let it_intervals = integrate(&bundle, symtab, Freq::ghz(3), MappingMode::Intervals);
    assert_eq!(it_intervals.attribution_ratio(), 0.0);
    let it_tags = integrate(&bundle, symtab, Freq::ghz(3), MappingMode::RegisterTag);
    assert!(it_tags.attribution_ratio() > 0.9);
    let table = EstimateTable::from_integrated(&it_tags);
    assert_eq!(table.len(), 4);
    for item in 0..4u64 {
        let fe = table.get(ItemId(item), work).expect("every item sampled");
        assert!(fe.is_estimable());
        // Each job's work is 30 chunks × (2 µs + 6 assists × 250 ns of
        // sampling dilation) = 105 µs of wall time; the per-run-summed
        // estimate must be in that ballpark, NOT inflated by the time
        // the item spent preempted (~3× more with 4 jobs round-robin).
        let us = fe.elapsed.as_us_f64();
        assert!((85.0..=110.0).contains(&us), "item {item}: {us:.1} us");
    }
}

#[test]
fn scheduler_marks_recover_intervals_under_preemption() {
    let (mut machine, work) = ult_machine(true);
    let (bundle, _) = machine.collect();
    assert!(!bundle.marks.is_empty());
    let symtab = machine.symtab();
    let it = integrate(&bundle, symtab, Freq::ghz(3), MappingMode::Intervals);
    assert!(it.errors.is_empty(), "{:?}", it.errors);
    // Preempted items produce several intervals each.
    assert!(it.intervals.len() > 4);
    let by_marks = EstimateTable::from_integrated(&it);
    let by_tags = EstimateTable::from_integrated(&integrate(
        &bundle,
        symtab,
        Freq::ghz(3),
        MappingMode::RegisterTag,
    ));
    // The two §V mechanisms agree about per-item work.
    for item in 0..4u64 {
        let a = by_marks
            .get(ItemId(item), work)
            .unwrap()
            .elapsed
            .as_us_f64();
        let b = by_tags.get(ItemId(item), work).unwrap().elapsed.as_us_f64();
        assert!(
            (a - b).abs() < 3.0,
            "item {item}: marks {a:.1} vs tags {b:.1}"
        );
    }
}
