//! End-to-end reproduction checks for the §IV.C ACL case study:
//! the Fig. 9 accuracy/ordering shape, the Fig. 10 overhead shape, and
//! the §IV.C.3 data-volume law, all on the full 50 000-rule/247-trie
//! set (fewer packets than the paper for test speed).

use fluctrace::apps::PacketType;
use fluctrace_bench::acl_experiment::{run_acl, AclRunConfig};

const TABLE3: (u16, u16, u16) = (666, 75, 50);

#[test]
fn fig9_baseline_latency_ordering_and_magnitude() {
    let r = run_acl(AclRunConfig::new(None, 120, TABLE3));
    assert_eq!(r.rules, 50_000);
    assert_eq!(r.tries, 247);
    let a = r.for_type(PacketType::A).classify_us.mean();
    let b = r.for_type(PacketType::B).classify_us.mean();
    let c = r.for_type(PacketType::C).classify_us.mean();
    assert!(a > b && b > c, "A={a:.1} B={b:.1} C={c:.1}");
    // Paper: type A 12-14 us, type C ~6 us, "more than 100%".
    assert!((9.0..=16.0).contains(&a), "A = {a:.1} us");
    assert!((4.0..=8.0).contains(&c), "C = {c:.1} us");
    assert!(a / c > 2.0, "fluctuation {}%", (a / c - 1.0) * 100.0);
}

#[test]
fn fig9_estimates_track_baseline_at_moderate_resets() {
    let baseline = run_acl(AclRunConfig::new(None, 120, TABLE3));
    let traced = run_acl(AclRunConfig::new(Some(8_000), 120, TABLE3));
    for t in PacketType::ALL {
        let truth = baseline.for_type(t).classify_us.mean();
        let est = traced.for_type(t).classify_us.mean();
        // First/last-sample estimation loses up to ~2 sample periods
        // (~3.6 us at R=8000 on this core) and never overestimates.
        assert!(
            est <= truth + 0.5,
            "type {}: estimate {est:.2} above truth {truth:.2}",
            t.label()
        );
        assert!(
            truth - est < 3.6,
            "type {}: estimate {est:.2} too far below truth {truth:.2}",
            t.label()
        );
    }
    // The fluctuation ordering survives estimation.
    let ea = traced.for_type(PacketType::A).classify_us.mean();
    let ec = traced.for_type(PacketType::C).classify_us.mean();
    assert!(ea > 1.8 * ec, "estimated A {ea:.2} vs C {ec:.2}");
}

#[test]
fn fig9_accuracy_degrades_with_reset_value() {
    // Larger reset → fewer samples per packet → fewer estimable packets
    // (the §V.B.1 limitation surfacing gradually).
    let r8 = run_acl(AclRunConfig::new(Some(8_000), 120, TABLE3));
    let r24 = run_acl(AclRunConfig::new(Some(24_000), 120, TABLE3));
    for t in PacketType::ALL {
        assert!(
            r8.for_type(t).estimable >= r24.for_type(t).estimable,
            "type {}: R=8K estimable {} < R=24K {}",
            t.label(),
            r8.for_type(t).estimable,
            r24.for_type(t).estimable
        );
    }
    // Type C becomes mostly unestimable at 24K (its classify span is
    // shorter than the sample period).
    assert!(r24.for_type(PacketType::C).estimable < 120 / 4);
}

#[test]
fn fig10_overhead_decreases_with_reset() {
    let l_star = run_acl(AclRunConfig::new(None, 100, TABLE3)).mean_latency_us;
    let mut prev = f64::INFINITY;
    for reset in [8_000u64, 16_000, 24_000] {
        let l = run_acl(AclRunConfig::new(Some(reset), 100, TABLE3)).mean_latency_us;
        let overhead = l - l_star;
        assert!(overhead > 0.0, "R={reset}: overhead {overhead:.2}");
        assert!(
            overhead < prev,
            "R={reset}: overhead {overhead:.2} not below previous {prev:.2}"
        );
        // Moderate: well under the ~10 us packet latency.
        assert!(overhead < 4.0, "R={reset}: overhead {overhead:.2} us");
        prev = overhead;
    }
}

#[test]
fn data_volume_follows_inverse_reset_law() {
    let mut points = Vec::new();
    for reset in [8_000u64, 12_000, 16_000, 20_000, 24_000] {
        let r = run_acl(AclRunConfig::new(Some(reset), 60, TABLE3));
        points.push((reset, r.pebs_mb_per_s()));
    }
    // Strictly decreasing.
    for w in points.windows(2) {
        assert!(w[0].1 > w[1].1, "{points:?}");
    }
    // And an excellent a + b/R fit, as in the paper's own numbers.
    let (a, b) = fluctrace::core::overhead::fit_inverse_reset(&points);
    let r2 = fluctrace::core::overhead::r_squared_inverse_reset(&points, a, b);
    assert!(r2 > 0.98, "R^2 = {r2}");
    assert!(b > 0.0);
}
