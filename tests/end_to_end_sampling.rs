//! End-to-end reproduction checks for Fig. 4: PEBS tracks the ideal
//! sample interval down to ~1 µs while software sampling floors near
//! 10 µs, and the interval/reset relationship is linear (§V.C).

use fluctrace::analysis::{linear_fit, ratio_in};
use fluctrace::apps::Kernel;
use fluctrace_bench::sampling_experiment::{measure_interval, Sampler};

const UOPS: u64 = 10_000_000;

#[test]
fn fig4_pebs_is_near_ideal_software_floors() {
    for kernel in Kernel::ALL {
        for reset in [1_024u64, 4_096, 16_384] {
            let hw = measure_interval(kernel, Sampler::Pebs, reset, UOPS, 1);
            let sw = measure_interval(kernel, Sampler::Software, reset, UOPS, 1);
            // PEBS within (ideal, ideal + assist + slack].
            assert!(
                hw.mean_interval_us >= hw.ideal_us,
                "{}: PEBS beat the ideal?",
                kernel.label()
            );
            assert!(
                hw.mean_interval_us <= hw.ideal_us + 0.4,
                "{} R={reset}: PEBS {} vs ideal {}",
                kernel.label(),
                hw.mean_interval_us,
                hw.ideal_us
            );
            // Software sampling can never beat its handler cost.
            assert!(
                sw.mean_interval_us >= 9.5,
                "{} R={reset}: perf-style interval {}",
                kernel.label(),
                sw.mean_interval_us
            );
        }
    }
}

#[test]
fn fig4_pebs_reaches_about_one_microsecond() {
    // "The sample interval of PEBS can be almost 1 us."
    let m = measure_interval(Kernel::Gcc, Sampler::Pebs, 2_048, UOPS, 2);
    assert!(
        (0.4..=1.2).contains(&m.mean_interval_us),
        "PEBS at R=2048: {} us",
        m.mean_interval_us
    );
}

#[test]
fn fig4_kernels_separate_by_uop_rate() {
    // Same reset value, different benchmarks → different intervals,
    // ordered by inverse IPC.
    let astar = measure_interval(Kernel::Astar, Sampler::Pebs, 8_192, UOPS, 3);
    let gcc = measure_interval(Kernel::Gcc, Sampler::Pebs, 8_192, UOPS, 3);
    let bzip2 = measure_interval(Kernel::Bzip2, Sampler::Pebs, 8_192, UOPS, 3);
    assert!(astar.mean_interval_us > gcc.mean_interval_us);
    assert!(gcc.mean_interval_us > bzip2.mean_interval_us);
    ratio_in(
        "astar/bzip2 interval ratio ~ IPC ratio",
        astar.mean_interval_us,
        bzip2.mean_interval_us,
        1.3,
        2.8,
    )
    .unwrap();
}

#[test]
fn sec5c_interval_is_linear_in_reset() {
    for kernel in Kernel::ALL {
        let points: Vec<(f64, f64)> = (10..=15)
            .map(|p| {
                let r = 1u64 << p;
                (
                    r as f64,
                    measure_interval(kernel, Sampler::Pebs, r, UOPS, 4).mean_interval_us,
                )
            })
            .collect();
        let fit = linear_fit(&points);
        assert!(
            fit.r_squared > 0.999,
            "{}: R^2 = {}",
            kernel.label(),
            fit.r_squared
        );
        // Intercept ≈ the 250 ns assist.
        assert!(
            (0.1..=0.5).contains(&fit.intercept),
            "{}: intercept {}",
            kernel.label(),
            fit.intercept
        );
    }
}
