//! End-to-end reproduction check for the §IV.B proof-of-concept
//! (Figs. 7–8): the hybrid tracer, run over the full two-thread query
//! app, shows the cache-warmth fluctuation and attributes it to f3.

use fluctrace::apps::{Query, QueryApp};
use fluctrace::core::{detect, integrate, EstimateTable, MappingMode};
use fluctrace::cpu::{CoreConfig, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace::sim::{Freq, SimDuration, SimTime};

fn run_fig8() -> (Machine, EstimateTable, Vec<Query>) {
    let (symtab, funcs) = QueryApp::symtab();
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(8_000));
    let mut machine = Machine::new(MachineConfig::new(2, core_cfg), symtab);
    let queries = QueryApp::fig8_queries();
    QueryApp::run(
        &mut machine,
        funcs,
        &queries,
        SimTime::from_us(5),
        SimDuration::from_us(200),
    );
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let table = EstimateTable::from_integrated(&it);
    (machine, table, queries)
}

#[test]
fn fig8_first_and_fifth_queries_fluctuate() {
    let (_machine, table, _) = run_fig8();
    let total = |id: u64| {
        table
            .item(ItemId(id))
            .unwrap()
            .marked_total
            .unwrap()
            .as_us_f64()
    };
    // Same n, different time: the 1st query dominates its n=3 peers.
    for warm in [2, 4, 8] {
        assert!(
            total(1) > 2.5 * total(warm),
            "q1 {} vs q{} {}",
            total(1),
            warm,
            total(warm)
        );
    }
    // The 5th dominates its n=5 peers.
    for warm in [7, 9] {
        assert!(
            total(5) > 1.8 * total(warm),
            "q5 {} vs q{} {}",
            total(5),
            warm,
            total(warm)
        );
    }
}

#[test]
fn fig8_f3_is_the_root_cause() {
    let (machine, table, queries) = run_fig8();
    let (_, funcs) = QueryApp::symtab();
    // f3 for the cold query dwarfs f1 and f2 ("richer information than
    // service level logging").
    let q1 = table.item(ItemId(1)).unwrap();
    let f3 = q1.func(funcs.f3).expect("f3 sampled").elapsed;
    if let Some(f1) = q1.func(funcs.f1) {
        assert!(f3 > f1.elapsed * 3);
    }
    if let Some(f2) = q1.func(funcs.f2) {
        assert!(f3 > f2.elapsed * 3);
    }
    // The detector, grouping by n, flags exactly queries 1 and 5 on f3.
    let by_n: std::collections::HashMap<u64, u64> = queries.iter().map(|q| (q.id, q.n)).collect();
    let report = detect(
        &table,
        |item| by_n.get(&item.0).map(|n| format!("n={n}")),
        3.0,
        SimDuration::from_us(2),
    );
    let flagged: std::collections::BTreeSet<u64> =
        report.outliers.iter().map(|o| o.item.0).collect();
    assert_eq!(flagged, [1u64, 5].into_iter().collect());
    for o in &report.outliers {
        assert_eq!(o.func, funcs.f3, "the flagged function is f3");
    }
    let _ = machine;
}

#[test]
fn fig8_estimates_respect_marked_totals() {
    // A function's estimated time can never exceed the instrumented
    // total of its item (samples live inside the mark interval).
    let (_machine, table, _) = run_fig8();
    for ie in table.items() {
        let total = ie.marked_total.unwrap();
        for fe in &ie.funcs {
            assert!(
                fe.elapsed <= total,
                "item {} func {} estimate {} > total {}",
                ie.item,
                fe.func,
                fe.elapsed,
                total
            );
        }
        assert!(ie.estimated_total() <= total);
    }
}

#[test]
fn fig8_is_deterministic() {
    let (_m1, t1, _) = run_fig8();
    let (_m2, t2, _) = run_fig8();
    for (a, b) in t1.items().zip(t2.items()) {
        assert_eq!(a.item, b.item);
        assert_eq!(a.marked_total, b.marked_total);
        assert_eq!(a.funcs.len(), b.funcs.len());
        for (fa, fb) in a.funcs.iter().zip(&b.funcs) {
            assert_eq!(fa.elapsed, fb.elapsed);
            assert_eq!(fa.samples, fb.samples);
        }
    }
}
