//! §III.D: "the same procedure is executed on every core of a
//! multi-core CPU. Note that PEBS supports sampling core-related events
//! for every core simultaneously."
//!
//! A sharded firewall: two ACL worker threads on different cores, each
//! instrumented, each sampled; one merged trace; per-core interval
//! mapping must attribute every sample to the right item even though
//! the two cores' intervals overlap in time.

use fluctrace::acl::{table3_rules, AclBuildConfig, CountingMeter};
use fluctrace::apps::{AclCostModel, Firewall, PacketType, Tester};
use fluctrace::core::{integrate, EstimateTable, MappingMode};
use fluctrace::cpu::{CoreConfig, Exec, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace::rt::stage::StageOpts;
use fluctrace::rt::{run_stage, Timed};
use fluctrace::sim::{Freq, SimDuration, SimTime};

#[test]
fn two_acl_workers_trace_independently_and_merge() {
    let (symtab, funcs) = Firewall::symtab();
    let core_cfg = CoreConfig::bare()
        .with_ground_truth()
        .with_pebs(PebsConfig::new(8_000));
    let mut machine = Machine::new(MachineConfig::new(2, core_cfg), symtab);
    let rules = table3_rules(666, 75, 50);
    let acl = fluctrace::acl::MultiTrieAcl::build(&rules, AclBuildConfig::paper_patched());
    let cost = AclCostModel::default();

    // 60 packets, round-robin sharded across the two workers (RSS-style).
    let (_tester, ingress) =
        Tester::send_round_robin(SimTime::from_us(10), SimDuration::from_us(30), 20);
    let (shard0, shard1): (Vec<_>, Vec<_>) =
        ingress.into_iter().partition(|p| p.value.seq % 2 == 0);

    for (core_idx, shard) in [(0usize, shard0), (1usize, shard1)] {
        let mut core = machine.take_core(core_idx);
        let shard: Vec<Timed<_>> = shard;
        run_stage(
            &mut core,
            shard,
            StageOpts::new(funcs.acl_loop),
            |core, p| {
                core.mark_item_start(ItemId(p.seq));
                let mut meter = CountingMeter::new();
                acl.decide(&p.key, &mut meter);
                core.exec(
                    Exec::new(funcs.rte_acl_classify, cost.uops(&meter)).ipc_milli(cost.ipc_milli),
                );
                core.mark_item_end(ItemId(p.seq));
                Some(p)
            },
        );
        machine.return_core(core);
    }

    // One merged bundle from both cores.
    let (bundle, reports) = machine.collect();
    assert!(reports[0].marks == 60 && reports[1].marks == 60);
    assert!(reports[0].pebs.samples > 0 && reports[1].pebs.samples > 0);

    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    assert!(it.errors.is_empty(), "{:?}", it.errors);
    // The two cores' intervals overlap in wall time; the per-core
    // mapping must still attribute every contained sample uniquely.
    assert_eq!(it.intervals.len(), 60);
    let table = EstimateTable::from_integrated(&it);
    assert_eq!(table.len(), 60);

    // Per-type estimates agree across shards (same rule set, same cost).
    let mut by_type_core: std::collections::BTreeMap<(&str, u32), Vec<f64>> = Default::default();
    for iv in &it.intervals {
        let seq = iv.item.0;
        let ptype = PacketType::ALL[(seq % 3) as usize];
        if let Some(fe) = table
            .get(iv.item, funcs.rte_acl_classify)
            .filter(|fe| fe.is_estimable())
        {
            by_type_core
                .entry((ptype.label(), iv.core.0))
                .or_default()
                .push(fe.elapsed.as_us_f64());
        }
    }
    for label in ["A", "B"] {
        let m0: f64 =
            by_type_core[&(label, 0)].iter().sum::<f64>() / by_type_core[&(label, 0)].len() as f64;
        let m1: f64 =
            by_type_core[&(label, 1)].iter().sum::<f64>() / by_type_core[&(label, 1)].len() as f64;
        assert!(
            (m0 - m1).abs() < 1.5,
            "type {label}: core0 {m0:.2} vs core1 {m1:.2}"
        );
    }
}

#[test]
fn cross_core_interval_overlap_does_not_confuse_attribution() {
    // Construct two cores processing different items over the SAME wall
    // time window; a sample on core 1 must never be attributed to core
    // 0's item even though the timestamps coincide.
    let (symtab, funcs) = Firewall::symtab();
    let core_cfg = CoreConfig::bare().with_pebs(PebsConfig::new(2_000));
    let mut machine = Machine::new(MachineConfig::new(2, core_cfg), symtab);
    for core_idx in 0..2 {
        let core = machine.core_mut(core_idx);
        let item = ItemId(core_idx as u64);
        core.mark_item_start(item);
        core.exec(Exec::new(funcs.rte_acl_classify, 30_000).ipc_milli(1500));
        core.mark_item_end(item);
    }
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    for s in &it.samples {
        if let Some(item) = s.item {
            assert_eq!(
                item.0, s.core.0 as u64,
                "sample on {} attributed to {}",
                s.core, item
            );
        }
    }
    let table = EstimateTable::from_integrated(&it);
    let e0 = table.get(ItemId(0), funcs.rte_acl_classify).unwrap();
    let e1 = table.get(ItemId(1), funcs.rte_acl_classify).unwrap();
    assert!(e0.is_estimable() && e1.is_estimable());
}
