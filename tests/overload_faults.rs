//! Fault-injection suite for the online tracer: under injected mark
//! loss, sample bursts and slow-consumer stalls the tracer must never
//! panic, never grow without bound, and account for every shed record
//! exactly (property-tested against the ground truth of the
//! deterministic fault schedule).

use fluctrace::core::{OnlineConfig, OnlineError, OnlineTracer, SubmitError};
use fluctrace::sim::{FaultPlan, Freq};
use fluctrace_bench::overload_experiment::{
    expected_losses, faulted_batch, overload_symtab, run_overload, run_stall, OverloadConfig,
};
use std::sync::Arc;

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::cases_from_env(48))]

    /// For any fault mix, batch sizing and pending bound, the tracer's
    /// loss accounting equals the schedule's ground truth to the unit.
    #[test]
    fn prop_loss_accounting_is_exact(
        drop_pm in 0u32..200,
        corrupt_pm in 0u32..200,
        burst_pm in 0u32..200,
        burst_len in 1u32..120,
        max_pending in 4usize..64,
        seed in 0u64..1_000,
    ) {
        let plan = FaultPlan {
            drop_open_per_mille: drop_pm,
            corrupt_close_per_mille: corrupt_pm,
            burst_per_mille: burst_pm,
            burst_len,
        };
        let items = 120;
        let cfg = OverloadConfig {
            items,
            schedule: plan.schedule(items, seed),
            max_pending,
            keep_bundle: false,
        };
        let r = run_overload(&cfg);
        proptest::prop_assert!(
            r.accounting_exact(),
            "reported {:?} but schedule implies {:?}",
            r.report.loss,
            r.expected
        );
        // Conservation, exactly: every sample the worker saw is either
        // attributed or sits in exactly one worker-side loss/spin bucket.
        proptest::prop_assert!(r.report.conserves_samples());
        proptest::prop_assert_eq!(
            r.report.samples_seen,
            r.report.samples_attributed
                + r.report.loss.samples_evicted
                + r.report.loss.samples_discarded
                + r.report.loss.samples_spin
        );
    }

    /// The stall scenario drops exactly the batches that exceed the
    /// channel, for any batch count and capacity.
    #[test]
    fn prop_stall_drop_count_is_exact(
        total in 2usize..60,
        capacity in 1usize..16,
    ) {
        let r = run_stall(total, capacity);
        proptest::prop_assert_eq!(r.batches_dropped, r.expected_dropped);
        let sent = (total as u64 - 1).min(capacity as u64) + 1;
        proptest::prop_assert_eq!(r.items_processed, sent);
    }
}

/// Pinned regression (found by the conformance harness, folded from the
/// PR 3 repro): a schedule of *consecutive* DropOpen faults leaves no
/// next Start to clear `pending`, so orphan-item samples used to linger
/// until the `max_pending` bound misreported them as `samples_evicted`.
/// The orphan End must clear its core's pending as spin samples.
#[test]
fn consecutive_drop_open_eviction_accounting() {
    let plan = FaultPlan {
        drop_open_per_mille: 1000,
        corrupt_close_per_mille: 0,
        burst_per_mille: 0,
        burst_len: 0,
    };
    let items = 10;
    let cfg = OverloadConfig {
        items,
        schedule: plan.schedule(items, 1),
        max_pending: 4,
        keep_bundle: false,
    };
    let r = run_overload(&cfg);
    assert!(
        r.accounting_exact(),
        "reported {:?} but schedule implies {:?}",
        r.report.loss,
        r.expected
    );
    assert_eq!(r.report.loss.samples_evicted, 0, "no phantom evictions");
    assert_eq!(r.report.loss.samples_spin, 2 * items as u64);
    assert_eq!(r.report.loss.marks_orphaned, items as u64);
}

#[test]
fn expected_losses_of_empty_schedule_are_zero() {
    let sched = FaultPlan::none().schedule(0, 0);
    assert_eq!(
        expected_losses(&sched, 16),
        fluctrace_bench::overload_experiment::ExpectedLosses::default()
    );
}

#[test]
fn worker_panic_surfaces_as_error_not_hang() {
    let (symtab, f) = overload_symtab();
    let cfg = OnlineConfig::new(Freq::ghz(3));
    let tracer = OnlineTracer::spawn_with_inspector(Arc::clone(&symtab), cfg, |batch| {
        if batch.samples.len() > 1 {
            panic!("injected consumer crash");
        }
    });
    // Keep submitting after the crash: `submit` must return the batch
    // via SubmitError once the worker is gone — never panic, never hang.
    let mut surfaced = false;
    for i in 0..200 {
        let batch = faulted_batch(&symtab, f, i, fluctrace::sim::Fault::None);
        if let Err(SubmitError { batch }) = tracer.submit(batch) {
            assert!(!batch.samples.is_empty(), "batch comes back intact");
            surfaced = true;
            break;
        }
    }
    assert!(surfaced, "worker death must surface to the producer");
    match tracer.finish() {
        Err(OnlineError::WorkerPanicked(msg)) => {
            assert!(msg.contains("injected consumer crash"), "{msg}")
        }
        Ok(_) => panic!("finish must report the worker panic"),
    }
}

#[test]
fn dropping_a_tracer_with_a_panicked_worker_is_quiet() {
    let (symtab, f) = overload_symtab();
    let tracer = OnlineTracer::spawn_with_inspector(
        Arc::clone(&symtab),
        OnlineConfig::new(Freq::ghz(3)),
        |_| panic!("injected consumer crash"),
    );
    let _ = tracer.submit(faulted_batch(&symtab, f, 0, fluctrace::sim::Fault::None));
    // Drop must swallow the worker's panic (a panic here would abort the
    // test process via double-panic if Drop re-raised during unwind).
    drop(tracer);
}

#[test]
fn dropping_an_unfinished_tracer_is_quiet() {
    let (symtab, f) = overload_symtab();
    let tracer = OnlineTracer::spawn(Arc::clone(&symtab), OnlineConfig::new(Freq::ghz(3)));
    for i in 0..50 {
        tracer
            .submit(faulted_batch(&symtab, f, i, fluctrace::sim::Fault::None))
            .expect("worker alive");
    }
    drop(tracer); // no finish(): Drop joins the worker quietly
}
