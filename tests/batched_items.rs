//! End-to-end tests of the batched-data-items extension (the paper's
//! §IV.C.2 future work): bursts are marked as synthetic batch items and
//! split back to packets via registered weights.

use fluctrace::acl::{table3_rules, AclBuildConfig};
use fluctrace::apps::{firewall::BATCH_ID_BASE, AclCostModel, Firewall, Tester};
use fluctrace::core::{integrate, split_batches, EstimateTable, MappingMode};
use fluctrace::cpu::{CoreConfig, ItemId, Machine, MachineConfig, PebsConfig};
use fluctrace::sim::{Freq, RunningStats, SimDuration, SimTime};

fn setup(pebs: Option<u64>) -> (Machine, Firewall) {
    let (symtab, funcs) = Firewall::symtab();
    let mut core_cfg = CoreConfig::bare().with_ground_truth();
    if let Some(r) = pebs {
        core_cfg.pebs = Some(PebsConfig::new(r));
    }
    let machine = Machine::new(MachineConfig::new(3, core_cfg), symtab);
    let rules = table3_rules(666, 75, 50);
    let fw = Firewall::new(
        &rules,
        AclBuildConfig::paper_patched(),
        AclCostModel::default(),
        funcs,
    );
    (machine, fw)
}

#[test]
fn batched_pipeline_passes_all_packets() {
    let (mut machine, fw) = setup(None);
    // Back-to-back arrivals force real bursts.
    let (tester, ingress) =
        Tester::send_round_robin(SimTime::from_us(10), SimDuration::from_us(2), 30);
    let (run, batches) = fw.run_batched(&mut machine, ingress, 8);
    assert_eq!(run.dropped, 0);
    assert_eq!(run.egress.len(), 90);
    assert!(!batches.is_empty());
    // Multi-packet bursts actually formed.
    let max_burst = (0..batches.len() as u64)
        .filter_map(|i| batches.members(ItemId(BATCH_ID_BASE + i)).map(<[_]>::len))
        .max()
        .unwrap();
    assert!(max_burst > 1, "no burst formed");
    let report = tester.receive(&run.egress);
    assert_eq!(report.received, 90);
}

#[test]
fn weighted_split_recovers_per_type_costs_in_mixed_bursts() {
    let (mut machine, fw) = setup(Some(8_000));
    // Round-robin A/B/C back-to-back: every burst is heterogeneous —
    // the worst case for batch attribution.
    let (_, ingress) = Tester::send_round_robin(SimTime::from_us(10), SimDuration::from_us(2), 60);
    let sent = ingress.clone();
    let (run, batches) = fw.run_batched(&mut machine, ingress, 4);
    assert_eq!(run.dropped, 0);
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let per_batch = EstimateTable::from_integrated(&it);
    // Before splitting, only synthetic batch ids have estimates.
    assert!(per_batch.item(ItemId(0)).is_none());
    assert!(per_batch.item(ItemId(BATCH_ID_BASE)).is_some());

    let per_item = split_batches(&per_batch, &batches);
    let (_, funcs) = Firewall::symtab();
    let mut by_type: std::collections::BTreeMap<&str, RunningStats> = Default::default();
    for p in &sent {
        if let Some(fe) = per_item
            .get(ItemId(p.value.seq), funcs.rte_acl_classify)
            .filter(|fe| fe.is_estimable())
        {
            by_type
                .entry(p.value.ptype.label())
                .or_default()
                .push(fe.elapsed.as_us_f64());
        }
    }
    let a = by_type["A"].mean();
    let b = by_type["B"].mean();
    let c = by_type["C"].mean();
    // The weighted split preserves the A > B > C cost structure even
    // though every burst mixed the three types.
    assert!(a > b && b > c, "A={a:.2} B={b:.2} C={c:.2}");
    assert!(a / c > 1.7, "A/C = {:.2}", a / c);
    // And the magnitudes are near the unbatched ground truth
    // (A ≈ 11.9 µs, C ≈ 5.3 µs) minus estimator underestimation.
    assert!((8.0..=13.0).contains(&a), "A = {a:.2}");
    assert!((3.0..=6.5).contains(&c), "C = {c:.2}");
}

#[test]
fn uniform_split_is_biased_on_mixed_bursts() {
    // Demonstrate WHY weights matter: replacing the weights with a
    // uniform split flattens the A/C difference.
    let (mut machine, fw) = setup(Some(8_000));
    let (_, ingress) = Tester::send_round_robin(SimTime::from_us(10), SimDuration::from_us(2), 60);
    let sent = ingress.clone();
    let (_run, weighted) = fw.run_batched(&mut machine, ingress, 4);
    // Build a uniform variant of the same membership.
    let mut uniform = fluctrace::core::BatchMap::new();
    for i in 0.. {
        let batch = ItemId(BATCH_ID_BASE + i);
        match weighted.members(batch) {
            Some(members) => {
                let ids: Vec<ItemId> = members.iter().map(|&(m, _)| m).collect();
                uniform.register(batch, &ids);
            }
            None => break,
        }
    }
    let (bundle, _) = machine.collect();
    let it = integrate(
        &bundle,
        machine.symtab(),
        Freq::ghz(3),
        MappingMode::Intervals,
    );
    let per_batch = EstimateTable::from_integrated(&it);
    let (_, funcs) = Firewall::symtab();

    let spread = |map: &fluctrace::core::BatchMap| {
        let split = split_batches(&per_batch, map);
        let mut stats: std::collections::BTreeMap<&str, RunningStats> = Default::default();
        for p in &sent {
            if let Some(fe) = split.get(ItemId(p.value.seq), funcs.rte_acl_classify) {
                stats
                    .entry(p.value.ptype.label())
                    .or_default()
                    .push(fe.elapsed.as_us_f64());
            }
        }
        stats["A"].mean() / stats["C"].mean()
    };
    let weighted_ratio = spread(&weighted);
    let uniform_ratio = spread(&uniform);
    assert!(
        weighted_ratio > uniform_ratio + 0.4,
        "weighted A/C {weighted_ratio:.2} vs uniform {uniform_ratio:.2}"
    );
    // Uniform splitting erases most of the per-type signal on fully
    // mixed bursts (ratio approaches 1).
    assert!(uniform_ratio < 1.5, "uniform ratio {uniform_ratio:.2}");
}
