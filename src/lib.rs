//! # fluctrace — umbrella crate
//!
//! Re-exports every `fluctrace` crate under one roof so examples,
//! integration tests, and downstream users can write
//! `use fluctrace::core::...` without tracking individual crates.
//!
//! See the repository README for the architecture overview and
//! `DESIGN.md` for the paper-reproduction inventory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fluctrace_acl as acl;
pub use fluctrace_analysis as analysis;
pub use fluctrace_apps as apps;
pub use fluctrace_core as core;
pub use fluctrace_cpu as cpu;
pub use fluctrace_rt as rt;
pub use fluctrace_sim as sim;
